"""Bench — vectorized ``query_batch`` vs the scalar ``query`` path.

Two entry points:

- ``python benchmarks/bench_batch_vs_scalar.py`` — standalone: sweeps
  every scheme over an n-ladder, measures seconds/query for both paths,
  and writes the machine-readable ``BENCH_PR1.json`` at the repo root
  (the PR-1 acceptance artifact).  The end-to-end section repeats the
  acceptance measurement: ``empirical_contention`` on the low-contention
  dictionary at n = 1024 with 10^5 queries, batched vs scalar-loop.
- under pytest-benchmark (``pytest benchmarks/bench_batch_vs_scalar.py``)
  — times the batched estimator on a small instance and checks the
  batch path agrees with ground truth.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.contention import empirical_contention
from repro.distributions import UniformPositiveNegative
from repro.experiments.common import SCHEMES, make_instance
from repro.utils.rng import as_generator

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Query counts: scalar loops are slow, so they get a smaller sample.
SCALAR_QUERIES = 2_000
BATCH_QUERIES = 50_000


def _time_scalar(d, xs) -> float:
    rng = as_generator(1)
    t0 = time.perf_counter()
    for x in xs:
        d.query(int(x), rng)
    return (time.perf_counter() - t0) / len(xs)


def _time_batch(d, xs) -> float:
    rng = as_generator(1)
    t0 = time.perf_counter()
    d.query_batch(xs, rng)
    return (time.perf_counter() - t0) / len(xs)


def _queries(keys, N, count, rng):
    pos = rng.choice(keys, size=count // 2)
    neg = rng.integers(0, N, size=count - count // 2)
    return np.concatenate([pos, neg])


def sweep(sizes=(256, 1024, 4096), seed: int = 0) -> list[dict]:
    rows = []
    for name, cls in SCHEMES.items():
        for n in sizes:
            keys, N = make_instance(n, seed)
            d = cls(keys, N, rng=as_generator(seed + 1))
            rng = as_generator(seed + 2)
            scalar_s = _time_scalar(
                d, _queries(keys, N, SCALAR_QUERIES, rng)
            )
            batch_s = _time_batch(d, _queries(keys, N, BATCH_QUERIES, rng))
            rows.append(
                {
                    "scheme": name,
                    "n": n,
                    "scalar_s_per_query": scalar_s,
                    "batch_s_per_query": batch_s,
                    "speedup": scalar_s / batch_s,
                }
            )
            print(
                f"{name:>16} n={n:<5} scalar {scalar_s * 1e6:8.2f} us/q  "
                f"batch {batch_s * 1e6:6.2f} us/q  "
                f"speedup {scalar_s / batch_s:6.1f}x"
            )
    return rows


def end_to_end(seed: int = 0) -> dict:
    """The PR-1 acceptance measurement: empirical_contention at n=1024."""
    n, num_queries = 1024, 100_000
    keys, N = make_instance(n, seed)
    d = SCHEMES["low-contention"](keys, N, rng=as_generator(seed + 1))
    dist = UniformPositiveNegative(N, keys, 0.5)

    t0 = time.perf_counter()
    empirical_contention(d, dist, num_queries, rng=as_generator(seed + 2))
    batched = time.perf_counter() - t0

    # The pre-batching implementation: one scalar query per sample.
    counter = d.table.counter
    counter.reset()
    rng = as_generator(seed + 2)
    t0 = time.perf_counter()
    for x in dist.sample(rng, num_queries):
        d.query(int(x), rng)
    scalar = time.perf_counter() - t0
    counter.reset()

    out = {
        "scheme": "low-contention",
        "n": n,
        "num_queries": num_queries,
        "scalar_loop_s": scalar,
        "batched_s": batched,
        "speedup": scalar / batched,
    }
    print(
        f"\nempirical_contention n={n}, {num_queries} queries: "
        f"scalar loop {scalar:.2f}s, batched {batched:.3f}s "
        f"({scalar / batched:.1f}x)"
    )
    return out


def main() -> int:
    rows = sweep()
    e2e = end_to_end()
    payload = {
        "benchmark": "batch_vs_scalar",
        "scalar_queries": SCALAR_QUERIES,
        "batch_queries": BATCH_QUERIES,
        "per_scheme": rows,
        "empirical_contention_end_to_end": e2e,
    }
    out_path = REPO_ROOT / "BENCH_PR1.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    return 0


# -- pytest-benchmark entry point ---------------------------------------------


def test_bench_batch_contention(benchmark):
    """Batched empirical contention on a small LCD instance."""
    keys, N = make_instance(256, 0)
    d = SCHEMES["low-contention"](keys, N, rng=as_generator(1))
    dist = UniformPositiveNegative(N, keys, 0.5)
    matrix = benchmark.pedantic(
        empirical_contention,
        args=(d, dist, 20_000),
        kwargs={"rng": as_generator(2)},
        rounds=3,
        iterations=1,
    )
    assert matrix.step_mass()[0] == 1.0


if __name__ == "__main__":
    raise SystemExit(main())
