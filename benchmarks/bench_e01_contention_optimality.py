"""Bench E1 — Theorem 3: s * max-step contention stays O(1).

Regenerates the E1 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E1.txt.
"""

from repro.experiments import run_experiment


def test_bench_e01_contention_optimality(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E1",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert all(row['s*phi (bounded?)'] < 4.0 for row in result.rows)
