"""Bench E2 — Theorem 3: O(1) probes, one per table row.

Regenerates the E2 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E2.txt.
"""

from repro.experiments import run_experiment


def test_bench_e02_probe_complexity(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E2",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert max(row['max_probes'] for row in result.rows) <= 16
