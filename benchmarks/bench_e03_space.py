"""Bench E3 — Theorem 3: linear space (flat words/key).

Regenerates the E3 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E3.txt.
"""

from repro.experiments import run_experiment


def test_bench_e03_space(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E3",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    lcd = [r for r in result.rows if r['scheme'] == 'low-contention']
    assert max(r['words_per_key'] for r in lcd) / min(r['words_per_key'] for r in lcd) < 1.3
