"""Bench E4 — Section 2.2: O(1) P(S) trials, O(n) build time.

Regenerates the E4 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E4.txt.
"""

from repro.experiments import run_experiment


def test_bench_e04_construction(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E4",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert max(row['mean_trials'] for row in result.rows) < 4
