"""Bench E5 — Section 1.3: contention ratios across schemes.

Regenerates the E5 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E5.txt.
"""

from repro.experiments import run_experiment


def test_bench_e05_baseline_comparison(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E5",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert 'low-contention: best fit const' in result.finding
