"""Bench E6 — Section 1.3: arbitrary distributions are arbitrarily bad.

Regenerates the E6 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E6.txt.
"""

from repro.experiments import run_experiment


def test_bench_e06_arbitrary_distributions(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E6",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Point-mass rows (which carry a "worst query") all reach phi = 1;
    # the k-support rows show the ~1/k graceful degradation instead.
    point_rows = [r for r in result.rows if "worst query" in r]
    assert point_rows
    assert all(row["phi worst point mass"] == 1.0 for row in point_rows)
