"""Bench E7 — Lemma 9: load-condition success rates.

Regenerates the E7 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E7.txt.
"""

from repro.experiments import run_experiment


def test_bench_e07_lemma9_loads(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E7",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert min(row['P[all three]'] for row in result.rows) >= 0.5
