"""Bench E8 — Lemma 10: negative loads within 2x fair share.

Regenerates the E8 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E8.txt.
"""

from repro.experiments import run_experiment


def test_bench_e08_negative_loads(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E8",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert all(row['<= 2 (Lemma 10)'] for row in result.rows)
