"""Bench E9 — Theorem 13: t*(n) ~ log log n + legal concrete game.

Regenerates the E9 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E9.txt.
"""

from repro.experiments import run_experiment


def test_bench_e09_lower_bound_game(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E9",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    ts = [r['t*(n)'] for r in result.rows if r.get('series') == 'recursion']
    assert ts == sorted(ts)
