"""Bench E10 — Lemma 19: product-space simulation floors.

Regenerates the E10 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E10.txt.
"""

from repro.experiments import run_experiment


def test_bench_e10_product_space(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E10",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert all(row['>= 1/4'] for row in result.rows)
