"""Bench E11 — Definition 11: VC-dimension table.

Regenerates the E11 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E11.txt.
"""

from repro.experiments import run_experiment


def test_bench_e11_vc_dimension(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E11",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert all(row['agree'] for row in result.rows)
