"""Bench E12 — Section 1: m simultaneous queries.

Regenerates the E12 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E12.txt.
"""

from repro.experiments import run_experiment


def test_bench_e12_concurrent(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E12",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    binary = [r for r in result.rows if r['scheme'] == 'binary-search' and r['model'] == 'queued']
    assert all(r['throughput/cycle'] <= 1.1 for r in binary)
