"""Bench E13 — Section 2.2: design-choice ablations.

Regenerates the E13 table (see DESIGN.md section 3 for the claim-to-
experiment mapping) and times the full runner.  The rendered table is
printed and written to benchmarks/results/E13.txt.
"""

from repro.experiments import run_experiment


def test_bench_e13_ablations(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E13",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert any(r['variant'] == 'paper defaults' for r in result.rows)
