"""Bench E14 — extension: dynamic update contention (paper conclusion).

Regenerates the E14 table (see DESIGN.md section 3) and times the full
runner.  The rendered table is printed and written to
benchmarks/results/E14.txt.
"""

from repro.experiments import run_experiment


def test_bench_e14_dynamic(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E14",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    padded = [r for r in result.rows if r["level width"] != "paper-pure (0)"]
    pure = [r for r in result.rows if r["level width"] == "paper-pure (0)"]
    assert min(r["read phi_max * n"] for r in padded) < pure[0]["read phi_max * n"]
