"""Bench E15 — extension: space cost of naive whole-structure replication.

Regenerates the E15 table (see DESIGN.md section 3) and times the full
runner.  The rendered table is printed and written to
benchmarks/results/E15.txt.
"""

from repro.experiments import run_experiment


def test_bench_e15_replication_cost(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E15",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    by_scheme = {r["scheme"]: r for r in result.rows if r["n"] == result.rows[-1]["n"]}
    assert (
        by_scheme["binary-search"]["space to target"]
        > 10 * by_scheme["low-contention"]["space to target"]
    )
