"""Bench E16 — worst-case 2-universal family: FKS at Theta(sqrt n) x optimal.

Regenerates the E16 table (see DESIGN.md section 3) and times the full
runner.  The rendered table is printed and written to
benchmarks/results/E16.txt.
"""

from repro.experiments import run_experiment


def test_bench_e16_worst_case_fks(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E16",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert "sqrt(n)" in result.finding
    for row in result.rows:
        assert row["planted fks ratio"] > row["random fks ratio"]
        assert row["lcd ratio (same keys)"] < 4.0
