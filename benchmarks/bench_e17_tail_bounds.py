"""Bench E17 — tail-bound sharpness (Theorems 6-8).

Regenerates the E17 table (see DESIGN.md section 3) and times the full
runner.  The rendered table is printed and written to
benchmarks/results/E17.txt.
"""

from repro.experiments import run_experiment


def test_bench_e17_tail_bounds(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E17",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert all(row["bound holds"] for row in result.rows)
