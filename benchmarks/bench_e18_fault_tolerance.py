"""Bench E18 — fault tolerance via replication.

Regenerates the E18 table (see DESIGN.md section 3) and times the full
runner.  The rendered table is printed and written to
benchmarks/results/E18.txt.
"""

from repro.experiments import run_experiment


def test_bench_e18_fault_tolerance(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E18",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    majority = [
        row for row in result.rows
        if row["series"] == "corruption" and row["mode"] == "majority"
    ]
    biggest = max(row["R"] for row in majority)
    assert all(
        row["wrong_rate"] == 0.0
        for row in majority
        if row["R"] == biggest
    )
    crash = [row for row in result.rows if row["series"] == "crash"]
    random_failed = {
        row["R"]: row["failed_rate"]
        for row in crash
        if row["mode"] == "random"
    }
    assert all(
        row["failed_rate"] <= random_failed[row["R"]]
        for row in crash
        if row["mode"] == "failover"
    )
