"""Bench E19 — live serving vs exact contention.

Regenerates the E19 table (see DESIGN.md section 3) and times the full
runner.  The rendered table is printed and written to
benchmarks/results/E19.txt.  Asserts the two headline invariants: the
live per-cell load sits within 3 sigma of the exact Binomial
prediction at every step's hottest cell, and least-loaded routing
achieves a lower max per-replica probe load than round-robin on the
Zipf workload.
"""

from repro.experiments import run_experiment


def test_bench_e19_serving(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E19",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    phi_rows = [row for row in result.rows if row["part"] == "A:phi"]
    assert phi_rows and all(row["z"] <= 3.0 for row in phi_rows)
    loads = {
        row["router"]: row["max_replica_load"]
        for row in result.rows
        if row["part"] == "B:routing"
    }
    assert loads["least-loaded"] < loads["round-robin"]
    fault_rows = [row for row in result.rows if row["part"] == "C:faults"]
    assert all(row["wrong"] == 0 for row in fault_rows)
