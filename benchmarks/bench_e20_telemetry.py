"""Bench E20 — telemetry overhead on the probe hot path.

Two entry points:

- ``python benchmarks/bench_e20_telemetry.py [--gate]`` — standalone:
  times the batched query hot path in three configurations and writes
  the machine-readable ``BENCH_PR4.json`` at the repo root (the PR-4
  acceptance artifact):

  * **seed** — ``Table.read``/``read_batch`` monkeypatched with copies
    of their pre-instrumentation bodies (no ``BUS.active`` test at all);
  * **disabled** — the instrumented code as shipped, bus inactive (the
    default state of every run);
  * **enabled** — a :class:`~repro.telemetry.hub.BusMetricsCollector`
    subscribed, every probe event constructed and consumed.

  Timings are min-of-repeats (noise-robust).  ``--gate`` exits nonzero
  if the disabled/seed ratio exceeds ``GATE_RATIO`` (2% — the CI
  telemetry job runs this).

- under pytest-benchmark — regenerates the E20 table and asserts its
  headline invariants (byte-identical accounting, zero false alarms,
  in-budget hot-cell detection, stuck-router detection).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from repro.cellprobe.table import EMPTY_CELL, Table, TableError
from repro.experiments import run_experiment
from repro.experiments.common import make_instance
from repro.telemetry import collect_bus_metrics

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Disabled-path overhead gate: instrumented-but-off may cost at most
#: this factor over the pre-instrumentation seed code.
GATE_RATIO = 1.02

REPEATS = 7
BATCHES = 30
BATCH_SIZE = 4096


def _seed_read(self, row, column, step):
    # Copy of Table.read before the telemetry PR: no BUS guard.
    self._check(row, column)
    self.counter.record(step, row * self.s + column)
    return int(self._cells[row, column])


def _seed_read_batch(self, rows, columns, step):
    # Copy of Table.read_batch before the telemetry PR: no BUS guard.
    columns = np.asarray(columns, dtype=np.int64)
    rows_arr = np.broadcast_to(np.asarray(rows, dtype=np.int64), columns.shape)
    active = columns >= 0
    if bool(np.any(active)):
        r_act = rows_arr[active]
        c_act = columns[active]
        if r_act.size and (
            int(r_act.min()) < 0
            or int(r_act.max()) >= self.rows
            or int(c_act.max()) >= self.s
        ):
            raise TableError(
                f"batch probe out of range for table "
                f"({self.rows} rows x {self.s} cells)"
            )
    flat = np.where(active, rows_arr * self.s + columns, -1)
    self.counter.record_batch(step, flat)
    out = np.full(columns.shape, EMPTY_CELL, dtype=np.uint64)
    if bool(np.any(active)):
        out[active] = self._cells[rows_arr[active], columns[active]]
    return out


def _build(n=1024, seed=0):
    from repro.core import LowContentionDictionary

    keys, N = make_instance(n, seed)
    d = LowContentionDictionary(keys, N, rng=np.random.default_rng(seed + 1))
    rng = np.random.default_rng(seed + 2)
    pos = rng.choice(keys, size=BATCH_SIZE // 2)
    neg = rng.integers(0, N, size=BATCH_SIZE - BATCH_SIZE // 2)
    return d, np.concatenate([pos, neg])


def _time_queries(d, xs) -> float:
    d.query_batch(xs, rng=np.random.default_rng(1))  # untimed warm-up
    best = np.inf
    for rep in range(REPEATS):
        rng = np.random.default_rng(1)
        t0 = time.perf_counter()
        for _ in range(BATCHES):
            d.query_batch(xs, rng=rng)
        best = min(best, time.perf_counter() - t0)
    return best / (BATCHES * len(xs))


def measure(seed: int = 0) -> dict:
    d, xs = _build(seed=seed)

    patched_read, patched_batch = Table.read, Table.read_batch
    Table.read, Table.read_batch = _seed_read, _seed_read_batch
    try:
        t_seed = _time_queries(d, xs)
    finally:
        Table.read, Table.read_batch = patched_read, patched_batch

    t_disabled = _time_queries(d, xs)
    with collect_bus_metrics():
        t_enabled = _time_queries(d, xs)

    return {
        "benchmark": "e20_telemetry_overhead",
        "queries_per_timing": BATCHES * len(xs),
        "repeats": REPEATS,
        "seed_s_per_query": t_seed,
        "disabled_s_per_query": t_disabled,
        "enabled_s_per_query": t_enabled,
        "disabled_over_seed": t_disabled / t_seed,
        "enabled_over_seed": t_enabled / t_seed,
        "gate_ratio": GATE_RATIO,
        "gate_passed": bool(t_disabled / t_seed <= GATE_RATIO),
    }


def main(argv) -> int:
    gate = "--gate" in argv
    row = measure()
    out = REPO_ROOT / "BENCH_PR4.json"
    out.write_text(json.dumps(row, indent=2) + "\n")
    print(json.dumps(row, indent=2))
    print(f"wrote {out}")
    if gate and not row["gate_passed"]:
        print(
            f"GATE FAILED: disabled-telemetry path is "
            f"{(row['disabled_over_seed'] - 1) * 100:.2f}% over the seed "
            f"(budget {(GATE_RATIO - 1) * 100:.0f}%)",
            file=sys.stderr,
        )
        return 1
    return 0


def test_bench_e20_telemetry(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E20",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    a, b, c, d = result.rows
    assert a["byte_identical"] is True
    assert b["false_alarms"] == 0 and b["checks"] >= 100
    assert c["alarm_batch"] != "never" and c["alarm_batch"] <= c["budget"]
    assert d["healthy_alarms"] == 0 and d["stuck_alarm_check"] != "never"


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
