"""Bench E21 — chaos steady-state and the healing-layer overhead gate.

Two entry points:

- ``python benchmarks/bench_e21_chaos.py [--gate]`` — standalone:
  runs the seeded chaos experiment end to end and times a clean
  (fault-free) serve run in three configurations:

  * **plain** — unarmed service, no healing machinery constructed;
  * **armed-inert** — ``FaultConfig(armed=True)`` with every rate
    zero, healing never enabled (the dormant-hooks state every chaos
    run starts from);
  * **healing** — health manager enabled, verified dispatch and the
    background healing tick live on the serve path.

  Writes the machine-readable ``BENCH_PR5.json`` at the repo root.
  ``--gate`` exits nonzero if the chaos run produced a wrong answer or
  a quarantine violation, if armed-but-inert accounting is not
  byte-identical to the plain run, or if the armed-inert serve path
  costs more than ``GATE_RATIO`` over plain (dormant hooks are one
  wrapper indirection per batch, bounded well below the healing
  path's verified-dispatch cost; the CI chaos job runs this).

- under pytest-benchmark — regenerates the E21 table and asserts its
  headline invariants (zero wrong answers, zero quarantine
  violations, both damaged replicas healed byte-exact, stuck replica
  incorrigibly quarantined, all envelope windows in bounds).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from repro.experiments import run_experiment
from repro.experiments.common import make_instance, uniform_distribution
from repro.faults import FaultConfig
from repro.serve import build_service, run_loadgen

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Dormant fault hooks (the inert ``FaultyTable`` wrapper) may cost at
#: most this factor over a service built without them — one Python
#: indirection per batch at this scale, far under the ~2.4x the live
#: healing path pays for verified dispatch.
GATE_RATIO = 1.30

REPEATS = 5
REQUESTS = 1200
RATE = 256.0


def _run_once(faults=None, heal=False, n=96, seed=0):
    keys, N = make_instance(n, seed=seed)
    service = build_service(
        keys, N, num_shards=1, replicas=3, router="random",
        max_batch=32, max_delay=0.25, capacity=1024,
        faults=faults, seed=seed + 1,
    )
    if heal:
        service.enable_healing(seed=seed + 2)
    dist = uniform_distribution(keys, N)
    t0 = time.perf_counter()
    report = run_loadgen(
        service, dist, num_requests=REQUESTS, rate=RATE, seed=seed + 3,
        expected_keys=keys,
    )
    elapsed = time.perf_counter() - t0
    digests = tuple(d.table.counter.digest() for d in service.shards)
    return elapsed, report, digests


def measure(seed: int = 0) -> dict:
    # Interleave the three configurations within each repeat so clock
    # drift and cache state hit all of them equally; min-of-repeats
    # per configuration is then drift-robust.
    configs = {
        "plain": {},
        "inert": {"faults": FaultConfig(armed=True)},
        "heal": {"faults": FaultConfig(armed=True), "heal": True},
    }
    best: dict = {}
    reports: dict = {}
    digests: dict = {}
    for name, kwargs in configs.items():  # untimed warm-up pass
        _run_once(seed=seed, **kwargs)
    for _ in range(REPEATS):
        for name, kwargs in configs.items():
            elapsed, reports[name], digests[name] = _run_once(
                seed=seed, **kwargs
            )
            best[name] = min(best.get(name, elapsed), elapsed)
    t_plain, t_inert, t_heal = best["plain"], best["inert"], best["heal"]
    rep_plain, rep_inert, rep_heal = (
        reports["plain"], reports["inert"], reports["heal"],
    )
    dig_plain, dig_inert = digests["plain"], digests["inert"]

    result = run_experiment("E21", fast=True, seed=seed)
    run_row = result.rows[0]
    heal_row = result.rows[1]

    return {
        "benchmark": "e21_chaos",
        "requests_per_timing": REQUESTS,
        "repeats": REPEATS,
        "plain_s": t_plain,
        "armed_inert_s": t_inert,
        "healing_s": t_heal,
        "armed_inert_over_plain": t_inert / t_plain,
        "healing_over_plain": t_heal / t_plain,
        "inert_byte_identical": bool(dig_inert == dig_plain),
        "clean_wrong_answers": int(
            rep_plain.wrong_answers
            + rep_inert.wrong_answers
            + rep_heal.wrong_answers
        ),
        "chaos_wrong_answers": int(run_row["wrong_answers"]),
        "chaos_violations": int(run_row["violations"]),
        "chaos_recoveries": int(heal_row["recoveries"]),
        "chaos_pass": bool("Overall: PASS" in result.finding),
        "gate_ratio": GATE_RATIO,
        "gate_passed": bool(
            dig_inert == dig_plain
            and t_inert / t_plain <= GATE_RATIO
            and run_row["wrong_answers"] == 0
            and run_row["violations"] == 0
            and "Overall: PASS" in result.finding
        ),
    }


def main(argv) -> int:
    gate = "--gate" in argv
    row = measure()
    out = REPO_ROOT / "BENCH_PR5.json"
    out.write_text(json.dumps(row, indent=2) + "\n")
    print(json.dumps(row, indent=2))
    print(f"wrote {out}")
    if gate and not row["gate_passed"]:
        print(
            f"GATE FAILED: inert_byte_identical="
            f"{row['inert_byte_identical']}, armed-inert overhead "
            f"{(row['armed_inert_over_plain'] - 1) * 100:.2f}% "
            f"(budget {(GATE_RATIO - 1) * 100:.0f}%), chaos "
            f"wrong={row['chaos_wrong_answers']} "
            f"violations={row['chaos_violations']} "
            f"pass={row['chaos_pass']}",
            file=sys.stderr,
        )
        return 1
    return 0


def test_bench_e21_chaos(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E21",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    run_row, heal_row = result.rows[0], result.rows[1]
    windows = result.rows[2:]
    assert run_row["wrong_answers"] == 0
    assert run_row["violations"] == 0
    assert heal_row["stuck_replica_quarantined"] is True
    assert heal_row["healed_replicas"] == "1,3"
    assert heal_row["repaired_byte_exact"] is True
    assert heal_row["recoveries"] >= 2
    assert heal_row["cells_repaired"] > 0 and heal_row["rows_rebuilt"] > 0
    assert len(windows) == 3
    assert all(w["ok"] and w["quiet"] for w in windows)
    assert "Overall: PASS" in result.finding


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
