"""Bench E22 — multicore fabric: scaling, Binomial envelope, equivalence.

Two entry points:

- ``python benchmarks/bench_e22_multicore.py [--gate]`` — standalone:
  measures closed-loop bulk throughput of the :mod:`repro.parallel`
  fabric at 1, 2, and 4 worker processes (min of interleaved repeats,
  boot excluded), then runs the seeded E22 experiment for the Binomial
  envelope and the engine-equivalence digests.  Writes the
  machine-readable ``BENCH_PR6.json`` at the repo root.

  ``--gate`` exits nonzero if equivalence or the Binomial envelope
  fails, and — **only on hosts with >= 2 CPUs** — if 2 workers do not
  reach ``GATE_SCALING``x the 1-worker throughput.  A single-core host
  cannot exhibit real scaling (two processes time-slice one core), so
  there the scaling check is recorded as skipped rather than failed;
  the correctness gates always run.

- under pytest-benchmark — regenerates the E22 table and asserts its
  headline invariants (Binomial z within threshold, answers and
  digests engine-identical).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import numpy as np

from repro.experiments import run_experiment
from repro.experiments.common import make_instance
from repro.parallel import build_parallel_service

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Minimum 2-worker speedup over 1 worker on a multi-core host.
GATE_SCALING = 1.5

#: Hottest-cell z-score bound for the Binomial(Q, Phi_t) envelope.
GATE_SIGMA = 3.0

REPEATS = 3
QUERIES = 20000
WORKER_LADDER = (1, 2, 4)


def _query_stream(keys, N, count, seed):
    rng = np.random.default_rng(seed)
    members = rng.choice(keys, size=count // 2, replace=True)
    others = rng.integers(0, N, size=count - count // 2)
    qs = np.concatenate([members, others])
    rng.shuffle(qs)
    return qs.astype(np.int64)


def _serve_once(svc, qs) -> float:
    t0 = time.perf_counter()
    svc.query_batch(qs)
    return time.perf_counter() - t0


def measure(seed: int = 0) -> dict:
    n = 192
    cpus = os.cpu_count() or 1
    keys, N = make_instance(n, seed=seed)
    qs = _query_stream(keys, N, QUERIES, seed + 1)

    # Boot each fabric once, warm it, then interleave timed repeats
    # across worker counts so clock drift hits every ladder rung
    # equally; min-of-repeats per rung is drift-robust.
    services = {
        procs: build_parallel_service(
            keys, N, procs=procs, num_shards=1, replicas=4,
            router="round-robin", max_batch=64, seed=seed + 2,
        )
        for procs in WORKER_LADDER
    }
    best: dict[int, float] = {}
    try:
        for svc in services.values():  # untimed warm-up pass
            svc.query_batch(qs[:1024])
        for _ in range(REPEATS):
            for procs, svc in services.items():
                elapsed = _serve_once(svc, qs)
                best[procs] = min(best.get(procs, elapsed), elapsed)
    finally:
        for svc in services.values():
            svc.close()
    qps = {procs: QUERIES / t for procs, t in best.items()}
    scaling_2w = qps[2] / qps[1]

    result = run_experiment("E22", fast=True, seed=seed)
    equiv = result.rows[-1]
    z_rows = [r for r in result.rows if r["part"] == "B:binomial"]
    worst_z = max((r["z"] for r in z_rows), default=0.0)

    scaling_gated = cpus >= 2
    scaling_ok = (not scaling_gated) or scaling_2w >= GATE_SCALING
    return {
        "benchmark": "e22_multicore",
        "cpus": cpus,
        "queries_per_timing": QUERIES,
        "repeats": REPEATS,
        "qps_1w": int(qps[1]),
        "qps_2w": int(qps[2]),
        "qps_4w": int(qps[4]),
        "scaling_2w": round(scaling_2w, 3),
        "scaling_4w": round(qps[4] / qps[1], 3),
        "gate_scaling": GATE_SCALING,
        "scaling_gated": scaling_gated,
        "scaling_skip_reason": (
            None if scaling_gated
            else f"host has {cpus} CPU(s); real scaling needs >= 2"
        ),
        "binomial_worst_z": worst_z,
        "binomial_sigma_bound": GATE_SIGMA,
        "answers_equal": bool(equiv["answers_equal"]),
        "digests_equal": bool(equiv["digests_equal"]),
        "gate_passed": bool(
            scaling_ok
            and worst_z <= GATE_SIGMA
            and equiv["answers_equal"]
            and equiv["digests_equal"]
        ),
    }


def main(argv) -> int:
    gate = "--gate" in argv
    row = measure()
    out = REPO_ROOT / "BENCH_PR6.json"
    out.write_text(json.dumps(row, indent=2) + "\n")
    print(json.dumps(row, indent=2))
    print(f"wrote {out}")
    if gate and not row["gate_passed"]:
        print(
            f"GATE FAILED: scaling_2w={row['scaling_2w']} "
            f"(need {GATE_SCALING} on {row['cpus']} cpus, "
            f"gated={row['scaling_gated']}), "
            f"binomial_worst_z={row['binomial_worst_z']} "
            f"(bound {GATE_SIGMA}), "
            f"answers_equal={row['answers_equal']}, "
            f"digests_equal={row['digests_equal']}",
            file=sys.stderr,
        )
        return 1
    return 0


def test_bench_e22_multicore(benchmark, bench_fast, record_result):
    result = benchmark.pedantic(
        run_experiment,
        args=("E22",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    z_rows = [r for r in result.rows if r["part"] == "B:binomial"]
    assert z_rows and max(r["z"] for r in z_rows) <= GATE_SIGMA
    equiv = result.rows[-1]
    assert equiv["answers_equal"] is True
    assert equiv["digests_equal"] is True
    scaling_rows = [r for r in result.rows if r["part"] == "A:scaling"]
    assert scaling_rows and all(r["qps"] > 0 for r in scaling_rows)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
