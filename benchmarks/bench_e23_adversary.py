"""Bench E23 — adversarial search: evolution, verification, fixtures.

Two entry points:

- ``python benchmarks/bench_e23_adversary.py [--gate]`` — standalone:
  runs the seeded (μ+λ) genome search on three independent seeds,
  re-evaluates each best genome (byte-identical replay digest, zero
  wrong answers, zero quarantine violations under healing), and
  replays every committed fixture under ``tests/fixtures/genomes/``.
  Writes the machine-readable ``BENCH_PR7.json`` at the repo root.

  ``--gate`` exits nonzero unless, on every seed, the evolved best
  strictly out-scores the hand-tuned
  :meth:`~repro.serve.chaos.ChaosSchedule.generate` baseline AND its
  verification replay is byte-identical with zero correctness
  violations AND every committed fixture passes its regression
  replay.

- under pytest-benchmark — times one search run and asserts the same
  headline invariants (beat baseline, verified replay, clean
  fixtures).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.adversary import (
    EvalConfig,
    evaluate,
    fixture_paths,
    replay_fixture,
    search,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURE_DIR = REPO_ROOT / "tests" / "fixtures" / "genomes"

#: Independent search seeds — the E23 acceptance criterion.
SEEDS = (0, 1, 2)

GENERATIONS = 3
POPULATION = 5


def _search_once(config: EvalConfig, seed: int) -> dict:
    """One seeded search + verification replay, as a flat gate row."""
    t0 = time.perf_counter()
    result = search(
        config, seed=seed, generations=GENERATIONS,
        population=POPULATION, elites=2,
    )
    search_seconds = time.perf_counter() - t0
    replay = evaluate(result.best_genome, config, seed)
    wrong = int(replay.metrics.get("wrong_answers", -1))
    violations = int(replay.metrics.get("violations", -1))
    return {
        "seed": seed,
        "best_fitness": round(result.best.fitness, 6),
        "baseline_fitness": round(result.baseline.fitness, 6),
        "beat_baseline": result.beat_baseline,
        "evaluations": result.evaluations,
        "search_seconds": round(search_seconds, 3),
        "digest_match": replay.digest == result.best.digest,
        "wrong_answers": wrong,
        "violations": violations,
        "verified": (
            replay.digest == result.best.digest
            and wrong == 0
            and violations == 0
        ),
    }


def measure(seed: int = 0) -> dict:
    config = EvalConfig()
    rows = [_search_once(config, int(seed) + s) for s in SEEDS]
    fixture_rows = [
        {
            "fixture": v["fixture"],
            "fitness": round(v["fitness"], 6),
            "digest_match": v["digest_match"],
            "no_wrong_answers": v["no_wrong_answers"],
            "no_violations": v["no_violations"],
            "passed": v["passed"],
        }
        for v in (replay_fixture(p) for p in fixture_paths(FIXTURE_DIR))
    ]
    all_beat = all(r["beat_baseline"] for r in rows)
    all_verified = all(r["verified"] for r in rows)
    fixtures_ok = all(r["passed"] for r in fixture_rows)
    return {
        "benchmark": "e23_adversary",
        "generations": GENERATIONS,
        "population": POPULATION,
        "seeds": list(SEEDS),
        "searches": rows,
        "fixtures": fixture_rows,
        "fixtures_replayed": len(fixture_rows),
        "all_beat_baseline": all_beat,
        "all_verified": all_verified,
        "fixtures_ok": fixtures_ok,
        "gate_passed": bool(all_beat and all_verified and fixtures_ok),
    }


def main(argv) -> int:
    gate = "--gate" in argv
    row = measure()
    out = REPO_ROOT / "BENCH_PR7.json"
    out.write_text(json.dumps(row, indent=2) + "\n")
    print(json.dumps(row, indent=2))
    print(f"wrote {out}")
    if gate and not row["gate_passed"]:
        print(
            f"GATE FAILED: all_beat_baseline={row['all_beat_baseline']}, "
            f"all_verified={row['all_verified']}, "
            f"fixtures_ok={row['fixtures_ok']} "
            f"({row['fixtures_replayed']} fixture(s))",
            file=sys.stderr,
        )
        return 1
    return 0


def test_bench_e23_adversary(benchmark, bench_fast, record_result):
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        run_experiment,
        args=("E23",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    b_rows = [r for r in result.rows if r["part"] == "B"]
    assert b_rows and all(r["verified"] for r in b_rows)
    a_rows = [r for r in result.rows if r["part"] == "A"]
    assert a_rows and all(r["beat_baseline"] for r in a_rows)
    d_rows = [r for r in result.rows if r["part"] == "D"]
    assert d_rows and all(r["passed"] for r in d_rows)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
