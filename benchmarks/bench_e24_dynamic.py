"""Bench E24 — dynamic serving: updates, epochs, chaos, accounting.

Two entry points:

- ``python benchmarks/bench_e24_dynamic.py [--gate]`` — standalone:
  runs experiment E24 on three independent seeds and collects each
  seed's gate row (zero wrong answers under interleaved updates +
  crash/corruption chaos, linearizable epoch-pinned reads,
  rebuild-probe isolation with byte-identical query-counter digests,
  amortized cost curves vs the Ω(lg n) reference).  Also re-checks the
  accounting byte-identity directly (verify-on vs verify-off replay of
  one seeded stream).  Writes the machine-readable ``BENCH_PR8.json``
  at the repo root.

  ``--gate`` exits nonzero unless every seed's E24 gate passed and the
  direct digest check is byte-identical.

- under pytest-benchmark — times one E24 run and asserts the same
  headline invariants.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Independent seeds — the E24 acceptance criterion.
SEEDS = (0, 1, 2)


def _e24_once(seed: int, fast: bool) -> dict:
    """One seeded E24 run, reduced to a flat gate row."""
    from repro.experiments import run_experiment

    t0 = time.perf_counter()
    result = run_experiment("E24", fast=fast, seed=seed)
    seconds = time.perf_counter() - t0
    by_part: dict[str, list[dict]] = {}
    for row in result.rows:
        by_part.setdefault(str(row.get("part")), []).append(row)
    gate = bool(by_part["gate"][0]["all checks passed"])
    chaos = by_part["B:chaos"][0]
    pins = by_part["C:pins"][0]
    acct = by_part["D:accounting"][0]
    cost_rows = by_part.get("A:cost", [])
    return {
        "seed": seed,
        "seconds": round(seconds, 3),
        "gate": gate,
        "wrong_answers": int(chaos["wrong"]),
        "reads": int(chaos["reads"]),
        "updates": int(chaos["updates"]),
        "pinned_read_exact": bool(pins["pinned read exact"]),
        "retained_while_pinned": int(pins["retained while pinned"]),
        "digest_identical": bool(acct["query digest identical"]),
        "rebuild_probes_isolated": (
            int(acct["rebuild probes (verify on)"]) > 0
            and int(acct["rebuild probes (verify off)"]) == 0
        ),
        "amortized_vs_lg_n": [
            {
                "live_n": int(r["live n"]),
                "amortized": float(r["amortized cells/update"]),
                "lg2_n": float(r["lg2(n) reference"]),
                "ratio": float(r["ratio"]),
            }
            for r in cost_rows
        ],
    }


def _digest_identity_check(seed: int = 0) -> dict:
    """Direct verify-on vs verify-off replay of one seeded stream."""
    from repro.dynamic import DynamicLowContentionDictionary
    from repro.utils.rng import as_generator

    digests = []
    probes = []
    for verify in (True, False):
        rng = as_generator(seed + 31)
        d = DynamicLowContentionDictionary(
            1 << 14, rng=as_generator(seed + 32), verify_rebuilds=verify
        )
        for _ in range(200):
            k = int(rng.integers(0, 512))
            if rng.random() < 0.75:
                d.insert(k)
            else:
                d.delete(k)
        xs = rng.integers(0, 1 << 14, size=400)
        d.query_batch(xs, as_generator(seed + 33))
        digests.append(d.query_counter_digest())
        probes.append(d.rebuild_probes)
    return {
        "digest_verify_on": digests[0],
        "digest_verify_off": digests[1],
        "identical": digests[0] == digests[1],
        "rebuild_probes_verify_on": probes[0],
        "rebuild_probes_verify_off": probes[1],
    }


def measure(seed: int = 0, fast: bool = False) -> dict:
    rows = [_e24_once(int(seed) + s, fast) for s in SEEDS]
    identity = _digest_identity_check(int(seed))
    all_gates = all(r["gate"] for r in rows)
    no_wrong = all(r["wrong_answers"] == 0 for r in rows)
    all_pinned = all(r["pinned_read_exact"] for r in rows)
    all_isolated = all(r["rebuild_probes_isolated"] for r in rows)
    identity_ok = bool(
        identity["identical"]
        and identity["rebuild_probes_verify_on"] > 0
        and identity["rebuild_probes_verify_off"] == 0
    )
    return {
        "benchmark": "e24_dynamic",
        "seeds": list(SEEDS),
        "runs": rows,
        "digest_identity": identity,
        "all_gates": all_gates,
        "no_wrong_answers": no_wrong,
        "all_pinned_exact": all_pinned,
        "all_rebuild_isolated": all_isolated,
        "gate_passed": bool(
            all_gates and no_wrong and all_pinned and all_isolated
            and identity_ok
        ),
    }


def main(argv) -> int:
    gate = "--gate" in argv
    fast = "--fast" in argv
    row = measure(fast=fast)
    out = REPO_ROOT / "BENCH_PR8.json"
    out.write_text(json.dumps(row, indent=2) + "\n")
    print(json.dumps(row, indent=2))
    print(f"wrote {out}")
    if gate and not row["gate_passed"]:
        print(
            f"GATE FAILED: all_gates={row['all_gates']}, "
            f"no_wrong_answers={row['no_wrong_answers']}, "
            f"all_pinned_exact={row['all_pinned_exact']}, "
            f"all_rebuild_isolated={row['all_rebuild_isolated']}, "
            f"digest_identity={row['digest_identity']['identical']}",
            file=sys.stderr,
        )
        return 1
    return 0


def test_bench_e24_dynamic(benchmark, bench_fast, record_result):
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        run_experiment,
        args=("E24",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    gate = [r for r in result.rows if r.get("part") == "gate"]
    assert gate and bool(gate[0]["all checks passed"])
    chaos = [r for r in result.rows if r.get("part") == "B:chaos"]
    assert chaos and int(chaos[0]["wrong"]) == 0
    acct = [r for r in result.rows if r.get("part") == "D:accounting"]
    assert acct and bool(acct[0]["query digest identical"])
    assert int(acct[0]["rebuild probes (verify on)"]) > 0
    assert np.all([
        int(acct[0]["rebuild probes (verify off)"]) == 0
    ])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
