"""Bench E25 — closed-loop autotuning: adaptive vs static replication.

Two entry points:

- ``python benchmarks/bench_e25_autotune.py [--gate] [--fast]`` —
  standalone: runs experiment E25 on three independent seeds and
  collects each seed's gate row (adaptive replication beats the best
  static uniform config on p99 without extra shedding under Zipf and
  flash-crowd load at equal probe budget; zero wrong answers under
  chaos; disabled-controller digests byte-identical; clone
  verification charged to the reconfiguration counter with on/off
  decision identity; traces replay byte-for-byte).  Also re-checks the
  decision-trace replay directly through the pure engine.  Writes the
  machine-readable ``BENCH_PR9.json`` at the repo root.

  ``--gate`` exits nonzero unless every seed's E25 gate passed and the
  direct trace replay matched.

- under pytest-benchmark — times one E25 run and asserts the same
  headline invariants.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Independent seeds — the E25 acceptance criterion.
SEEDS = (0, 1, 2)


def _adaptive_row(rows: list[dict], part: str) -> dict:
    """The adaptive-config summary row for one A/B part."""
    return next(
        r for r in rows
        if r.get("part") == part and r.get("config") == "adaptive"
    )


def _e25_once(seed: int, fast: bool) -> dict:
    """One seeded E25 run, reduced to a flat gate row."""
    from repro.experiments import run_experiment

    t0 = time.perf_counter()
    result = run_experiment("E25", fast=fast, seed=seed)
    seconds = time.perf_counter() - t0
    rows = result.rows
    gate = bool(next(
        r for r in rows if r.get("part") == "gate"
    )["all checks passed"])
    zipf = _adaptive_row(rows, "A zipf")
    flash = _adaptive_row(rows, "B flash")
    chaos = next(r for r in rows if r.get("part") == "D chaos")
    identity = next(r for r in rows if r.get("part") == "E identity")
    return {
        "seed": seed,
        "seconds": round(seconds, 3),
        "gate": gate,
        "zipf_beats_best_static": bool(zipf["beats_best_static"]),
        "zipf_p99": float(zipf["p99"]),
        "zipf_actions": int(zipf["actions"]),
        "flash_beats_best_static": bool(flash["beats_best_static"]),
        "flash_p99": float(flash["p99"]),
        "flash_probe_ratio": float(flash["probe_ratio_vs_best_static"]),
        "chaos_wrong_answers": int(chaos["wrong answers"]),
        "chaos_violations": int(chaos["violations"]),
        "disabled_digests_identical": bool(
            identity["disabled digests identical"]
        ),
        "verify_decisions_identical": bool(
            identity["verify on/off decisions identical"]
        ),
        "trace_replays": bool(identity["trace replays"]),
    }


def _trace_replay_check(seed: int = 0) -> dict:
    """Direct run-then-replay of one seeded adaptive workload."""
    from repro.autotune import AutotunePolicy, replay_trace
    from repro.experiments.common import make_instance
    from repro.serve.service import build_service
    from repro.utils.rng import as_generator

    keys, universe = make_instance(96, seed + 41)
    service = build_service(
        keys, universe, num_shards=2, replicas=2, probe_time=0.02,
        max_batch=8, max_delay=0.5, capacity=256, seed=seed + 42,
    )
    controller = service.enable_autotune(
        policy=AutotunePolicy(check_every=0.5, cooldown=1.5),
        seed=seed + 43,
    )
    rng = as_generator(seed + 44)
    now = 0.0
    for _ in range(400):
        now += 1.0 / 48.0
        service.advance(now)
        hot = rng.random() < 0.8
        x = int(rng.integers(0, universe // 2 if hot else universe))
        try:
            service.submit(x, now)
        except Exception:
            pass
    service.drain(now + 16.0)
    report = replay_trace(controller.trace_payload())
    return {
        "entries": int(report["entries"]),
        "actions": int(controller.applied),
        "digest": controller.trace_digest(),
        "match": bool(report["match"]),
    }


def measure(seed: int = 0, fast: bool = False) -> dict:
    rows = [_e25_once(int(seed) + s, fast) for s in SEEDS]
    replay = _trace_replay_check(int(seed))
    all_gates = all(r["gate"] for r in rows)
    no_wrong = all(r["chaos_wrong_answers"] == 0 for r in rows)
    all_adaptive = all(
        r["zipf_beats_best_static"] and r["flash_beats_best_static"]
        for r in rows
    )
    all_identity = all(
        r["disabled_digests_identical"]
        and r["verify_decisions_identical"]
        and r["trace_replays"]
        for r in rows
    )
    return {
        "benchmark": "e25_autotune",
        "seeds": list(SEEDS),
        "runs": rows,
        "trace_replay": replay,
        "all_gates": all_gates,
        "no_wrong_answers": no_wrong,
        "all_adaptive_wins": all_adaptive,
        "all_identity_checks": all_identity,
        "gate_passed": bool(
            all_gates and no_wrong and all_adaptive and all_identity
            and replay["match"]
        ),
    }


def main(argv) -> int:
    gate = "--gate" in argv
    fast = "--fast" in argv
    row = measure(fast=fast)
    out = REPO_ROOT / "BENCH_PR9.json"
    out.write_text(json.dumps(row, indent=2) + "\n")
    print(json.dumps(row, indent=2))
    print(f"wrote {out}")
    if gate and not row["gate_passed"]:
        print(
            f"GATE FAILED: all_gates={row['all_gates']}, "
            f"no_wrong_answers={row['no_wrong_answers']}, "
            f"all_adaptive_wins={row['all_adaptive_wins']}, "
            f"all_identity_checks={row['all_identity_checks']}, "
            f"trace_replay={row['trace_replay']['match']}",
            file=sys.stderr,
        )
        return 1
    return 0


def test_bench_e25_autotune(benchmark, bench_fast, record_result):
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        run_experiment,
        args=("E25",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    gate = [r for r in result.rows if r.get("part") == "gate"]
    assert gate and bool(gate[0]["all checks passed"])
    chaos = [r for r in result.rows if r.get("part") == "D chaos"]
    assert chaos and int(chaos[0]["wrong answers"]) == 0
    identity = [
        r for r in result.rows if r.get("part") == "E identity"
    ]
    assert identity and bool(identity[0]["disabled digests identical"])
    assert bool(identity[0]["trace replays"])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
