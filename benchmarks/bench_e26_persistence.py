"""Bench E26 — durable checkpoints and log compaction.

Two entry points:

- ``python benchmarks/bench_e26_persistence.py [--gate] [--fast]`` —
  standalone: runs experiment E26 on three independent seeds and
  collects each seed's gate row (SIGKILL mid-checkpoint leaves the
  previous generation restorable with zero wrong answers and
  byte-identical cells versus a never-crashed twin; corrupt files are
  quarantined with typed reasons and recovery falls back a generation;
  a retention policy bounds the retained log while the unbounded stack
  grows linearly; restore verification on/off yields byte-identical
  query-counter digests).  Also times one direct save/restore
  round-trip through ``repro.persist`` and re-checks byte identity.
  Writes the machine-readable ``BENCH_PR10.json`` at the repo root.

  ``--gate`` exits nonzero unless every seed's E26 gate passed and the
  direct round-trip restored byte-identical state.

- under pytest-benchmark — times one E26 run and asserts the same
  headline invariants.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Independent seeds — the E26 acceptance criterion.
SEEDS = (0, 1, 2)


def _e26_once(seed: int, fast: bool) -> dict:
    """One seeded E26 run, reduced to a flat gate row."""
    from repro.experiments import run_experiment

    t0 = time.perf_counter()
    result = run_experiment("E26", fast=fast, seed=seed)
    seconds = time.perf_counter() - t0
    rows = result.rows
    gate = bool(next(
        r for r in rows if r.get("part") == "gate"
    )["all checks passed"])
    sigkill = [r for r in rows if r.get("part") == "A sigkill"]
    quarantine = [r for r in rows if r.get("part") == "B quarantine"]
    bounded = next(r for r in rows if r.get("part") == "C bounded log")
    identity = next(
        r for r in rows if r.get("part") == "D verify identity"
    )
    return {
        "seed": seed,
        "seconds": round(seconds, 3),
        "gate": gate,
        "sigkill_rows": len(sigkill),
        "sigkill_wrong": sum(int(r["wrong"]) for r in sigkill),
        "sigkill_max_replayed": max(int(r["replayed"]) for r in sigkill),
        "replay_bound": int(sigkill[0]["replay bound"]),
        "sigkill_twin_identical": all(
            bool(r["twin identical"]) for r in sigkill
        ),
        "quarantine_ok": all(bool(r["ok"]) for r in quarantine),
        "peak_retained_bounded": int(bounded["peak retained (bounded)"]),
        "peak_retained_unbounded": int(
            bounded["peak retained (unbounded)"]
        ),
        "compactions": int(bounded["compactions"]),
        "verify_digests_identical": bool(
            identity["query digests identical"]
        ),
    }


def _cells_digest(shard) -> str:
    h = hashlib.sha256()
    for r in sorted(shard.live_replicas()):
        rep = shard._replicas[r]
        for lv in rep._levels.nonempty_levels:
            h.update(lv.structure.table._cells.tobytes())
    return h.hexdigest()


def _round_trip_check(seed: int = 0) -> dict:
    """Direct timed save/restore of one seeded dynamic service."""
    from numpy.random import default_rng

    from repro.persist import CheckpointStore, restore_dynamic_service
    from repro.serve.dynamic_service import build_dynamic_service

    universe = 1 << 11
    service = build_dynamic_service(
        universe, num_shards=2, replicas=2, seed=seed + 51,
        update_capacity=universe, log_retention=64,
    )
    rng = default_rng(seed + 52)
    now = 0.0
    for _ in range(300):
        x = int(rng.integers(0, universe))
        service.submit_update(x, bool(rng.random() < 0.75), now)
        now += 0.25
    service.drain(now + 8.0)
    with tempfile.TemporaryDirectory() as d:
        store = CheckpointStore(d)
        service.attach_checkpoints(store)
        t0 = time.perf_counter()
        generation = service.checkpoint(now + 9.0)
        save_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        restored, report = restore_dynamic_service(d)
        restore_seconds = time.perf_counter() - t0
    identical = all(
        _cells_digest(a) == _cells_digest(b)
        for a, b in zip(service.shards, restored.shards)
    )
    return {
        "generation": int(generation),
        "save_seconds": round(save_seconds, 4),
        "restore_seconds": round(restore_seconds, 4),
        "replayed": int(report["replayed"]),
        "quarantined": int(report["quarantined"]),
        "cells_identical": bool(identical),
    }


def measure(seed: int = 0, fast: bool = False) -> dict:
    rows = [_e26_once(int(seed) + s, fast) for s in SEEDS]
    round_trip = _round_trip_check(int(seed))
    all_gates = all(r["gate"] for r in rows)
    no_wrong = all(r["sigkill_wrong"] == 0 for r in rows)
    all_twins = all(r["sigkill_twin_identical"] for r in rows)
    bounded_replay = all(
        r["sigkill_max_replayed"] <= r["replay_bound"] for r in rows
    )
    all_quarantine = all(r["quarantine_ok"] for r in rows)
    all_identity = all(r["verify_digests_identical"] for r in rows)
    return {
        "benchmark": "e26_persistence",
        "seeds": list(SEEDS),
        "runs": rows,
        "round_trip": round_trip,
        "all_gates": all_gates,
        "no_wrong_answers": no_wrong,
        "all_twins_identical": all_twins,
        "bounded_replay": bounded_replay,
        "all_quarantine_checks": all_quarantine,
        "all_identity_checks": all_identity,
        "gate_passed": bool(
            all_gates and no_wrong and all_twins and bounded_replay
            and all_quarantine and all_identity
            and round_trip["cells_identical"]
            and round_trip["quarantined"] == 0
        ),
    }


def main(argv) -> int:
    gate = "--gate" in argv
    fast = "--fast" in argv
    row = measure(fast=fast)
    out = REPO_ROOT / "BENCH_PR10.json"
    out.write_text(json.dumps(row, indent=2) + "\n")
    print(json.dumps(row, indent=2))
    print(f"wrote {out}")
    if gate and not row["gate_passed"]:
        print(
            f"GATE FAILED: all_gates={row['all_gates']}, "
            f"no_wrong_answers={row['no_wrong_answers']}, "
            f"all_twins_identical={row['all_twins_identical']}, "
            f"bounded_replay={row['bounded_replay']}, "
            f"all_quarantine_checks={row['all_quarantine_checks']}, "
            f"all_identity_checks={row['all_identity_checks']}, "
            f"round_trip_identical="
            f"{row['round_trip']['cells_identical']}",
            file=sys.stderr,
        )
        return 1
    return 0


def test_bench_e26_persistence(benchmark, bench_fast, record_result):
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        run_experiment,
        args=("E26",),
        kwargs={"fast": bench_fast, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    gate = [r for r in result.rows if r.get("part") == "gate"]
    assert gate and bool(gate[0]["all checks passed"])
    sigkill = [r for r in result.rows if r.get("part") == "A sigkill"]
    assert sigkill and all(int(r["wrong"]) == 0 for r in sigkill)
    assert all(bool(r["twin identical"]) for r in sigkill)
    bounded = [
        r for r in result.rows if r.get("part") == "C bounded log"
    ]
    assert bounded and bool(bounded[0]["ok"])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
