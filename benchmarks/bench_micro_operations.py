"""Microbenchmarks of the library's primitives.

Not tied to a paper table; these keep the engineering honest (guide:
measure before optimizing) and catch performance regressions in the
hot paths: vectorized hashing, construction, the exact-contention
accumulator, and single-query latency.
"""

import numpy as np
import pytest

from repro.contention import exact_contention
from repro.core import LowContentionDictionary
from repro.dictionaries import CuckooDictionary, FKSDictionary
from repro.distributions import UniformOverSet, UniformPositiveNegative
from repro.hashing import DMFamily, PolynomialFamily
from repro.utils.primes import next_prime

N = 1024
UNIVERSE = N * N


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(0)
    return np.sort(rng.choice(UNIVERSE, size=N, replace=False))


@pytest.fixture(scope="module")
def lcd(keys):
    return LowContentionDictionary(keys, UNIVERSE, rng=np.random.default_rng(1))


def test_bench_polynomial_hash_batch(benchmark):
    fam = PolynomialFamily(next_prime(UNIVERSE), N, 3)
    h = fam.sample(np.random.default_rng(0))
    xs = np.random.default_rng(1).integers(0, UNIVERSE, size=100_000)
    benchmark(h.eval_batch, xs)


def test_bench_dm_hash_batch(benchmark):
    fam = DMFamily(next_prime(UNIVERSE), N, 32, 3)
    h = fam.sample(np.random.default_rng(0))
    xs = np.random.default_rng(1).integers(0, UNIVERSE, size=100_000)
    benchmark(h.eval_batch, xs)


def test_bench_lcd_construction(benchmark, keys):
    benchmark.pedantic(
        LowContentionDictionary,
        args=(keys, UNIVERSE),
        kwargs={"rng": np.random.default_rng(2)},
        rounds=3,
        iterations=1,
    )


def test_bench_fks_construction(benchmark, keys):
    benchmark.pedantic(
        FKSDictionary,
        args=(keys, UNIVERSE),
        kwargs={"rng": np.random.default_rng(2)},
        rounds=3,
        iterations=1,
    )


def test_bench_cuckoo_construction(benchmark, keys):
    benchmark.pedantic(
        CuckooDictionary,
        args=(keys, UNIVERSE),
        kwargs={"rng": np.random.default_rng(2)},
        rounds=3,
        iterations=1,
    )


def test_bench_lcd_single_query(benchmark, lcd, keys):
    rng = np.random.default_rng(3)
    x = int(keys[17])
    benchmark(lcd.query, x, rng)


def test_bench_lcd_batch_plan(benchmark, lcd):
    xs = np.random.default_rng(4).integers(0, UNIVERSE, size=50_000)
    benchmark(lcd.probe_plan_batch, xs)


def test_bench_exact_contention_positive(benchmark, lcd, keys):
    dist = UniformOverSet(UNIVERSE, keys)
    benchmark.pedantic(
        exact_contention, args=(lcd, dist), rounds=3, iterations=1
    )


def test_bench_exact_contention_full_universe(benchmark, lcd, keys):
    """The heavy path: enumerating all N = n**2 queries exactly."""
    dist = UniformPositiveNegative(UNIVERSE, keys, 0.5)
    benchmark.pedantic(
        exact_contention, args=(lcd, dist), rounds=1, iterations=1
    )


def test_bench_dynamic_insert_stream(benchmark):
    """Amortized insert cost of the dynamized scheme (256 inserts)."""
    from repro.dynamic import DynamicLowContentionDictionary

    def run():
        d = DynamicLowContentionDictionary(
            UNIVERSE, rng=np.random.default_rng(5)
        )
        for k in range(256):
            d.insert(k)
        return d

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_dynamic_query(benchmark):
    """Query latency against a multi-level dynamic structure."""
    from repro.dynamic import DynamicLowContentionDictionary

    d = DynamicLowContentionDictionary(UNIVERSE, rng=np.random.default_rng(5))
    for k in range(300):
        d.insert(k)
    rng = np.random.default_rng(6)
    benchmark(d.query, 150, rng)


def test_bench_verify_table(benchmark, keys):
    """The cells-only structural verifier at n = 1024."""
    from repro.core import LowContentionDictionary, verify_dictionary

    d = LowContentionDictionary(keys, UNIVERSE, rng=np.random.default_rng(7))
    result = benchmark.pedantic(
        verify_dictionary, args=(d,), rounds=3, iterations=1
    )
    assert result == []
