"""Benchmark harness configuration.

Each ``bench_eXX_*.py`` file regenerates one experiment's table (the
paper has no tables/figures of its own; E1-E13 reify its claims — see
DESIGN.md §3).  pytest-benchmark measures the runner's wall time; the
regenerated table is printed (visible with ``-s``) and persisted to
``benchmarks/results/EXX.txt`` so a bench run leaves the full set of
tables on disk.

Set ``REPRO_BENCH_FULL=1`` for the full (slow) size ladders.
"""

from __future__ import annotations

import os
import pathlib

import pytest

FAST = os.environ.get("REPRO_BENCH_FULL", "0") != "1"
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_fast() -> bool:
    """True when running the quick ladders (the default)."""
    return FAST


@pytest.fixture(scope="session")
def record_result():
    """Persist and print a regenerated experiment table."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render() + "\n"
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text)
        print("\n" + text)
        return result

    return _record
