#!/usr/bin/env python3
"""Concurrent membership server: why contention is worth a constant factor.

Simulates an in-memory membership service on a shared-memory
multiprocessor: m processor threads issue back-to-back lookups against
one static table.  Memory serves one probe per cell per cycle (hot
cells queue — the QRQW/stall model).  We sweep m and compare the
low-contention dictionary against binary search and FKS.

This is the paper's opening motivation made concrete: binary search's
root cell caps the whole machine near 1 lookup-step per cycle, while
the flat probe profile of the Section 2 scheme keeps scaling until m
approaches the table width.

Run:  python examples/concurrent_server.py
"""

import numpy as np

from repro.concurrent import ConcurrentSimulator, QueuedModel
from repro.core import LowContentionDictionary
from repro.dictionaries import FKSDictionary, SortedArrayDictionary
from repro.distributions import UniformPositiveNegative
from repro.io import render_table


def main() -> None:
    n = 1024
    universe = n * n
    rng = np.random.default_rng(5)
    keys = np.sort(rng.choice(universe, size=n, replace=False))
    workload = UniformPositiveNegative(universe, keys, positive_mass=0.5)

    schemes = [
        LowContentionDictionary(keys, universe, rng=np.random.default_rng(1)),
        FKSDictionary(keys, universe, rng=np.random.default_rng(1)),
        SortedArrayDictionary(keys, universe),
    ]

    rows = []
    for d in schemes:
        for m in (16, 64, 256, 1024):
            sim = ConcurrentSimulator(
                d, workload, processors=m, model=QueuedModel(),
                rng=np.random.default_rng(9),
            )
            res = sim.run(600)
            rows.append(
                {
                    "scheme": d.name,
                    "m": m,
                    "lookups/cycle": round(res.throughput, 2),
                    "speedup vs 1/t": round(
                        res.throughput * d.max_probes, 1
                    ),
                    "mean latency": round(res.mean_latency, 1),
                    "stall %": round(100 * res.stall_fraction, 1),
                    "worst collision": res.max_cell_collisions,
                }
            )
    print(render_table(rows, title=f"Queued-memory simulation, n={n}"))
    print(
        "\n'speedup vs 1/t' normalizes throughput by each scheme's probe"
        "\ncount: ~m means perfect scaling; binary search flatlines at ~1"
        "\nbecause every lookup serializes on the root cell."
    )


if __name__ == "__main__":
    main()
