#!/usr/bin/env python3
"""Survey: contention of every dictionary under three workloads.

Reproduces the paper's Section 1.3 comparison interactively: for one
instance, measure each scheme's exact max-step contention under

- the paper's uniform-within-class distribution,
- a Zipf(1)-skewed workload over the keys,
- the scheme's own worst-case point mass.

Binary search's middle cell (contention 1) and the index-cell hot spots
of FKS/cuckoo stand out immediately; the low-contention dictionary sits
within a small constant of the 1/s floor — until the distribution turns
adversarial, which is exactly Theorem 13's regime.

Run:  python examples/contention_survey.py [n]
"""

import sys

import numpy as np

from repro.contention import exact_contention, measure, worst_point_mass
from repro.core import LowContentionDictionary
from repro.dictionaries import (
    CuckooDictionary,
    DMDictionary,
    FKSDictionary,
    LinearProbingDictionary,
    SortedArrayDictionary,
)
from repro.distributions import UniformPositiveNegative, ZipfDistribution
from repro.io import render_table

SCHEMES = [
    LowContentionDictionary,
    FKSDictionary,
    DMDictionary,
    CuckooDictionary,
    LinearProbingDictionary,
    SortedArrayDictionary,
]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    universe = n * n
    rng = np.random.default_rng(7)
    keys = np.sort(rng.choice(universe, size=n, replace=False))
    uniform = UniformPositiveNegative(universe, keys, 0.5)
    zipf = ZipfDistribution(universe, keys, exponent=1.0, shuffle_ranks=3)

    rows = []
    for cls in SCHEMES:
        d = cls(keys, universe, rng=np.random.default_rng(11))
        report = measure(d, uniform)
        phi_zipf = exact_contention(d, zipf).max_step_contention()
        _, peak, _ = worst_point_mass(d)
        rows.append(
            {
                "scheme": d.name,
                "space(words)": d.space_words,
                "probes<=": d.max_probes,
                "phi uniform": report.summary.max_step_contention,
                "x optimal": round(report.summary.ratio_step, 1),
                "phi zipf": phi_zipf,
                "phi point-mass": peak,
            }
        )
    print(render_table(rows, title=f"Contention survey at n={n}, N={universe}"))
    print(
        "\nReading guide: 'x optimal' is max step contention divided by the"
        "\n1/s floor. Theorem 3's scheme stays O(1); binary search is Theta(n)."
    )


if __name__ == "__main__":
    main()
