#!/usr/bin/env python3
"""Dynamic membership under an insert/delete stream (extension).

The paper's closing future-work question: what contention do *updates*
cause?  This example runs a random operation stream through the
logarithmic-method dynamization of the Section 2 scheme and reports the
read/write contention trade-off — with and without level-width padding.

Run:  python examples/dynamic_stream.py
"""

import numpy as np

from repro.distributions import UniformPositiveNegative
from repro.dynamic import DynamicLowContentionDictionary
from repro.io import render_table


def main() -> None:
    universe = 1 << 18
    ops, key_range, queries = 2000, 2500, 5000
    rows = []
    for label, width in (("paper-pure", 0), ("padded to ~n", 1500)):
        rng = np.random.default_rng(3)
        d = DynamicLowContentionDictionary(
            universe, rng=np.random.default_rng(4), min_level_width=width
        )
        for _ in range(ops):
            k = int(rng.integers(0, key_range))
            if rng.random() < 0.75:
                d.insert(k)
            else:
                d.delete(k)
        dist = UniformPositiveNegative(universe, d.live_keys(), 0.5)
        res = d.empirical_query_contention(dist, queries, rng)
        acct = d.account.row()
        rows.append(
            {
                "levels": label,
                "live n": d.live_count,
                "space(words)": d.space_words,
                "E[probes]": round(res["mean_probes"], 1),
                "read phi*n": round(
                    res["global_max_contention"] * d.live_count, 2
                ),
                "write phi": acct["max_write_contention"],
                "cells written/update": acct["amortized_cells_written"],
                "rebuilds": acct["rebuilds"],
            }
        )
        print(f"\n{label}: level sizes {d.level_sizes}")
        level_rows = [
            {
                "level": r["level"],
                "entries": r["entries"],
                "table width s": r["s"],
                "read max phi": round(r["max_contention"], 5),
                "floor 1/s": round(r["floor_1_over_s"], 5),
            }
            for r in res["per_level"]
        ]
        print(render_table(level_rows))

    print()
    print(render_table(rows, title="Dynamic read/write contention summary"))
    print(
        "\nReads are hottest on the SMALLEST level's table; writes on the"
        "\nNEWEST (most-rebuilt) levels. Padding level tables to width ~n"
        "\nrestores the static O(1/n) read guarantee for ~3x space, while"
        "\nwrite contention is unchanged — the open dynamic trade-off the"
        "\npaper's conclusion points at."
    )


if __name__ == "__main__":
    main()
