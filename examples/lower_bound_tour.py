#!/usr/bin/env python3
"""A guided numeric tour of the Section 3 lower bound.

Walks Theorem 13's proof chain with live numbers:

1. Lemma 19 — simulate an adaptive probe with independent per-cell
   probes (success >= 1/4, conditional law preserved);
2. Lemma 21 — couple n parallel probe sets so the union stays small;
3. Lemma 16 — the envelope bound tying information to concentration;
4. Lemma 15 — the adversary's query distribution that outlaws every
   concentrated probe specification;
5. the E[C_t] recursion — and the resulting t*(n) = Theta(log log n)
   curve.

Run:  python examples/lower_bound_tour.py
"""

import numpy as np

from repro.io import render_table
from repro.lowerbound import (
    ProductSpaceProbe,
    couple_probe_sets,
    expected_union_bound,
    lemma15_distribution,
    lemma16_lhs,
    lemma16_rhs,
    tstar_curve,
)
from repro.lowerbound.adversary import violates_all_rows
from repro.lowerbound.matrixbounds import lemma16_lhs_fractional


def main() -> None:
    rng = np.random.default_rng(0)

    print("=== Lemma 19: product-space simulation of one probe ===")
    p = rng.dirichlet(np.ones(8))
    probe = ProductSpaceProbe(p)
    print(f"probe distribution p = {np.round(p, 3)}")
    print(f"exact success probability = {probe.success_probability():.4f} (>= 0.25)")
    out = probe.output_distribution()
    print(f"conditional output law    = {np.round(out / out.sum(), 3)} (= p)")

    print("\n=== Lemma 21: coupling n probe sets to one small union ===")
    P = rng.random((6, 20)) * 0.4
    sets, base = couple_probe_sets(P, rng)
    union = set()
    for L in sets:
        union.update(int(v) for v in L)
    print(f"6 queries x 20 cells; one coupled draw:")
    print(f"  union size = {len(union)}  (bound on the mean: "
          f"{expected_union_bound(P):.2f}; naive sum of E|J_i| = "
          f"{P.sum():.2f})")

    print("\n=== Lemma 16: the envelope bound ===")
    Q = rng.random((8, 40))
    Q /= Q.sum(axis=1, keepdims=True) * 1.5
    print(f"sum_j max_i P(i,j) = {lemma16_rhs(Q):.3f}")
    print(f"|R| (integer)      = {lemma16_lhs(Q)}")
    print(f"LP relaxation      = {lemma16_lhs_fractional(Q):.3f}")
    print("(reproduction note: the paper states the integer form; its proof"
          "\n gives the LP form — off by a fraction < 1, harmless asymptotically)")

    print("\n=== Lemma 15: the adversary's distribution ===")
    M = rng.random((50, 300)) * 0.01
    q, T = lemma15_distribution(M, epsilon=0.5, delta=1.5, rng=rng)
    print(f"50 candidate probe specs over 300 queries; adversary places mass "
          f"{q.sum():.2f}\non {T.size} queries and violates all rows: "
          f"{violates_all_rows(M, q)}")

    print("\n=== The adversary loop (near-optimal contention regime) ===")
    from repro.lowerbound import play_adversarial_game

    adv_rounds, _ = play_adversarial_game(
        n=64, s=128, b=16, phi_star=1.5 / 128, t_star=4, rng=1,
        r_override=16,
    )
    for r in adv_rounds:
        print(
            f"round {r.round_index}: {r.good_rows}/{r.candidates} specs "
            f"'good' and all violated by the adversary; A'' limited to "
            f"{r.chosen_bits:.0f} bits (vs {r.uncapped_bits:.0f} uncapped); "
            f"q mass now {r.q_mass:.2f}"
        )

    print("\n=== Theorem 13: the t*(n) = Theta(log log n) curve ===")
    rows = [
        {"log2 n": k, "t*(n)": t, "log2 log2 n": round(ll, 2),
         "ratio": round(t / max(ll, 1), 2)}
        for (k, t, ll) in tstar_curve([4, 8, 16, 32, 64, 128, 256, 512])
    ]
    print(render_table(rows))
    print("\nAny balanced scheme (Definition 12) with polylog cell size and"
          "\npolylog/s contention needs at least t*(n) probes: Omega(log log n).")


if __name__ == "__main__":
    main()
