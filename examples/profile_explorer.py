#!/usr/bin/env python3
"""Visual contention profiles: where the hot cells actually are.

Renders each scheme's exact per-cell contention as a sparkline per
table row, making the *structure* of contention visible:

- binary search: a single full-height spike at the root;
- FKS: flat parameter row, spiky bucket-header rows;
- low-contention: every row near-flat at ~1/s (Theorem 3's picture).

Run:  python examples/profile_explorer.py [n]
"""

import sys

import numpy as np

from repro.contention import component_breakdown, exact_contention
from repro.core import LowContentionDictionary
from repro.dictionaries import FKSDictionary, SortedArrayDictionary
from repro.distributions import UniformPositiveNegative
from repro.io import contention_profile, horizontal_bars


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    universe = n * n
    rng = np.random.default_rng(1)
    keys = np.sort(rng.choice(universe, size=n, replace=False))
    dist = UniformPositiveNegative(universe, keys, 0.5)

    schemes = [
        SortedArrayDictionary(keys, universe),
        FKSDictionary(keys, universe, rng=np.random.default_rng(2)),
        LowContentionDictionary(keys, universe, rng=np.random.default_rng(2)),
    ]
    ratios = []
    for d in schemes:
        matrix = exact_contention(d, dist)
        ratios.append(matrix.max_step_contention() * d.table.s)
        print(f"\n=== {d.name} (n={n}, s={d.table.s}) ===")
        print("per-row total contention profile (each line = one table row):")
        print(contention_profile(matrix, width=72))
        top = matrix.hottest_cells(3)
        print(f"hottest cells (row, col, phi): {top}")
        worst = component_breakdown(matrix, d)[0]
        print(
            f"hottest component: {worst['component']} at "
            f"{worst['peak_x_s']:.1f}x the 1/s floor"
        )

    print("\nmax step contention as a multiple of the 1/s floor:")
    print(
        horizontal_bars(
            [d.name for d in schemes], ratios, width=48, unit="x"
        )
    )


if __name__ == "__main__":
    main()
