#!/usr/bin/env python3
"""Quickstart: build the low-contention dictionary and measure it.

Builds the Section 2 scheme for a random key set, runs some honest
queries (every probe charged on the instrumented table), and computes
the exact contention profile under the paper's query-distribution
class — the headline O(1/n) of Theorem 3.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cellprobe import CellProbeMachine
from repro.contention import exact_contention
from repro.core import LowContentionDictionary
from repro.distributions import UniformPositiveNegative


def main() -> None:
    rng = np.random.default_rng(42)
    n = 1024
    universe = n * n  # the paper assumes N >= n**2

    keys = np.sort(rng.choice(universe, size=n, replace=False))
    print(f"Building the low-contention dictionary: n={n}, N={universe}")
    d = LowContentionDictionary(keys, universe, rng=rng)
    p = d.params
    print(
        f"  table: {p.num_rows} rows x {p.s} cells "
        f"({d.space_words} words, {d.space_words / n:.1f} words/key)"
    )
    print(
        f"  parameters: d={p.degree}, r={p.r}, m={p.m} groups of "
        f"{p.group_size} buckets, rho={p.rho} histogram words"
    )
    print(f"  construction used {d.construction_trials} P(S) trial(s)")

    # Honest queries: the machine validates every probe against the
    # analytic plan and the answer against ground truth.
    machine = CellProbeMachine(d, check_plan=True)
    hit = machine.run_query(int(keys[0]), rng)
    miss_key = next(x for x in range(universe) if not d.contains(x))
    miss = machine.run_query(miss_key, rng)
    print(f"\nquery({int(keys[0])}) -> {hit.answer} in {hit.num_probes} probes")
    print(f"query({miss_key}) -> {miss.answer} in {miss.num_probes} probes")
    print(f"worst case: {d.max_probes} probes (one per table row)")

    # Exact contention under the paper's distribution class.
    dist = UniformPositiveNegative(universe, keys, positive_mass=0.5)
    matrix = exact_contention(d, dist)
    phi = matrix.max_step_contention()
    print(f"\nexact contention over all {universe} queries:")
    print(f"  max step contention  phi = {phi:.3e}")
    print(f"  x n = {phi * n:.3f}   (Theorem 3: O(1/n) -> this stays O(1))")
    print(f"  x s = {phi * p.s:.3f} (vs the absolute floor 1/s)")
    print(f"  hottest cells (row, col, total phi): {matrix.hottest_cells(3)}")


if __name__ == "__main__":
    main()
