"""Shim for environments without the ``wheel`` package.

All metadata lives in pyproject.toml; this file only enables the legacy
``pip install -e . --no-build-isolation`` path (the offline environment
lacks ``wheel``, which the PEP 517 editable route requires).
"""

from setuptools import setup

setup()
