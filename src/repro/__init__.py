"""repro — reproduction of "Low-Contention Data Structures" (SPAA 2010).

Public API highlights (see README.md for a tour):

- :class:`repro.core.LowContentionDictionary` — the paper's Section 2
  construction: linear space, O(1) probes, O(1/n) contention under
  uniform-within-class query distributions.
- :mod:`repro.dictionaries` — baselines (binary search, linear probing,
  FKS, DM, cuckoo) on the same instrumented cell-probe substrate.
- :mod:`repro.contention` — exact and Monte-Carlo contention measurement.
- :mod:`repro.concurrent` — simultaneous-query shared-memory simulation.
- :mod:`repro.lowerbound` — the Section 3 communication game, lemma
  machinery, and the t* = Ω(log log n) recursion.
- :mod:`repro.faults` — seeded fault injection (stuck cells, bit flips,
  crashed replicas) for the cell-probe substrate; pairs with the
  fault-tolerant query modes of
  :class:`repro.dictionaries.ReplicatedDictionary`.
- :mod:`repro.telemetry` — zero-overhead-when-disabled event bus,
  metrics (Prometheus + versioned JSON snapshots), clockless trace
  spans, and live monitors that check streaming per-cell counts against
  the exact Binomial(Q, Φ_t(j)) contention law.
- :mod:`repro.experiments` — the E1–E24 experiment registry (the paper
  has no tables/figures; these reify its claims — see DESIGN.md).
"""

__version__ = "1.0.0"

from repro.errors import (
    ConstructionError,
    CorruptQueryError,
    DistributionError,
    ExperimentFailureError,
    FaultError,
    FaultExhaustedError,
    GameError,
    OverloadError,
    ParameterError,
    QueryError,
    ReplicaUnavailableError,
    ReproError,
    ServeError,
    TableError,
    TelemetryError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ParameterError",
    "ConstructionError",
    "TableError",
    "QueryError",
    "DistributionError",
    "GameError",
    "FaultError",
    "CorruptQueryError",
    "ReplicaUnavailableError",
    "FaultExhaustedError",
    "ServeError",
    "OverloadError",
    "ExperimentFailureError",
    "TelemetryError",
]
