"""Evolutionary adversarial workload search — the repo's red team.

The chaos harness (E21) replays *fixed* seeded schedules; this
package closes ROADMAP item 5 by making the adversary adaptive.  A
:class:`~repro.adversary.genome.Genome` encodes a full attack —
workload shape, arrival rate, an update-stream program
(``update_fraction`` / ``delete_fraction`` / ``update_hot_keys``,
exercised against the mutable dynamic service when nonzero), and a
fault program including the fabric-level ``kill-worker`` /
``corrupt-segment`` events — and the
loop in :func:`~repro.adversary.search.search` evolves populations of
them with seeded :func:`~repro.adversary.operators.mutate` /
:func:`~repro.adversary.operators.crossover` against the deterministic
:func:`~repro.adversary.evaluate.evaluate` harness, whose fitness
rewards wrong answers, quarantine violations, shed traffic,
tail-latency blowup, and Binomial(Q, Φ_t) envelope exceedance.

Finds are shrunk by :func:`~repro.adversary.minimize.minimize` and
frozen by :mod:`repro.adversary.fixtures` into JSON that replays
byte-identically — each committed fixture is a permanent CI
regression gate (zero wrong answers, zero quarantine violations).
Experiment E23 and the ``repro adversary`` CLI drive the whole stack.
"""

from repro.adversary.evaluate import (
    EvalConfig,
    Evaluation,
    evaluate,
    fitness_from_metrics,
)
from repro.adversary.fixtures import (
    FIXTURE_FORMAT,
    fixture_dict,
    fixture_paths,
    load_fixture,
    replay_fixture,
    save_fixture,
)
from repro.adversary.genome import (
    GENE_KINDS,
    FaultGene,
    Genome,
    build_schedule,
    random_gene,
    random_genome,
)
from repro.adversary.minimize import minimize
from repro.adversary.operators import crossover, mutate
from repro.adversary.search import (
    SearchResult,
    baseline_genome,
    search,
)

__all__ = [
    "EvalConfig",
    "Evaluation",
    "evaluate",
    "fitness_from_metrics",
    "FIXTURE_FORMAT",
    "fixture_dict",
    "fixture_paths",
    "load_fixture",
    "replay_fixture",
    "save_fixture",
    "GENE_KINDS",
    "FaultGene",
    "Genome",
    "build_schedule",
    "random_gene",
    "random_genome",
    "minimize",
    "crossover",
    "mutate",
    "SearchResult",
    "baseline_genome",
    "search",
]
