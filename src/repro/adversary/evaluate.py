"""The deterministic genome-evaluation harness.

:func:`evaluate` replays one :class:`~repro.adversary.genome.Genome`
against up to two targets and scores the damage:

1. **The in-process healing service** — the PR-5 stack with armed
   faults and healing enabled, driven by
   :func:`~repro.serve.chaos.run_chaos` under the genome's workload,
   rate, and compiled fault schedule.  Rewards: wrong answers,
   quarantine violations, shed/degraded traffic, tail-latency blowup,
   heal time, and exceedance of the exact Binomial(Q, Φ_t) envelope
   (the E21 max-of-Gaussians test, doubled for verified dispatch).
2. **The multicore fabric** (``config.procs >= 1``) — a
   :class:`~repro.parallel.fabric.ParallelDictionaryService` serving
   the genome's query mix while the genome's fabric-level events
   (``kill-worker``, ``corrupt-segment``) land at deterministic chunk
   boundaries.  Rewards: wrong answers exposed, a stalled fabric, and
   a broken table CRC.  Fabric events apply only *between* batches, so
   no in-flight group ever sees a partial fault and the stage stays a
   pure function of ``(genome, config, seed)``.

3. **The dynamic serve stack** (``genome.update_fraction > 0``) — a
   mutable :class:`~repro.serve.dynamic_service.DynamicShardedService`
   driven by the genome's interleaved update/read stream
   (insert/delete mix from ``delete_fraction``, hot-key churn from
   ``update_hot_keys``).  Rewards: wrong answers (live or
   epoch-pinned), update-backlog shedding, and rebuild pressure.  A
   read-only genome (``update_fraction == 0``) skips this stage *and*
   contributes no ``dyn_*`` metric keys, so every pre-PR-8 fixture's
   evaluation digest is unchanged.

4. **The autotuned healing service** (``genome.autotune_cooldown >
   0``) — the healing stack with a closed-loop
   :class:`~repro.autotune.AutotuneController` attached, its cooldown
   window taken from the gene.  Rewards: wrong answers, quarantine
   violations, and **detection latency** — virtual time from silent
   damage injection to quarantine — so the search hunts for
   reconfiguration timings that retard detection.  Controller-free
   genomes skip the stage and contribute no ``at_*`` keys, preserving
   every pre-PR-9 fixture digest.

5. **The durable checkpoint chain** (``genome.checkpoint_corruption >
   0``) — a mutable service writes generation-numbered checkpoints to
   a scratch directory, the gene damages each file with its
   probability (torn write / truncation / bit rot, mode drawn from the
   evaluation seed via ``repro.faults``), and
   :func:`~repro.persist.checkpoint.restore_dynamic_service` recovers
   through the quarantine/fallback chain.  Rewards: post-restore wrong
   answers against the reference set frozen at the restored
   generation (the correctness break — quarantine let damage
   through), generations lost to fallback, and total loss.
   Corruption-free genomes skip the stage and contribute no ``ckpt_*``
   keys, preserving every pre-PR-10 fixture digest.

Everything timing-dependent (wall clock, failover counts) is excluded
from both the metrics and the digest, so
:meth:`Evaluation.digest` — a SHA-256 over the canonical metrics plus
both probe-counter digests (the E22 machinery) — is byte-identical on
every replay of the same ``(genome, config, seed)`` triple.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math

import numpy as np

from repro.adversary.genome import Genome, build_schedule
from repro.contention import exact_contention
from repro.errors import FabricError
from repro.faults import FaultConfig
from repro.serve.chaos import FABRIC_KINDS, require_armed, run_chaos
from repro.serve.service import build_service
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer
from repro.workloads.spec import distribution_from_spec

#: One-sided z allowance above the max-of-Gaussians correction (the
#: envelope becomes a *reward* above this, not a failure below it).
ENVELOPE_SIGMA = 3.0

#: Fabric-stage batch boundaries at which fabric events may land.
FABRIC_CHUNKS = 8

#: Cap on the per-process Φ cache (keyed by workload; evictions FIFO).
_PHI_CACHE_LIMIT = 64

_PHI_CACHE: dict[tuple, np.ndarray] = {}


@dataclasses.dataclass(frozen=True)
class EvalConfig:
    """The fixed (non-evolving) half of an evaluation: target sizing.

    ``procs == 0`` skips the fabric stage entirely — the search loop
    runs that way for speed and lets E23's red-team part apply fabric
    genes explicitly; fixtures record whichever config found them.
    """

    n: int = 48
    replicas: int = 5
    requests: int = 600
    procs: int = 0
    fabric_queries: int = 192
    fabric_replicas: int = 3

    def __post_init__(self):
        check_positive_integer("n", self.n)
        check_positive_integer("replicas", self.replicas)
        check_positive_integer("requests", self.requests)
        check_positive_integer("fabric_queries", self.fabric_queries)
        check_positive_integer("fabric_replicas", self.fabric_replicas)
        if int(self.procs) < 0:
            raise ValueError(f"procs must be >= 0, got {self.procs}")

    def to_dict(self) -> dict:
        """JSON-safe dict form (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "EvalConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(**{
            f.name: d[f.name]
            for f in dataclasses.fields(cls)
            if f.name in d
        })


@dataclasses.dataclass(frozen=True)
class Evaluation:
    """One genome's scored replay: fitness, raw metrics, replay digest."""

    fitness: float
    metrics: dict
    digest: str

    def row(self) -> dict:
        """Flat dict for experiment tables: fitness + key metrics."""
        keep = (
            "wrong_answers", "violations", "shed", "degraded_shed",
            "latency_p99", "envelope_exceed", "quarantined",
            "fabric_wrong", "fabric_stalled", "fabric_crc_ok",
            "dyn_wrong", "dyn_pinned_wrong", "dyn_backlog_shed",
            "dyn_rebuilds",
            "at_wrong", "at_detect_latency", "at_decisions",
            "ckpt_wrong", "ckpt_quarantined", "ckpt_generations_lost",
        )
        row = {"fitness": round(self.fitness, 4), "digest": self.digest[:12]}
        row.update({k: self.metrics[k] for k in keep if k in self.metrics})
        return row


def _phi_total(service, dist, cache_key) -> np.ndarray:
    """Exact per-cell total contention, memoized per workload shape."""
    if cache_key in _PHI_CACHE:
        return _PHI_CACHE[cache_key]
    phi = exact_contention(service.shards[0], dist).phi.sum(axis=0)
    while len(_PHI_CACHE) >= _PHI_CACHE_LIMIT:
        _PHI_CACHE.pop(next(iter(_PHI_CACHE)))
    _PHI_CACHE[cache_key] = phi
    return phi


def _envelope_exceedance(report, phi_total) -> dict:
    """The E21 envelope test as a graded signal instead of a pass/fail.

    Uses the final snapshot's cumulative per-cell counts against
    ``completed * phi * 2`` (verified dispatch probes primary +
    witness).  Returns the max z, the max-of-Gaussians threshold, and
    ``exceed = max(0, max_z - threshold)`` — the fitness reward.
    """
    snap = report.snapshots[-1]
    completed = int(snap["completed"])
    counts = np.asarray(snap["cell_counts"], dtype=np.float64)
    p = np.clip(phi_total * 2.0, 0.0, 1.0)
    expected = completed * p
    testable = expected >= 10.0
    tested = int(np.count_nonzero(testable))
    if completed <= 0 or tested == 0:
        return {
            "envelope_tested": 0,
            "envelope_max_z": 0.0,
            "envelope_threshold": 0.0,
            "envelope_exceed": 0.0,
        }
    threshold = ENVELOPE_SIGMA + math.sqrt(2.0 * math.log(tested))
    sd = np.sqrt(expected * np.clip(1.0 - p, 0.1, 1.0))
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(testable, (counts - expected) / sd, 0.0)
    max_z = float(z.max())
    return {
        "envelope_tested": tested,
        "envelope_max_z": round(max_z, 6),
        "envelope_threshold": round(threshold, 6),
        "envelope_exceed": round(max(0.0, max_z - threshold), 6),
    }


def _healing_stage(genome: Genome, config: EvalConfig, seed) -> dict:
    """Replay the genome against the armed, healing in-process service."""
    # Imported lazily: repro.experiments.e23_adversary imports this
    # package, so a module-level import would be circular.
    from repro.experiments.common import make_instance

    keys, N = make_instance(config.n, seed)
    dist = distribution_from_spec(genome.workload_spec(), keys, N)
    spike_dist = (
        distribution_from_spec(
            {
                "family": "hotspot",
                "skew": 1.0,
                "positive_fraction": genome.positive_fraction,
                "hot_keys": list(genome.hot_keys),
            },
            keys,
            N,
        )
        if genome.hot_keys
        else None
    )
    horizon = config.requests / genome.rate
    service = build_service(
        keys, N, num_shards=1, replicas=config.replicas, router="random",
        max_batch=32, max_delay=0.25, capacity=1024,
        faults=FaultConfig(armed=True), seed=seed + 1,
    )
    require_armed(service)
    service.enable_healing(seed=seed + 2)
    d = service.shards[0]
    inner_cells = d.inner_rows * d.table.s
    phi_total = _phi_total(
        service, dist,
        (config.n, config.replicas, int(seed),
         json.dumps(genome.workload_spec(), sort_keys=True)),
    )
    schedule = build_schedule(genome, horizon, config.replicas, inner_cells)
    report = run_chaos(
        service, dist, schedule, config.requests, genome.rate,
        seed=seed, expected_keys=keys, spike_dist=spike_dist,
        high_priority_fraction=genome.high_priority_fraction,
    )
    quarantined = sum(
        1 for state in report.final_states.values() if state != "healthy"
    )
    metrics = {
        "requested": report.requested,
        "completed": report.completed,
        "shed": report.shed,
        "degraded_shed": report.degraded_shed,
        "wrong_answers": report.wrong_answers,
        "violations": int(report.heal.get("violations", 0)),
        "quarantined": quarantined,
        "replicas": config.replicas,
        "events_applied": report.events_applied,
        "events_skipped": report.events_skipped,
        "heal_ticks": report.heal_ticks,
        "mttr_max": float(max(report.mttr) if report.mttr else 0.0),
        "latency_p50": report.latency_p50,
        "latency_p95": report.latency_p95,
        "latency_p99": report.latency_p99,
        "horizon": float(horizon),
        "duration": report.duration,
        "heal_counter_digest": d.table.counter.digest(),
    }
    metrics.update(_envelope_exceedance(report, phi_total))
    return metrics


def _fabric_stage(genome: Genome, config: EvalConfig, seed) -> dict:
    """Replay the genome's fabric genes against a real worker pool.

    Queries are served in :data:`FABRIC_CHUNKS` contiguous batches;
    each fabric event lands *before* the batch its horizon fraction
    maps to, so faults never race an in-flight group.  A fabric that
    raises :class:`~repro.errors.FabricError` is recorded as stalled
    (a find, not a harness crash).
    """
    from repro.experiments.common import make_instance
    from repro.parallel.fabric import build_parallel_service

    keys, N = make_instance(config.n, seed)
    dist = distribution_from_spec(genome.workload_spec(), keys, N)
    horizon = config.requests / genome.rate
    fabric_events = []
    schedule = build_schedule(
        genome, horizon, config.fabric_replicas, max(config.n, 1)
    )
    for event in schedule.events:
        if event.kind in FABRIC_KINDS:
            chunk = min(
                int(float(event.time) / horizon * FABRIC_CHUNKS),
                FABRIC_CHUNKS - 1,
            )
            fabric_events.append((chunk, event))
    queries = dist.sample(as_generator(seed + 5), config.fabric_queries)
    truth = np.isin(queries, keys)
    edges = np.linspace(0, queries.size, FABRIC_CHUNKS + 1).astype(int)
    svc = build_parallel_service(
        keys, N, procs=config.procs, replicas=config.fabric_replicas,
        router="random", seed=seed + 1,
    )
    wrong = 0
    stalled = False
    try:
        for chunk in range(FABRIC_CHUNKS):
            for when, event in fabric_events:
                if when == chunk:
                    svc.apply_fabric_event(event)
            lo, hi = edges[chunk], edges[chunk + 1]
            if lo == hi:
                continue
            try:
                answers = svc.query_batch(queries[lo:hi])
            except FabricError:
                stalled = True
                break
            wrong += int(np.sum(answers != truth[lo:hi]))
        return {
            "fabric_ran": True,
            "fabric_queries": int(queries.size),
            "fabric_wrong": wrong,
            "fabric_stalled": stalled,
            "fabric_crc_ok": bool(
                all(
                    svc.pool.table_crc_ok(s)
                    for s in range(svc.num_shards)
                )
            ),
            "fabric_kills": svc.fabric_stats.kills,
            "fabric_corruptions": svc.fabric_stats.segment_corruptions,
            "fabric_counter_digest": svc.merged_counter(0).digest(),
        }
    finally:
        svc.close()


#: Dynamic-stage sizing: universe and interleaved request count.
DYNAMIC_UNIVERSE = 1 << 12
DYNAMIC_REQUESTS = 200


def _dynamic_stage(genome: Genome, config: EvalConfig, seed) -> dict:
    """Replay the genome's update stream against the mutable service.

    An interleaved open stream: each tick submits an update with
    probability ``update_fraction`` (delete share ``delete_fraction``,
    half the keys drawn from ``update_hot_keys`` when present — the
    churn that forces repeated small-level rebuilds), then a read
    biased onto the same keys, then advances virtual time.  Same-tick
    completions are checked against the reference set
    (read-your-writes), and a final epoch-pinned multi-key read is
    checked against the full reference.  Pure in
    ``(genome, config, seed)``; the shard's query-counter digest is
    folded into the metrics so replays compare *accounting*, not just
    headline counts.
    """
    from repro.errors import OverloadError, UpdateBacklogError
    from repro.serve.dynamic_service import build_dynamic_service

    svc = build_dynamic_service(
        DYNAMIC_UNIVERSE,
        num_shards=1,
        replicas=min(config.replicas, 3),
        seed=seed + 13,
        max_batch=8,
        max_delay=2.0,
        update_batch=4,
        update_delay=2.0,
        update_capacity=32,
        capacity=128,
    )
    rng = as_generator(seed + 17)
    hot = np.asarray(genome.update_hot_keys, dtype=np.int64) % DYNAMIC_UNIVERSE
    ref: set[int] = set()
    wrong = checked = shed_updates = shed_reads = 0

    def draw_key() -> int:
        if hot.size and rng.random() < 0.5:
            return int(hot[int(rng.integers(0, hot.size))])
        return int(rng.integers(0, DYNAMIC_UNIVERSE))

    for i in range(DYNAMIC_REQUESTS):
        now = float(i)
        if rng.random() < genome.update_fraction:
            k = draw_key()
            ins = rng.random() >= genome.delete_fraction
            try:
                svc.submit_update(k, ins, now)
                (ref.add if ins else ref.discard)(k)
            except UpdateBacklogError:
                shed_updates += 1
        ticket = None
        try:
            ticket = svc.submit(draw_key(), now)
        except OverloadError:
            shed_reads += 1
        svc.advance(now)
        if ticket is not None and ticket.done:
            checked += 1
            wrong += int(ticket.answer != (ticket.key in ref))
    svc.drain(float(DYNAMIC_REQUESTS))
    sample = rng.integers(0, DYNAMIC_UNIVERSE, size=128)
    answers, _ = svc.read_pinned(sample, float(DYNAMIC_REQUESTS) + 1.0)
    truth = np.isin(
        sample,
        np.fromiter(ref, dtype=np.int64, count=len(ref))
        if ref else np.empty(0, dtype=np.int64),
    )
    pinned_wrong = int(np.sum(answers != truth))
    row = svc.stats_row()
    shard = svc.shards[0]
    rebuilds = sum(
        len(shard._replicas[r].account.rebuilds)
        for r in shard.live_replicas()
    )
    return {
        "dyn_ran": True,
        "dyn_requests": DYNAMIC_REQUESTS,
        "dyn_checked": checked,
        "dyn_wrong": wrong,
        "dyn_pinned_wrong": pinned_wrong,
        "dyn_updates_applied": int(row["updates_applied"]),
        "dyn_update_groups": int(row["update_groups"]),
        "dyn_backlog_shed": shed_updates + int(row["shed_updates"]),
        "dyn_read_shed": shed_reads,
        "dyn_epoch": int(shard.epoch),
        "dyn_rebuilds": rebuilds,
        "dyn_counter_digest": shard.query_counter_digest(),
    }


#: Persistence-stage sizing: universe, checkpointed generations, and
#: updates applied between consecutive checkpoints.
PERSIST_UNIVERSE = 1 << 10
PERSIST_GENERATIONS = 3
PERSIST_UPDATES_PER_GEN = 40


def _persistence_stage(genome: Genome, config: EvalConfig, seed) -> dict:
    """Replay the genome's checkpoint-corruption gene against recovery.

    Runs only when ``genome.checkpoint_corruption > 0``.  A one-shard
    mutable service applies the genome's update mix (delete share and
    hot-key churn reused from the update genes), checkpointing after
    each of :data:`PERSIST_GENERATIONS` rounds and freezing the
    reference key set at every generation.  Each surviving checkpoint
    file is then independently damaged with probability
    ``checkpoint_corruption`` — torn write, truncation, or bit rot,
    mode and parameters drawn from the stage RNG — and recovery runs
    the full quarantine/fallback chain.  The stage is pure in
    ``(genome, config, seed)``: the scratch directory's path never
    enters the metrics, file names are deterministic, and post-restore
    verification charges only recovery counters, so the query-counter
    digest folded into the metrics is reproducible byte-for-byte.

    A correct stack concedes only *freshness* here (fallback to an
    older generation, or an empty restart when nothing survives) —
    never *correctness*: ``ckpt_wrong`` compares post-restore answers
    over the whole universe against the reference frozen at whichever
    generation recovery actually restored.
    """
    import tempfile

    from repro.errors import CheckpointError
    from repro.faults import flip_file_bit, torn_write, truncate_file
    from repro.persist import CheckpointStore, restore_dynamic_service
    from repro.serve.dynamic_service import build_dynamic_service

    rng = as_generator(seed + 23)
    svc = build_dynamic_service(
        PERSIST_UNIVERSE,
        num_shards=1,
        replicas=2,
        seed=seed + 29,
        update_batch=4,
        update_delay=1.0,
        update_capacity=64,
        log_retention=64,
    )
    hot = (
        np.asarray(genome.update_hot_keys, dtype=np.int64)
        % PERSIST_UNIVERSE
    )
    delete_fraction = genome.delete_fraction
    ref: set[int] = set()
    ref_at: dict[int, frozenset] = {0: frozenset()}
    now = 0.0
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(tmp, keep=PERSIST_GENERATIONS)
        svc.attach_checkpoints(store)
        for _ in range(PERSIST_GENERATIONS):
            for _ in range(PERSIST_UPDATES_PER_GEN):
                if hot.size and rng.random() < 0.5:
                    k = int(hot[int(rng.integers(0, hot.size))])
                else:
                    k = int(rng.integers(0, PERSIST_UNIVERSE))
                ins = rng.random() >= delete_fraction
                svc.submit_update(k, ins, now)
                (ref.add if ins else ref.discard)(k)
                now += 1.0
                svc.advance(now)
            svc.drain(now)
            now += 10.0
            ref_at[svc.checkpoint(now)] = frozenset(ref)
        corrupted = 0
        for _shard, _gen, path in store.generations():
            if rng.random() >= genome.checkpoint_corruption:
                continue
            mode = int(rng.integers(0, 3))
            damage_seed = int(rng.integers(0, 2**31))
            if mode == 0:
                torn_write(
                    path, float(rng.uniform(0.05, 0.95)), seed=damage_seed
                )
            elif mode == 1:
                truncate_file(path, int(rng.integers(0, 256)))
            else:
                flip_file_bit(
                    path, seed=damage_seed, count=int(rng.integers(1, 9))
                )
            corrupted += 1
        total_loss = False
        wrong = quarantined = replayed = restored_gen = 0
        counter_digest = ""
        try:
            restored, report = restore_dynamic_service(tmp, verify=True)
        except CheckpointError:
            # Every generation of every shard was quarantined: recovery
            # correctly refuses to fabricate state.  Freshness loss is
            # total, correctness is intact.
            total_loss = True
        else:
            quarantined = int(report["quarantined"])
            replayed = int(report["replayed"])
            restored_gen = int(report["shards"][0]["generation"])
            expect = ref_at.get(restored_gen, frozenset())
            sample = np.arange(PERSIST_UNIVERSE, dtype=np.int64)
            truth = np.isin(
                sample,
                np.fromiter(expect, dtype=np.int64, count=len(expect))
                if expect else np.empty(0, dtype=np.int64),
            )
            shard = restored.shards[0]
            answers = shard.query_batch(sample, rng=as_generator(seed + 31))
            wrong = int(np.sum(answers != truth))
            counter_digest = shard.query_counter_digest()
    lost = (
        PERSIST_GENERATIONS if total_loss
        else PERSIST_GENERATIONS - restored_gen
    )
    return {
        "ckpt_ran": True,
        "ckpt_generations": PERSIST_GENERATIONS,
        "ckpt_corrupted": corrupted,
        "ckpt_quarantined": quarantined,
        "ckpt_total_loss": total_loss,
        "ckpt_restored_generation": restored_gen,
        "ckpt_generations_lost": lost,
        "ckpt_replayed": replayed,
        "ckpt_wrong": wrong,
        "ckpt_counter_digest": counter_digest,
    }


#: Autotune-stage sizing: chaos requests (half the healing stage keeps
#: the stage affordable inside the search loop).
AUTOTUNE_REQUESTS_DIVISOR = 2

#: Silent-damage event kinds whose injection starts the detection clock.
_DAMAGE_KINDS = ("corrupt", "stick")


def _autotune_stage(genome: Genome, config: EvalConfig, seed) -> dict:
    """Replay the genome against a healing service *with autotune on*.

    Runs only when ``genome.autotune_cooldown > 0``.  The controller's
    cooldown window comes from the gene; structural splits rebind the
    shard's health machinery mid-chaos (scrub position resets, new
    replicas start unwatched), so the search can probe whether a
    well-timed reconfiguration retards corruption detection.  The
    headline signal is **detection latency**: virtual time from the
    first silent-damage injection (``corrupt`` / ``stick``) to the
    first ``quarantined`` transition at or after it — the full stage
    horizon's remainder if the damage is never caught.  Pure in
    ``(genome, config, seed)``; only ``at_*`` keys are emitted, so
    controller-free genomes replay to their pre-PR-9 digests.
    """
    from repro.autotune import AutotunePolicy
    from repro.experiments.common import make_instance

    requests = max(config.requests // AUTOTUNE_REQUESTS_DIVISOR, 50)
    keys, N = make_instance(config.n, seed)
    dist = distribution_from_spec(genome.workload_spec(), keys, N)
    horizon = requests / genome.rate
    service = build_service(
        keys, N, num_shards=1, replicas=config.replicas, router="random",
        max_batch=32, max_delay=0.25, capacity=1024,
        faults=FaultConfig(armed=True), seed=seed + 7,
    )
    require_armed(service)
    service.enable_healing(seed=seed + 8)
    cooldown = float(genome.autotune_cooldown)
    # low_load=0 disables joins (the compiled schedule's victim indices
    # must stay valid); splits and admission moves remain live.
    controller = service.enable_autotune(
        policy=AutotunePolicy(
            cooldown=cooldown,
            check_every=max(cooldown / 4.0, 0.125),
            low_load=0.0,
            max_replicas=config.replicas + 2,
        ),
        seed=seed + 9,
    )
    d = service.shards[0]
    inner_cells = d.inner_rows * d.table.s
    schedule = build_schedule(genome, horizon, config.replicas, inner_cells)
    report = run_chaos(
        service, dist, schedule, requests, genome.rate,
        seed=seed, expected_keys=keys,
        high_priority_fraction=genome.high_priority_fraction,
    )
    damage_times = [
        float(e.time) for e in schedule.events if e.kind in _DAMAGE_KINDS
    ]
    if damage_times:
        first_damage = min(damage_times)
        caught = [
            float(t)
            for machine in service.health.machines.values()
            for (t, _src, target, _reason) in machine.transitions
            if target == "quarantined" and float(t) >= first_damage
        ]
        detect_latency = (
            min(caught) - first_damage if caught
            else max(horizon - first_damage, 0.0)
        )
    else:
        detect_latency = 0.0
    return {
        "at_ran": True,
        "at_cooldown": round(cooldown, 6),
        "at_requests": requests,
        "at_horizon": round(float(horizon), 6),
        "at_damage_events": len(damage_times),
        "at_detect_latency": round(float(detect_latency), 6),
        "at_wrong": report.wrong_answers,
        "at_violations": int(report.heal.get("violations", 0)),
        "at_decisions": int(controller.applied),
        "at_skips": int(controller.skipped),
        "at_counter_digest": d.table.counter.digest(),
    }


def fitness_from_metrics(metrics: dict) -> float:
    """Score a metrics dict: bigger = a more damaging genome.

    Correctness breaks dominate (wrong answers and quarantine
    violations at 1000 apiece, a stalled fabric at 400, exposed fabric
    wrong answers at 300 per unit fraction); availability and latency
    damage (shed, degraded, p99, MTTR, quarantine) and envelope
    exceedance fill in the gradient the search climbs when the stack
    is — as it should be — correct.
    """
    requested = max(int(metrics.get("requested", 1)), 1)
    horizon = max(float(metrics.get("horizon", 1.0)), 1e-9)
    fitness = 0.0
    fitness += 1000.0 * metrics.get("wrong_answers", 0)
    fitness += 1000.0 * metrics.get("violations", 0)
    fitness += 100.0 * metrics.get("shed", 0) / requested
    fitness += 40.0 * metrics.get("degraded_shed", 0) / requested
    fitness += 50.0 * min(metrics.get("latency_p99", 0.0) / horizon, 1.0)
    fitness += 10.0 * metrics.get("envelope_exceed", 0.0)
    replicas = max(int(metrics.get("replicas", 1)), 1)
    fitness += 60.0 * metrics.get("quarantined", 0) / replicas
    fitness += 20.0 * min(metrics.get("mttr_max", 0.0) / horizon, 1.0)
    if metrics.get("fabric_ran"):
        fitness += 400.0 * bool(metrics.get("fabric_stalled"))
        fitness += 300.0 * metrics.get("fabric_wrong", 0) / max(
            int(metrics.get("fabric_queries", 1)), 1
        )
        fitness += 5.0 * (not metrics.get("fabric_crc_ok", True))
        fitness += 2.0 * metrics.get("fabric_kills", 0)
    if metrics.get("dyn_ran"):
        fitness += 1000.0 * metrics.get("dyn_wrong", 0)
        fitness += 1000.0 * metrics.get("dyn_pinned_wrong", 0)
        fitness += 80.0 * metrics.get("dyn_backlog_shed", 0) / max(
            int(metrics.get("dyn_requests", 1)), 1
        )
        fitness += 10.0 * min(metrics.get("dyn_rebuilds", 0) / 100.0, 1.0)
    if metrics.get("ckpt_ran"):
        # Persistence stage: quarantine letting damage through to a
        # wrong answer is the jackpot; freshness loss (falling back to
        # an older generation, or losing everything) earns a graded
        # reward so the search keeps probing the fallback chain even
        # while correctness holds.
        gens = max(int(metrics.get("ckpt_generations", 1)), 1)
        fitness += 1000.0 * metrics.get("ckpt_wrong", 0)
        fitness += 30.0 * metrics.get("ckpt_generations_lost", 0) / gens
        fitness += 20.0 * bool(metrics.get("ckpt_total_loss"))
        fitness += 2.0 * metrics.get("ckpt_quarantined", 0)
    if metrics.get("at_ran"):
        # Autotune stage: correctness breaks dominate as everywhere;
        # the graded term rewards *detection latency* — silent damage
        # that survives longer before quarantine (e.g. because a
        # reconfiguration rebound the scrubber at the wrong moment)
        # scores higher, steering the search toward detection gaps.
        at_horizon = max(float(metrics.get("at_horizon", 1.0)), 1e-9)
        fitness += 1000.0 * metrics.get("at_wrong", 0)
        fitness += 1000.0 * metrics.get("at_violations", 0)
        if metrics.get("at_damage_events", 0):
            fitness += 25.0 * min(
                metrics.get("at_detect_latency", 0.0) / at_horizon, 1.0
            )
    return float(fitness)


def evaluate(genome: Genome, config: EvalConfig, seed) -> Evaluation:
    """Deterministically score one genome; pure in ``(genome, config, seed)``.

    Runs the healing stage always and the fabric stage when
    ``config.procs >= 1``, folds both metric sets into one dict, scores
    it with :func:`fitness_from_metrics`, and stamps the replay digest:
    SHA-256 over the canonical JSON of ``(genome digest, config, seed,
    metrics)`` — metrics that already embed both probe-counter digests,
    so byte-identical replay means identical *accounting*, not just
    identical headline numbers.
    """
    metrics = _healing_stage(genome, config, int(seed))
    if config.procs >= 1:
        metrics.update(_fabric_stage(genome, config, int(seed)))
    else:
        metrics["fabric_ran"] = False
    # Read-only genomes contribute no dyn_* keys at all — the metrics
    # dict (and hence the replay digest) of every pre-update-gene
    # fixture is byte-identical to what it was before this stage existed.
    if genome.update_fraction > 0.0:
        metrics.update(_dynamic_stage(genome, config, int(seed)))
    # Same contract for the autotune gene: controller-free genomes
    # contribute no at_* keys and replay to their pre-PR-9 digests.
    if genome.autotune_cooldown > 0.0:
        metrics.update(_autotune_stage(genome, config, int(seed)))
    # And for the checkpoint-corruption gene: corruption-free genomes
    # contribute no ckpt_* keys and replay to their pre-PR-10 digests.
    if genome.checkpoint_corruption > 0.0:
        metrics.update(_persistence_stage(genome, config, int(seed)))
    fitness = fitness_from_metrics(metrics)
    payload = json.dumps(
        {
            "genome": genome.digest(),
            "config": config.to_dict(),
            "seed": int(seed),
            "metrics": metrics,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return Evaluation(
        fitness=fitness,
        metrics=metrics,
        digest=hashlib.sha256(payload.encode()).hexdigest(),
    )
