"""Genome fixtures: found attacks frozen as byte-replayable JSON.

Every genome the search finds worth keeping is serialized with its
evaluation config, seed, fitness, and replay digest.  A fixture
replays by re-running :func:`~repro.adversary.evaluate.evaluate` on
the stored ``(genome, config, seed)`` and comparing the fresh digest
to the stored one — the same byte-identity discipline as the E22
multicore gate — then applying the CI regression rules: **zero wrong
answers and zero quarantine violations** under the healing service,
no matter how hostile the genome.  Committed fixtures live under
``tests/fixtures/genomes/`` and are replayed by the ``adversary`` CI
job, so every past find is a permanent red-team regression test.
"""

from __future__ import annotations

import json
import os

from repro.adversary.evaluate import EvalConfig, Evaluation, evaluate
from repro.adversary.genome import Genome
from repro.errors import ParameterError

#: Fixture schema version (bump on layout change).
FIXTURE_FORMAT = 1


def fixture_dict(
    genome: Genome, config: EvalConfig, seed, evaluation: Evaluation
) -> dict:
    """The JSON-safe fixture payload for one evaluated genome."""
    return {
        "format": FIXTURE_FORMAT,
        "seed": int(seed),
        "config": config.to_dict(),
        "genome": genome.to_dict(),
        "genome_digest": genome.digest(),
        "fitness": evaluation.fitness,
        "replay_digest": evaluation.digest,
        "metrics": evaluation.metrics,
    }


def save_fixture(
    path, genome: Genome, config: EvalConfig, seed, evaluation: Evaluation
) -> None:
    """Write one genome fixture as pretty, stable-ordered JSON."""
    payload = fixture_dict(genome, config, seed, evaluation)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_fixture(path) -> dict:
    """Load a fixture, rebuilding the genome and config objects.

    Returns ``{genome, config, seed, fitness, replay_digest,
    metrics}``; raises :class:`~repro.errors.ParameterError` on an
    unknown format version so schema drift fails loudly.
    """
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") != FIXTURE_FORMAT:
        raise ParameterError(
            f"{path}: fixture format {payload.get('format')!r} != "
            f"{FIXTURE_FORMAT}"
        )
    return {
        "genome": Genome.from_dict(payload["genome"]),
        "config": EvalConfig.from_dict(payload["config"]),
        "seed": int(payload["seed"]),
        "fitness": float(payload["fitness"]),
        "replay_digest": payload["replay_digest"],
        "metrics": payload["metrics"],
    }


def replay_fixture(path) -> dict:
    """Re-evaluate a fixture and report the regression-gate verdict.

    Returns a flat dict with the fresh fitness/metrics plus three gate
    booleans: ``digest_match`` (byte-identical replay),
    ``no_wrong_answers``, and ``no_violations`` (both over the healing
    replay).  ``passed`` is their conjunction — the CI gate.
    """
    fx = load_fixture(path)
    fresh = evaluate(fx["genome"], fx["config"], fx["seed"])
    digest_match = fresh.digest == fx["replay_digest"]
    no_wrong = (
        int(fresh.metrics.get("wrong_answers", 0)) == 0
        and int(fresh.metrics.get("dyn_wrong", 0)) == 0
        and int(fresh.metrics.get("dyn_pinned_wrong", 0)) == 0
    )
    no_violations = int(fresh.metrics.get("violations", 0)) == 0
    return {
        "fixture": os.path.basename(str(path)),
        "fitness": fresh.fitness,
        "stored_fitness": fx["fitness"],
        "digest_match": digest_match,
        "no_wrong_answers": no_wrong,
        "no_violations": no_violations,
        "passed": digest_match and no_wrong and no_violations,
    }


def fixture_paths(directory) -> list:
    """All ``*.json`` fixture paths under ``directory``, sorted."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )
