"""Attack genomes: a full adversarial scenario as plain, frozen data.

A :class:`Genome` encodes everything one attack run needs — workload
shape (distribution family, skew, key mix), arrival rate, priority
mix, and a fault program of :class:`FaultGene` entries that compiles
to a :class:`~repro.serve.chaos.ChaosSchedule` (crashes, corruptions,
stuck cells, spikes, plus the fabric-level ``kill-worker`` /
``corrupt-segment`` kinds from PR 7).  Genomes are immutable and
JSON-round-trippable (:meth:`Genome.to_dict` /
:meth:`Genome.from_dict`), and :meth:`Genome.digest` hashes the
canonical JSON — the memoization and fixture-identity key of the
whole search.

Fault genes place events at *fractions* of the run horizon rather
than absolute times, so the same genome stays legal when the rate
gene (and hence the horizon) mutates.  :func:`build_schedule` is the
compiler: it clamps victims modulo the replica count and **enforces
the honest-majority premise** — damage genes may touch at most
``(replicas - 1) // 2`` distinct replicas (extras are dropped), the
same legality rule :meth:`ChaosSchedule.generate` imposes — so an
evolved genome can never "win" by trivially falsifying the majority
assumption the healing guarantee is conditioned on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

from repro.errors import ParameterError
from repro.serve.chaos import ChaosEvent, ChaosSchedule
from repro.utils.rng import as_generator
from repro.workloads.spec import SPEC_FAMILIES

#: Fault-gene kinds: the five in-process chaos kinds (spike genes
#: expand to a start/end pair) plus the two fabric-level kinds.
GENE_KINDS = (
    "crash", "corrupt", "stick", "spike", "kill-worker", "corrupt-segment",
)

#: Hard caps keeping genomes (and their JSON fixtures) small.
MAX_EVENTS = 12
MAX_HOT_KEYS = 8
MAX_CELLS_PER_GENE = 6

#: Scalar gene bounds: arrival rate (requests per virtual second).
RATE_BOUNDS = (4.0, 512.0)

#: Scalar gene bounds: Zipf exponent / hot-set mass.
SKEW_BOUNDS = (0.0, 4.0)

#: Scalar gene bounds: the autotune cooldown window (virtual seconds)
#: an active ``autotune_cooldown`` gene may select.
AUTOTUNE_COOLDOWN_BOUNDS = (0.25, 30.0)

_MASK_MOD = 1 << 63


def _fraction(name: str, value) -> float:
    """Validate a [0, 1] gene, returning it as float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1], got {value}")
    return value


def _int_tuple(values) -> tuple:
    """Canonicalize a gene's index/mask/value payload to ints."""
    return tuple(int(v) for v in values)


@dataclasses.dataclass(frozen=True)
class FaultGene:
    """One heritable fault: a kind, a horizon fraction, and its payload.

    ``frac`` is the event time as a fraction of the run horizon;
    ``span`` is the spike duration fraction (``spike`` genes only).
    ``replica``/``worker`` name the victim (wrapped modulo the target's
    actual replica/worker count at compile time), and ``cells`` /
    ``masks`` / ``values`` carry the corruption payload for ``corrupt``,
    ``stick``, and ``corrupt-segment`` kinds.
    """

    frac: float
    kind: str
    replica: int = 0
    worker: int = 0
    span: float = 0.1
    cells: tuple = ()
    masks: tuple = ()
    values: tuple = ()

    def __post_init__(self):
        if self.kind not in GENE_KINDS:
            raise ParameterError(
                f"unknown fault gene kind {self.kind!r}; options: "
                f"{GENE_KINDS}"
            )
        object.__setattr__(self, "frac", _fraction("frac", self.frac))
        object.__setattr__(self, "span", _fraction("span", self.span))
        object.__setattr__(self, "replica", int(self.replica))
        object.__setattr__(self, "worker", int(self.worker))
        for field in ("cells", "masks", "values"):
            object.__setattr__(
                self, field, _int_tuple(getattr(self, field))
            )

    def to_dict(self) -> dict:
        """JSON-safe dict form (inverse of :meth:`from_dict`)."""
        return {
            "frac": self.frac,
            "kind": self.kind,
            "replica": self.replica,
            "worker": self.worker,
            "span": self.span,
            "cells": list(self.cells),
            "masks": list(self.masks),
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultGene":
        """Rebuild a gene from :meth:`to_dict` output."""
        return cls(
            frac=d["frac"],
            kind=d["kind"],
            replica=d.get("replica", 0),
            worker=d.get("worker", 0),
            span=d.get("span", 0.1),
            cells=tuple(d.get("cells", ())),
            masks=tuple(d.get("masks", ())),
            values=tuple(d.get("values", ())),
        )


@dataclasses.dataclass(frozen=True)
class Genome:
    """A complete adversarial scenario: workload shape + fault program."""

    #: Workload family (:data:`~repro.workloads.spec.SPEC_FAMILIES`).
    family: str = "uniform"
    #: Zipf exponent (``zipf``) or hot-set mass (``hotspot``).
    skew: float = 1.0
    #: Query mass on stored keys.
    positive_fraction: float = 0.5
    #: Explicit hot queries (hotspot target and spike-attack key mix).
    hot_keys: tuple = ()
    #: Open-loop Poisson arrival rate (requests per virtual second).
    rate: float = 64.0
    #: Probability a request is high-priority (survives degraded mode).
    high_priority_fraction: float = 0.25
    #: The fault program, compiled by :func:`build_schedule`.
    events: tuple = ()
    #: Update-stream genes (PR 8): fraction of requests that mutate the
    #: dynamic target.  ``0.0`` (the default) means a read-only genome —
    #: the dynamic stage is skipped, and :meth:`to_dict` omits all three
    #: update genes so pre-PR-8 genome digests are unchanged.
    update_fraction: float = 0.0
    #: Delete share of the update stream (rest are inserts).
    delete_fraction: float = 0.3
    #: Hot keys the update stream churns (insert/delete repeatedly),
    #: forcing level rebuilds on contended keys.
    update_hot_keys: tuple = ()
    #: Autotune gene (PR 9): cooldown window (virtual seconds) for a
    #: closed-loop controller attached to the chaos target.  ``0.0``
    #: (the default) means no controller — the autotune stage is
    #: skipped and :meth:`to_dict` omits the gene, so every pre-PR-9
    #: genome digest is unchanged.  An active gene lets the search
    #: probe how structural reconfiguration (which rebinds health
    #: machinery mid-chaos) interacts with corruption detection.
    autotune_cooldown: float = 0.0
    #: Checkpoint-corruption gene (PR 10): per-generation probability
    #: that a durable checkpoint file written by the persistence stage
    #: is damaged on disk (torn write, truncation, or bit rot, mode
    #: drawn from the evaluation seed) before recovery runs.  ``0.0``
    #: (the default) means no persistence stage — :meth:`to_dict` omits
    #: the gene, so every pre-PR-10 genome digest is unchanged.  An
    #: active gene lets the search hunt for corruption patterns that
    #: slip past the CRC/SHA quarantine chain or inflate recovery loss.
    checkpoint_corruption: float = 0.0

    def __post_init__(self):
        if self.family not in SPEC_FAMILIES:
            raise ParameterError(
                f"unknown workload family {self.family!r}; options: "
                f"{SPEC_FAMILIES}"
            )
        skew = float(self.skew)
        if not SKEW_BOUNDS[0] <= skew <= SKEW_BOUNDS[1]:
            raise ParameterError(
                f"skew must be in {SKEW_BOUNDS}, got {skew}"
            )
        object.__setattr__(self, "skew", skew)
        object.__setattr__(
            self,
            "positive_fraction",
            _fraction("positive_fraction", self.positive_fraction),
        )
        object.__setattr__(
            self,
            "high_priority_fraction",
            _fraction("high_priority_fraction", self.high_priority_fraction),
        )
        rate = float(self.rate)
        if not RATE_BOUNDS[0] <= rate <= RATE_BOUNDS[1]:
            raise ParameterError(
                f"rate must be in {RATE_BOUNDS}, got {rate}"
            )
        object.__setattr__(self, "rate", rate)
        hot = _int_tuple(self.hot_keys)
        if len(hot) > MAX_HOT_KEYS:
            raise ParameterError(
                f"at most {MAX_HOT_KEYS} hot keys, got {len(hot)}"
            )
        object.__setattr__(self, "hot_keys", hot)
        events = tuple(
            e if isinstance(e, FaultGene) else FaultGene.from_dict(e)
            for e in self.events
        )
        if len(events) > MAX_EVENTS:
            raise ParameterError(
                f"at most {MAX_EVENTS} fault genes, got {len(events)}"
            )
        object.__setattr__(self, "events", events)
        object.__setattr__(
            self,
            "update_fraction",
            _fraction("update_fraction", self.update_fraction),
        )
        object.__setattr__(
            self,
            "delete_fraction",
            _fraction("delete_fraction", self.delete_fraction),
        )
        update_hot = _int_tuple(self.update_hot_keys)
        if len(update_hot) > MAX_HOT_KEYS:
            raise ParameterError(
                f"at most {MAX_HOT_KEYS} update hot keys, got "
                f"{len(update_hot)}"
            )
        object.__setattr__(self, "update_hot_keys", update_hot)
        cooldown = float(self.autotune_cooldown)
        if cooldown != 0.0 and not (
            AUTOTUNE_COOLDOWN_BOUNDS[0] <= cooldown
            <= AUTOTUNE_COOLDOWN_BOUNDS[1]
        ):
            raise ParameterError(
                f"autotune_cooldown must be 0 (off) or in "
                f"{AUTOTUNE_COOLDOWN_BOUNDS}, got {cooldown}"
            )
        object.__setattr__(self, "autotune_cooldown", cooldown)
        object.__setattr__(
            self,
            "checkpoint_corruption",
            _fraction("checkpoint_corruption", self.checkpoint_corruption),
        )

    # -- identity ---------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dict form (inverse of :meth:`from_dict`).

        The update genes are emitted only when ``update_fraction > 0``:
        a read-only genome serializes exactly as it did before the
        update genes existed, so every pre-existing fixture digest is
        preserved.
        """
        d = {
            "family": self.family,
            "skew": self.skew,
            "positive_fraction": self.positive_fraction,
            "hot_keys": list(self.hot_keys),
            "rate": self.rate,
            "high_priority_fraction": self.high_priority_fraction,
            "events": [e.to_dict() for e in self.events],
        }
        # The persistence stage reuses the update-mix genes, so an
        # active checkpoint gene also pins them into the canonical form
        # (otherwise two genomes differing only in an unserialized
        # delete_fraction would share a digest but replay differently).
        if self.update_fraction > 0.0 or self.checkpoint_corruption > 0.0:
            d["update_fraction"] = self.update_fraction
            d["delete_fraction"] = self.delete_fraction
            d["update_hot_keys"] = list(self.update_hot_keys)
        if self.autotune_cooldown > 0.0:
            d["autotune_cooldown"] = self.autotune_cooldown
        if self.checkpoint_corruption > 0.0:
            d["checkpoint_corruption"] = self.checkpoint_corruption
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Genome":
        """Rebuild a genome from :meth:`to_dict` output."""
        return cls(
            family=d.get("family", "uniform"),
            skew=d.get("skew", 1.0),
            positive_fraction=d.get("positive_fraction", 0.5),
            hot_keys=tuple(d.get("hot_keys", ())),
            rate=d.get("rate", 64.0),
            high_priority_fraction=d.get("high_priority_fraction", 0.25),
            events=tuple(
                FaultGene.from_dict(e) for e in d.get("events", ())
            ),
            update_fraction=d.get("update_fraction", 0.0),
            delete_fraction=d.get("delete_fraction", 0.3),
            update_hot_keys=tuple(d.get("update_hot_keys", ())),
            autotune_cooldown=d.get("autotune_cooldown", 0.0),
            checkpoint_corruption=d.get("checkpoint_corruption", 0.0),
        )

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form — the genome's identity."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def workload_spec(self) -> dict:
        """The genome's workload genes as a
        :func:`~repro.workloads.spec.distribution_from_spec` spec."""
        return {
            "family": self.family,
            "skew": self.skew,
            "positive_fraction": self.positive_fraction,
            "hot_keys": list(self.hot_keys),
        }


def build_schedule(
    genome: Genome, horizon: float, replicas: int, inner_cells: int
) -> ChaosSchedule:
    """Compile a genome's fault program into a legal ChaosSchedule.

    Event times are ``frac * horizon`` (so every event lands inside
    the validated ``[0, horizon]`` window); victim replicas and cell
    indices wrap modulo their actual ranges; corruption masks are
    forced nonzero.  Damage genes (crash / corrupt / stick) may touch
    at most ``(replicas - 1) // 2`` distinct replicas — genes that
    would break the strict honest majority are dropped, mirroring
    :meth:`ChaosSchedule.generate`'s legality rule, so evolution
    cannot score by invalidating the healing guarantee's premise.
    """
    horizon = float(horizon)
    if not horizon > 0.0:
        raise ParameterError("horizon must be > 0")
    replicas = int(replicas)
    inner_cells = int(inner_cells)
    max_victims = max(0, (replicas - 1) // 2)
    victims: set[int] = set()
    events: list[ChaosEvent] = []
    for gene in genome.events:
        time = min(gene.frac, 1.0) * horizon
        if gene.kind == "spike":
            end = min(gene.frac + max(gene.span, 0.02), 1.0) * horizon
            events.append(ChaosEvent(time=time, kind="spike-start"))
            events.append(ChaosEvent(time=end, kind="spike-end"))
            continue
        if gene.kind == "kill-worker":
            events.append(ChaosEvent(
                time=time, kind="kill-worker", worker=gene.worker,
            ))
            continue
        if gene.kind == "corrupt-segment":
            cells, masks = _cells_and_masks(gene, None)
            if cells:
                events.append(ChaosEvent(
                    time=time, kind="corrupt-segment", shard=0,
                    cells=cells, masks=masks,
                ))
            continue
        victim = int(gene.replica) % replicas
        if victim not in victims and len(victims) >= max_victims:
            continue
        victims.add(victim)
        if gene.kind == "crash":
            events.append(ChaosEvent(
                time=time, kind="crash", shard=0, replica=victim,
            ))
        elif gene.kind == "corrupt":
            cells, masks = _cells_and_masks(gene, inner_cells)
            if cells:
                events.append(ChaosEvent(
                    time=time, kind="corrupt", shard=0, replica=victim,
                    cells=cells, masks=masks,
                ))
        else:  # stick
            cells, values = _cells_and_values(gene, inner_cells)
            if cells:
                events.append(ChaosEvent(
                    time=time, kind="stick", shard=0, replica=victim,
                    cells=cells, values=values,
                ))
    return ChaosSchedule(events=events, horizon=horizon)


def _cells_and_masks(gene: FaultGene, modulus: int | None) -> tuple:
    """A gene's deduped cell targets with aligned nonzero XOR masks."""
    pairs: dict[int, int] = {}
    for i, cell in enumerate(gene.cells[:MAX_CELLS_PER_GENE]):
        cell = int(cell) if modulus is None else int(cell) % modulus
        mask = int(gene.masks[i]) % _MASK_MOD if i < len(gene.masks) else 1
        pairs.setdefault(cell, mask or 1)
    cells = tuple(sorted(pairs))
    return cells, tuple(pairs[c] for c in cells)


def _cells_and_values(gene: FaultGene, modulus: int) -> tuple:
    """A gene's deduped cell targets with aligned stuck-at values."""
    pairs: dict[int, int] = {}
    for i, cell in enumerate(gene.cells[:MAX_CELLS_PER_GENE]):
        cell = int(cell) % modulus
        value = int(gene.values[i]) % _MASK_MOD if i < len(gene.values) else 0
        pairs.setdefault(cell, value)
    cells = tuple(sorted(pairs))
    return cells, tuple(pairs[c] for c in cells)


def random_genome(
    seed, universe_size: int, inner_cells: int, replicas: int = 5
) -> Genome:
    """Draw a random (but always legal) genome; pure in ``seed``."""
    rng = as_generator(seed)
    family = str(rng.choice(SPEC_FAMILIES))
    hot = tuple(
        int(k) for k in rng.integers(
            0, universe_size, size=int(rng.integers(0, MAX_HOT_KEYS + 1))
        )
    )
    genes = tuple(
        random_gene(int(rng.integers(0, 2**31)), inner_cells, replicas)
        for _ in range(int(rng.integers(1, 6)))
    )
    return Genome(
        family=family,
        skew=float(rng.uniform(*SKEW_BOUNDS)) if family != "hotspot"
        else float(rng.uniform(0.0, 1.0)),
        positive_fraction=float(rng.uniform(0.0, 1.0)),
        hot_keys=hot,
        rate=float(np.exp(rng.uniform(
            np.log(RATE_BOUNDS[0]), np.log(RATE_BOUNDS[1])
        ))),
        high_priority_fraction=float(rng.uniform(0.0, 1.0)),
        events=genes,
    )


def random_gene(seed, inner_cells: int, replicas: int = 5) -> FaultGene:
    """Draw one random fault gene; pure in ``seed``."""
    rng = as_generator(seed)
    kind = str(rng.choice(GENE_KINDS))
    count = int(rng.integers(1, MAX_CELLS_PER_GENE + 1))
    return FaultGene(
        frac=float(rng.uniform(0.05, 1.0)),
        kind=kind,
        replica=int(rng.integers(0, max(replicas, 1))),
        worker=int(rng.integers(0, 8)),
        span=float(rng.uniform(0.02, 0.3)),
        cells=tuple(int(c) for c in rng.integers(
            0, max(inner_cells, 1), size=count
        )),
        masks=tuple(int(m) for m in rng.integers(
            1, _MASK_MOD, size=count, dtype=np.uint64
        )),
        values=tuple(int(v) for v in rng.integers(
            0, _MASK_MOD, size=count, dtype=np.uint64
        )),
    )
