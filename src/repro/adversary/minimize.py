"""Greedy genome minimization: shrink a find to its essential core.

A genome that scores well often carries passenger genes — fault
events that never land, hot keys that add nothing, a non-default
workload family the damage doesn't need.  :func:`minimize` is a
seeded delta-debugging pass: it repeatedly tries dropping one fault
gene or applying one workload simplification, keeping any candidate
that retains at least ``keep_fraction`` of the original fitness, and
stops at a local fixed point.  Deterministic (every candidate is
evaluated with the same seed) and monotone in size, so the CLI's
``repro adversary minimize`` always terminates with a genome no
larger than its input.
"""

from __future__ import annotations

import dataclasses

from repro.adversary.evaluate import EvalConfig, Evaluation, evaluate
from repro.adversary.genome import Genome
from repro.errors import ParameterError


def _simplifications(genome: Genome) -> list:
    """Candidate one-step workload simplifications, most drastic first."""
    out = []
    if genome.hot_keys:
        out.append(dataclasses.replace(genome, hot_keys=()))
    if genome.family != "uniform":
        out.append(dataclasses.replace(genome, family="uniform", skew=1.0))
    if genome.positive_fraction != 0.5:
        out.append(dataclasses.replace(genome, positive_fraction=0.5))
    if genome.high_priority_fraction != 0.25:
        out.append(
            dataclasses.replace(genome, high_priority_fraction=0.25)
        )
    return out


def minimize(
    genome: Genome,
    config: EvalConfig,
    seed,
    keep_fraction: float = 0.8,
) -> tuple[Genome, Evaluation]:
    """Shrink ``genome`` while keeping ``keep_fraction`` of its fitness.

    Greedy passes alternate dropping single fault genes with workload
    simplifications until neither helps; returns the minimized genome
    and its evaluation.  A zero-fitness genome is returned unchanged
    (there is nothing to preserve, so nothing licenses a shrink).
    """
    keep_fraction = float(keep_fraction)
    if not 0.0 < keep_fraction <= 1.0:
        raise ParameterError(
            f"keep_fraction must be in (0, 1], got {keep_fraction}"
        )
    current = genome
    current_eval = evaluate(current, config, int(seed))
    if current_eval.fitness <= 0.0:
        return current, current_eval
    target = keep_fraction * current_eval.fitness
    changed = True
    while changed:
        changed = False
        for i in range(len(current.events)):
            events = current.events[:i] + current.events[i + 1:]
            candidate = dataclasses.replace(current, events=events)
            cand_eval = evaluate(candidate, config, int(seed))
            if cand_eval.fitness >= target:
                current, current_eval = candidate, cand_eval
                changed = True
                break
        if changed:
            continue
        for candidate in _simplifications(current):
            cand_eval = evaluate(candidate, config, int(seed))
            if cand_eval.fitness >= target:
                current, current_eval = candidate, cand_eval
                changed = True
                break
    return current, current_eval
