"""Seeded variation operators: mutation and crossover over genomes.

Both operators are **pure functions of (parents, seed)** — they build
one private generator from the seed, never touch global RNG state, and
always return a validated :class:`~repro.adversary.genome.Genome` —
which is what makes every search run, fixture, and CI replay exactly
reproducible (the property tests in ``test_adversary_genome.py`` pin
this down).

:func:`mutate` applies one or two point mutations drawn from a fixed
menu: jitter a scalar gene (skew, rate, mixes), switch the workload
family, edit the hot-key set, add / drop / perturb one fault gene,
jitter the update-stream genes (switch the dynamic stage on, re-mix
insert/delete, churn update hot keys), jitter the autotune-cooldown
gene (attach a closed-loop controller to the chaos target and tune
its cooldown window), or jitter the checkpoint-corruption gene
(damage the durable checkpoints the persistence stage writes and
score what recovery loses).  :func:`crossover` is uniform
over scalar genes plus an event-list splice (a prefix of one parent's
fault program with a suffix of the other's, capped at ``MAX_EVENTS``);
update genes are inherited as one linked block so a child never mixes
one parent's update fraction with the other's hot-key churn targets.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.adversary.genome import (
    AUTOTUNE_COOLDOWN_BOUNDS,
    GENE_KINDS,
    MAX_EVENTS,
    MAX_HOT_KEYS,
    RATE_BOUNDS,
    SKEW_BOUNDS,
    Genome,
    random_gene,
)
from repro.utils.rng import as_generator
from repro.workloads.spec import SPEC_FAMILIES

_MASK_MOD = 1 << 63


def _clip(value: float, bounds: tuple) -> float:
    """Clamp a scalar gene into its legal bounds."""
    return float(min(max(value, bounds[0]), bounds[1]))


def _mutate_scalars(genome: Genome, rng: np.random.Generator) -> dict:
    """One random scalar-gene jitter, as a ``dataclasses.replace`` patch."""
    which = int(rng.integers(0, 4))
    if which == 0:
        return {"skew": _clip(
            genome.skew * float(np.exp(rng.normal(0.0, 0.4))), SKEW_BOUNDS
        )}
    if which == 1:
        return {"positive_fraction": _clip(
            genome.positive_fraction + float(rng.normal(0.0, 0.15)),
            (0.0, 1.0),
        )}
    if which == 2:
        return {"rate": _clip(
            genome.rate * float(np.exp(rng.normal(0.0, 0.5))), RATE_BOUNDS
        )}
    return {"high_priority_fraction": _clip(
        genome.high_priority_fraction + float(rng.normal(0.0, 0.15)),
        (0.0, 1.0),
    )}


def _mutate_hot_keys(
    genome: Genome, rng: np.random.Generator, universe_size: int
) -> dict:
    """Add, drop, or re-roll one hot key."""
    hot = list(genome.hot_keys)
    move = int(rng.integers(0, 3))
    if move == 0 and len(hot) < MAX_HOT_KEYS:
        hot.append(int(rng.integers(0, universe_size)))
    elif move == 1 and hot:
        hot.pop(int(rng.integers(0, len(hot))))
    elif hot:
        hot[int(rng.integers(0, len(hot)))] = int(
            rng.integers(0, universe_size)
        )
    else:
        hot.append(int(rng.integers(0, universe_size)))
    return {"hot_keys": tuple(hot)}


def _mutate_updates(
    genome: Genome, rng: np.random.Generator, universe_size: int
) -> dict:
    """Jitter the update-stream genes (PR 8).

    On a read-only genome the first move switches the update stream on
    (``update_fraction`` drawn uniform); afterwards the menu jitters
    the mix fractions or churns the hot-key set.  Setting
    ``update_fraction`` back to exactly 0 turns the dynamic stage off
    again (and drops the genes from the canonical JSON).
    """
    if genome.update_fraction <= 0.0:
        return {"update_fraction": float(rng.uniform(0.05, 0.6))}
    move = int(rng.integers(0, 3))
    if move == 0:
        frac = genome.update_fraction + float(rng.normal(0.0, 0.15))
        return {"update_fraction": _clip(frac, (0.0, 1.0))}
    if move == 1:
        return {"delete_fraction": _clip(
            genome.delete_fraction + float(rng.normal(0.0, 0.15)),
            (0.0, 1.0),
        )}
    hot = list(genome.update_hot_keys)
    edit = int(rng.integers(0, 3))
    if edit == 0 and len(hot) < MAX_HOT_KEYS:
        hot.append(int(rng.integers(0, universe_size)))
    elif edit == 1 and hot:
        hot.pop(int(rng.integers(0, len(hot))))
    elif hot:
        hot[int(rng.integers(0, len(hot)))] = int(
            rng.integers(0, universe_size)
        )
    else:
        hot.append(int(rng.integers(0, universe_size)))
    return {"update_hot_keys": tuple(hot)}


def _mutate_autotune(genome: Genome, rng: np.random.Generator) -> dict:
    """Jitter the autotune-cooldown gene (PR 9).

    On a controller-free genome the first move switches the autotune
    stage on (cooldown drawn log-uniform over its bounds); afterwards
    the menu jitters the window multiplicatively or — one move in
    four — sets it back to exactly 0, turning the stage off again
    (and dropping the gene from the canonical JSON).
    """
    if genome.autotune_cooldown <= 0.0:
        lo, hi = AUTOTUNE_COOLDOWN_BOUNDS
        return {"autotune_cooldown": float(np.exp(
            rng.uniform(np.log(lo), np.log(hi))
        ))}
    if int(rng.integers(0, 4)) == 0:
        return {"autotune_cooldown": 0.0}
    return {"autotune_cooldown": _clip(
        genome.autotune_cooldown * float(np.exp(rng.normal(0.0, 0.4))),
        AUTOTUNE_COOLDOWN_BOUNDS,
    )}


def _mutate_checkpoint(genome: Genome, rng: np.random.Generator) -> dict:
    """Jitter the checkpoint-corruption gene (PR 10).

    On a corruption-free genome the first move switches the
    persistence stage on (per-generation damage probability drawn
    uniform); afterwards the menu jitters the probability or — one
    move in four — sets it back to exactly 0, turning the stage off
    again (and dropping the gene from the canonical JSON).
    """
    if genome.checkpoint_corruption <= 0.0:
        return {"checkpoint_corruption": float(rng.uniform(0.1, 0.9))}
    if int(rng.integers(0, 4)) == 0:
        return {"checkpoint_corruption": 0.0}
    return {"checkpoint_corruption": _clip(
        genome.checkpoint_corruption + float(rng.normal(0.0, 0.2)),
        (0.05, 1.0),
    )}


def _perturb_gene(gene, rng: np.random.Generator, inner_cells: int):
    """Jitter one fault gene's time, victim, or payload."""
    move = int(rng.integers(0, 3))
    if move == 0:
        return dataclasses.replace(
            gene, frac=_clip(gene.frac + float(rng.normal(0.0, 0.1)),
                             (0.0, 1.0)),
        )
    if move == 1:
        return dataclasses.replace(
            gene,
            replica=int(rng.integers(0, 8)),
            worker=int(rng.integers(0, 8)),
        )
    count = max(len(gene.cells), 1)
    return dataclasses.replace(
        gene,
        cells=tuple(int(c) for c in rng.integers(
            0, max(inner_cells, 1), size=count
        )),
        masks=tuple(int(m) for m in rng.integers(
            1, _MASK_MOD, size=count, dtype=np.uint64
        )),
    )


def mutate(
    genome: Genome, seed, universe_size: int, inner_cells: int
) -> Genome:
    """Return a mutated copy of ``genome``; pure in ``(genome, seed)``.

    Applies one or two point mutations from the menu (scalar jitter,
    family switch, hot-key edit, fault-gene add/drop/perturb).  The
    result is always a valid genome — bounds are clamped, caps are
    respected — so a mutation can never produce an unevaluable child.
    """
    rng = as_generator(seed)
    out = genome
    for _ in range(int(rng.integers(1, 3))):
        move = int(rng.integers(0, 9))
        if move == 8:
            out = dataclasses.replace(
                out, **_mutate_checkpoint(out, rng)
            )
        elif move == 7:
            out = dataclasses.replace(
                out, **_mutate_autotune(out, rng)
            )
        elif move == 6:
            out = dataclasses.replace(
                out, **_mutate_updates(out, rng, universe_size)
            )
        elif move == 0:
            out = dataclasses.replace(out, **_mutate_scalars(out, rng))
        elif move == 1:
            family = str(rng.choice(SPEC_FAMILIES))
            skew = (
                _clip(out.skew, (0.0, 1.0))
                if family == "hotspot"
                else out.skew
            )
            out = dataclasses.replace(out, family=family, skew=skew)
        elif move == 2:
            out = dataclasses.replace(
                out, **_mutate_hot_keys(out, rng, universe_size)
            )
        elif move == 3 and len(out.events) < MAX_EVENTS:
            gene = random_gene(
                int(rng.integers(0, 2**31)), inner_cells
            )
            out = dataclasses.replace(out, events=out.events + (gene,))
        elif move == 4 and out.events:
            keep = list(out.events)
            keep.pop(int(rng.integers(0, len(keep))))
            out = dataclasses.replace(out, events=tuple(keep))
        elif out.events:
            genes = list(out.events)
            i = int(rng.integers(0, len(genes)))
            genes[i] = _perturb_gene(genes[i], rng, inner_cells)
            out = dataclasses.replace(out, events=tuple(genes))
        else:
            out = dataclasses.replace(out, **_mutate_scalars(out, rng))
    return out


def crossover(a: Genome, b: Genome, seed) -> Genome:
    """Recombine two parents into one child; pure in ``(a, b, seed)``.

    Scalar and workload genes are chosen uniformly from either parent;
    the fault program is a splice — a prefix of one parent's events
    followed by a suffix of the other's, truncated to ``MAX_EVENTS``.
    ``hotspot`` children clamp skew into [0, 1] (hot-set mass).
    """
    rng = as_generator(seed)
    pick = lambda x, y: x if rng.random() < 0.5 else y  # noqa: E731
    family = pick(a.family, b.family)
    skew = pick(a.skew, b.skew)
    if family == "hotspot":
        skew = _clip(skew, (0.0, 1.0))
    cut_a = int(rng.integers(0, len(a.events) + 1))
    cut_b = int(rng.integers(0, len(b.events) + 1))
    events = (a.events[:cut_a] + b.events[cut_b:])[:MAX_EVENTS]
    update_parent = pick(a, b)
    return Genome(
        family=family,
        skew=skew,
        positive_fraction=pick(a.positive_fraction, b.positive_fraction),
        hot_keys=pick(a.hot_keys, b.hot_keys),
        rate=pick(a.rate, b.rate),
        high_priority_fraction=pick(
            a.high_priority_fraction, b.high_priority_fraction
        ),
        events=events,
        update_fraction=update_parent.update_fraction,
        delete_fraction=update_parent.delete_fraction,
        update_hot_keys=update_parent.update_hot_keys,
        autotune_cooldown=pick(a.autotune_cooldown, b.autotune_cooldown),
        checkpoint_corruption=pick(
            a.checkpoint_corruption, b.checkpoint_corruption
        ),
    )
