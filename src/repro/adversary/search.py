"""The evolutionary selection loop: mutate → evaluate → select.

A (μ+λ)-style search over attack genomes, seeded end to end: the
population, every mutation, every crossover, and every evaluation is
a pure function of ``(config, seed)``, and fitness values are
memoized by genome digest (one genome is never evaluated twice).  The
population is seeded with :func:`baseline_genome` — the hand-tuned
:meth:`~repro.serve.chaos.ChaosSchedule.generate` schedule re-encoded
as genes — so "did evolution beat the baseline" is a single fitness
comparison, which is E23's headline gate.
"""

from __future__ import annotations

import dataclasses

from repro.adversary.evaluate import EvalConfig, Evaluation, evaluate
from repro.adversary.genome import FaultGene, Genome, random_genome
from repro.adversary.operators import crossover, mutate
from repro.errors import ParameterError
from repro.faults import FaultConfig
from repro.serve.chaos import ChaosSchedule
from repro.serve.service import build_service
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer

#: Baseline arrival rate — the E21 experiment's hand-tuned choice.
BASELINE_RATE = 64.0


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """Everything one search run produced, ready for tables/fixtures."""

    best_genome: Genome
    best: Evaluation
    baseline_genome: Genome
    baseline: Evaluation
    #: One ``{generation, best_fitness, mean_fitness}`` row per generation.
    history: list
    #: Distinct genomes actually evaluated (memoization hits excluded).
    evaluations: int

    @property
    def beat_baseline(self) -> bool:
        """True when evolution strictly out-scored the hand-tuned schedule."""
        return self.best.fitness > self.baseline.fitness


def _instance_geometry(config: EvalConfig, seed) -> tuple:
    """The evaluation target's ``(universe_size, inner_cells)``."""
    # Imported lazily: repro.experiments.e23_adversary imports this
    # package, so a module-level import would be circular.
    from repro.experiments.common import make_instance

    keys, N = make_instance(config.n, int(seed))
    service = build_service(
        keys, N, num_shards=1, replicas=config.replicas, router="random",
        faults=FaultConfig(armed=True), seed=int(seed) + 1,
    )
    d = service.shards[0]
    return N, d.inner_rows * d.table.s


def baseline_genome(config: EvalConfig, seed) -> Genome:
    """The hand-tuned chaos baseline, re-encoded as a genome.

    Runs :meth:`ChaosSchedule.generate` with E21's defaults (one
    crash, one corruption, one stuck-cell burst, one spike at rate
    :data:`BASELINE_RATE`) and converts each event back into a
    :class:`~repro.adversary.genome.FaultGene` at the equivalent
    horizon fraction — so the baseline occupies the exact genome
    search space and its fitness is directly comparable.
    """
    horizon = config.requests / BASELINE_RATE
    _, inner_cells = _instance_geometry(config, seed)
    # Fit the fault mix inside generate's own honest-majority budget.
    budget = (config.replicas - 1) // 2
    schedule = ChaosSchedule.generate(
        int(seed), horizon, config.replicas, inner_cells,
        crashes=min(1, budget),
        corruptions=1 if budget >= 2 else 0,
        stuck=1 if budget >= 3 else 0,
    )
    genes: list[FaultGene] = []
    spike_start = None
    for event in schedule.events:
        frac = float(event.time) / horizon
        if event.kind == "spike-start":
            spike_start = frac
            continue
        if event.kind == "spike-end":
            start = 0.0 if spike_start is None else spike_start
            genes.append(FaultGene(
                frac=start, kind="spike",
                span=max(frac - start, 0.02),
            ))
            spike_start = None
            continue
        genes.append(FaultGene(
            frac=frac, kind=event.kind, replica=event.replica,
            cells=event.cells, masks=event.masks, values=event.values,
        ))
    return Genome(rate=BASELINE_RATE, events=tuple(genes))


def search(
    config: EvalConfig,
    seed,
    generations: int = 4,
    population: int = 6,
    elites: int = 2,
) -> SearchResult:
    """Evolve attack genomes against the harness; pure in ``(config, seed)``.

    Each generation evaluates the population (memoized by genome
    digest), carries the ``elites`` fittest genomes over unchanged,
    and fills the rest with mutated crossovers of parents drawn from
    the top half.  Ties break on genome digest so the result is
    deterministic even when fitness values collide.
    """
    generations = check_positive_integer("generations", generations)
    population = check_positive_integer("population", population)
    if not 1 <= int(elites) < population:
        raise ParameterError(
            f"elites must be in [1, population), got {elites}"
        )
    elites = int(elites)
    rng = as_generator(seed)
    universe, inner_cells = _instance_geometry(config, seed)
    memo: dict[str, Evaluation] = {}

    def score(genome: Genome) -> Evaluation:
        digest = genome.digest()
        if digest not in memo:
            memo[digest] = evaluate(genome, config, int(seed))
        return memo[digest]

    base = baseline_genome(config, seed)
    pop = [base] + [
        random_genome(
            int(rng.integers(0, 2**31)), universe, inner_cells,
            replicas=config.replicas,
        )
        for _ in range(population - 1)
    ]
    history: list[dict] = []
    ranked: list[tuple] = []
    for gen in range(generations):
        ranked = sorted(
            ((g, score(g)) for g in pop),
            key=lambda pair: (-pair[1].fitness, pair[0].digest()),
        )
        fits = [e.fitness for _, e in ranked]
        history.append({
            "generation": gen,
            "best_fitness": round(fits[0], 6),
            "mean_fitness": round(sum(fits) / len(fits), 6),
            "evaluated": len(memo),
        })
        if gen == generations - 1:
            break
        parents = [g for g, _ in ranked[:max(2, population // 2)]]
        children = [g for g, _ in ranked[:elites]]
        while len(children) < population:
            a = parents[int(rng.integers(0, len(parents)))]
            b = parents[int(rng.integers(0, len(parents)))]
            child = crossover(a, b, int(rng.integers(0, 2**31)))
            child = mutate(
                child, int(rng.integers(0, 2**31)), universe, inner_cells
            )
            children.append(child)
        pop = children
    best_genome, best = ranked[0]
    return SearchResult(
        best_genome=best_genome,
        best=best,
        baseline_genome=base,
        baseline=score(base),
        history=history,
        evaluations=len(memo),
    )
