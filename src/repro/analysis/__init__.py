"""Numeric forms of the paper's probability tools and growth-law fitting.

- :mod:`~repro.analysis.tailbounds` — Theorem 6 (d-wise independent
  moment tail), Theorem 7 (Hoeffding), Theorem 8 (Fact 2.2 of DM) as
  evaluable bounds;
- :mod:`~repro.analysis.loadbounds` — the three Lemma 9 conditions as
  empirical success-rate estimators over repeated hash draws (E7) and
  the Lemma 10 negative-load check (E8);
- :mod:`~repro.analysis.fitting` — least-squares fits of measured
  series against the paper's asymptotic shapes (const, sqrt(n),
  ln n / ln ln n, log log n, ...) with relative-error scoring, used by
  E5/E9 to decide *which* growth law a measurement follows.
"""

from repro.analysis.fitting import GROWTH_LAWS, best_growth_law, fit_growth_law
from repro.analysis.loadbounds import (
    lemma9_condition_rates,
    lemma10_negative_loads_ok,
)
from repro.analysis.tailbounds import (
    dwise_tail_bound,
    fact22_bound,
    hoeffding_tail_bound,
)

__all__ = [
    "dwise_tail_bound",
    "hoeffding_tail_bound",
    "fact22_bound",
    "lemma9_condition_rates",
    "lemma10_negative_loads_ok",
    "GROWTH_LAWS",
    "fit_growth_law",
    "best_growth_law",
]
