"""Growth-law fitting for asymptotic-shape verification.

The paper's claims are asymptotic (O(1/n) contention, Theta(sqrt(n)) or
Theta(ln n / ln ln n) blowups, Omega(log log n) probes).  Experiments
produce finite series (n_k, y_k); this module fits each candidate law
``y ~ c * g(n)`` by least squares on the scale factor and scores it by
mean relative error, so E5/E9 can report *which* shape a measurement
follows rather than eyeballing.

The candidate set mirrors the paper's inventory of rates.  Fits are a
diagnostic, not a proof: on narrow n-ranges neighbouring laws can be
hard to separate, and the reports include the per-law scores so readers
can judge the margin.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

import numpy as np

from repro.errors import ParameterError


def _safe_log(n: np.ndarray) -> np.ndarray:
    return np.log(np.maximum(n, 2.0))


GROWTH_LAWS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "const": lambda n: np.ones_like(np.asarray(n, dtype=np.float64)),
    "loglog(n)": lambda n: np.log(np.maximum(_safe_log(n), math.e)),
    "log(n)": _safe_log,
    "log(n)/loglog(n)": lambda n: _safe_log(n)
    / np.log(np.maximum(_safe_log(n), math.e)),
    "sqrt(n)": lambda n: np.sqrt(np.asarray(n, dtype=np.float64)),
    "n": lambda n: np.asarray(n, dtype=np.float64),
    "1/n": lambda n: 1.0 / np.asarray(n, dtype=np.float64),
    "log(n)/n": lambda n: _safe_log(n) / np.asarray(n, dtype=np.float64),
}


@dataclasses.dataclass(frozen=True)
class GrowthFit:
    """One candidate law's least-squares fit to a series."""

    law: str
    scale: float
    mean_relative_error: float

    def predict(self, n: np.ndarray) -> np.ndarray:
        """Evaluate the fitted law at new n values."""
        return self.scale * GROWTH_LAWS[self.law](np.asarray(n, dtype=np.float64))


def fit_growth_law(
    n: np.ndarray, y: np.ndarray, law: str
) -> GrowthFit:
    """Fit ``y ~ c * law(n)`` by least squares on c; score by rel. error."""
    if law not in GROWTH_LAWS:
        raise ParameterError(f"unknown law {law!r}; options: {sorted(GROWTH_LAWS)}")
    n = np.asarray(n, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if n.shape != y.shape or n.size < 2:
        raise ParameterError("need matching n/y series of length >= 2")
    g = GROWTH_LAWS[law](n)
    denom = float(np.dot(g, g))
    scale = float(np.dot(g, y) / denom) if denom > 0 else 0.0
    pred = scale * g
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.abs(pred - y) / np.where(np.abs(y) > 0, np.abs(y), 1.0)
    return GrowthFit(law=law, scale=scale, mean_relative_error=float(rel.mean()))


def best_growth_law(
    n: np.ndarray, y: np.ndarray, candidates: list[str] | None = None
) -> tuple[GrowthFit, list[GrowthFit]]:
    """Fit all candidate laws; return (best, all sorted by error)."""
    candidates = list(GROWTH_LAWS) if candidates is None else candidates
    fits = sorted(
        (fit_growth_law(n, y, law) for law in candidates),
        key=lambda f: f.mean_relative_error,
    )
    return fits[0], fits
