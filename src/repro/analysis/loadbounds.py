"""Empirical verification of the Lemma 9 / Lemma 10 load conditions.

E7 calls :func:`lemma9_condition_rates` to estimate, over repeated
draws of (f, g, z), the probability of each of property P(S)'s three
conditions — the paper claims 1 - o(1), 1 - o(1), and >= 1/2
respectively, and their conjunction >= 1/2 - o(1).

E8 calls :func:`lemma10_negative_loads_ok` to check that the negative
(complement) loads of g, h' and h are all <= 2(N - n)/k — the paper's
Lemma 10, which needs the hash to be near-uniform over the *domain*.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.params import SchemeParameters
from repro.hashing.dm import DMHashFunction
from repro.hashing.polynomial import PolynomialFamily
from repro.utils.rng import as_generator


@dataclasses.dataclass(frozen=True)
class Lemma9Rates:
    """Empirical success rates of P(S)'s conditions over many draws."""

    trials: int
    g_load_rate: float  # condition 1: all g-bucket loads <= c n / r
    group_load_rate: float  # condition 2: all group loads <= ceil(c n / m)
    fks_rate: float  # condition 3: sum of squared loads <= s
    joint_rate: float  # all three simultaneously

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        return dataclasses.asdict(self)


def lemma9_condition_rates(
    keys: np.ndarray,
    params: SchemeParameters,
    prime: int,
    trials: int,
    rng=None,
) -> Lemma9Rates:
    """Estimate the per-condition success probabilities of P(S)."""
    rng = as_generator(rng)
    keys = np.asarray(keys, dtype=np.int64)
    f_family = PolynomialFamily(prime, params.s, params.degree)
    g_family = PolynomialFamily(prime, params.r, params.degree)
    ok = np.zeros((trials, 3), dtype=bool)
    for t in range(trials):
        f = f_family.sample(rng)
        g = g_family.sample(rng)
        z = rng.integers(0, params.s, size=params.r)
        h = DMHashFunction(f, g, z)
        g_loads = np.bincount(g.eval_batch(keys), minlength=params.r)
        hv = h.eval_batch(keys)
        loads = np.bincount(hv, minlength=params.s).astype(np.int64)
        group_loads = np.bincount(hv % params.m, minlength=params.m)
        ok[t, 0] = int(g_loads.max(initial=0)) <= params.max_g_load
        ok[t, 1] = int(group_loads.max(initial=0)) <= params.max_group_load
        ok[t, 2] = int(np.sum(loads**2)) <= params.fks_budget
    return Lemma9Rates(
        trials=trials,
        g_load_rate=float(ok[:, 0].mean()),
        group_load_rate=float(ok[:, 1].mean()),
        fks_rate=float(ok[:, 2].mean()),
        joint_rate=float(ok.all(axis=1).mean()),
    )


def lemma10_negative_loads_ok(
    hash_fn,
    keys: np.ndarray,
    universe_size: int,
    range_size: int,
    chunk: int = 1 << 20,
) -> tuple[bool, float]:
    """Check Lemma 10: every negative load <= 2 (N - n) / k.

    Returns ``(ok, worst_ratio)`` where worst_ratio is the maximum of
    negative_load / ((N - n)/k) over buckets — Lemma 10 asserts <= 2
    for domain-uniform hashes and N = omega(n).
    """
    keys = np.asarray(keys, dtype=np.int64)
    N = int(universe_size)
    n = keys.size
    total = np.zeros(range_size, dtype=np.int64)
    for lo in range(0, N, chunk):
        xs = np.arange(lo, min(lo + chunk, N), dtype=np.int64)
        total += np.bincount(hash_fn.eval_batch(xs), minlength=range_size)
    pos = np.bincount(hash_fn.eval_batch(keys), minlength=range_size)
    neg = total - pos
    fair_share = (N - n) / range_size
    worst = float(neg.max(initial=0) / fair_share) if fair_share > 0 else 0.0
    return worst <= 2.0, worst
