"""The paper's tail bounds (Theorems 6–8) as evaluable functions.

These are *upper bounds on probabilities*; E7 compares them against the
empirical frequencies of the corresponding bad events over many hash
draws.  The bound of Theorem 6 carries an unspecified O(·) constant —
we expose it as a parameter (default 1, the Kruskal–Rudolph–Snir
Corollary 4.20 form) and the tests only assert one-sidedness where the
constant is pinned.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError


def dwise_tail_bound(
    expectation: float, t: float, d: int, constant: float = 1.0
) -> float:
    """Theorem 6: Pr[X - E[X] > t] <= constant * E[X]**(d/2) / t**d.

    Valid for 0-1 valued, d-wise independent, equidistributed summands
    with d <= 2 E[X].  Returns a value clipped to [0, 1].
    """
    if expectation < 0 or t <= 0 or d < 1:
        raise ParameterError("need expectation >= 0, t > 0, d >= 1")
    if d > 2 * expectation:
        raise ParameterError(
            f"Theorem 6 requires d <= 2 E[X] (d={d}, E[X]={expectation})"
        )
    return min(1.0, constant * expectation ** (d / 2.0) / t**d)


def hoeffding_tail_bound(expectation: float, c: float, d: float) -> float:
    """Theorem 7: Pr[Y >= c E[Y]] <= (e/c)**(c E[Y] / d).

    For independent summands with values in [0, d] and c > e (assuming
    c E[Y] <= r d, the range condition, which callers must ensure).
    """
    if c <= math.e:
        raise ParameterError("Theorem 7 requires c > e")
    if expectation < 0 or d <= 0:
        raise ParameterError("need expectation >= 0 and d > 0")
    return min(1.0, (math.e / c) ** (c * expectation / d))


def fact22_bound(n: int, m: int, d: int) -> float:
    """Theorem 8 (Fact 2.2 of DM): Pr[some load > d] <= n (2n/m)**d.

    For f drawn from H^d_m with d > 2 constant and m <= 2n/d; bounds the
    chance any of the m buckets exceeds load d.
    """
    if n < 1 or m < 1 or d < 1:
        raise ParameterError("need positive n, m, d")
    return min(1.0, n * (2.0 * n / m) ** d)


def lemma9_part3_failure_bound(n: int, beta: float) -> float:
    """Lemma 9(3)'s Markov step: Pr[sum of squares > s] <= 1/(beta(beta-1)).

    The paper rounds this to <= 1/2 for beta >= 2; we expose the sharper
    form for the E7 comparison.
    """
    if beta <= 1:
        raise ParameterError("beta must exceed 1")
    return min(1.0, 1.0 / (beta * (beta - 1.0)))
