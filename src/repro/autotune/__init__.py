"""Contention-adaptive control plane: observe, decide, reconfigure.

The serving stack fixes its whole configuration — per-shard replication
``R``, the inner scheme, admission capacities — at startup, which is
exactly wrong for the paper's Section 3 regime: under an *arbitrary*
(Zipf, flash-crowd, diurnal) query distribution the per-shard
contention Φ_t is non-uniform and moves, so a static uniform deployment
either over-provisions cold ranges or sheds on hot ones.  This package
closes the loop.  Following the LFCA-tree discipline (cheap contention
counters with high/low thresholds driving online structural
adaptation), a deterministic controller watches per-shard probe work
and admission pressure, and reconfigures the running service:

- **replication split/join** — grow ``R`` on hot shards by cloning a
  healthy replica (clone reads charged to a reconfiguration counter,
  the :mod:`repro.heal` discipline), shrink cold shards after a
  graceful drain: the Θ(1/R) contention price, paid where Φ_t says;
- **scheme switching** — rebuild a shard on the scheme its temperature
  wants (low-contention hot, FKS cold), swapped atomically at an
  :class:`~repro.dynamic.epoch.EpochManager` epoch boundary;
- **admission tuning** — move :class:`~repro.errors.OverloadError` /
  :class:`~repro.errors.UpdateBacklogError` capacities from observed
  shed fractions and virtual-time backlog.

Everything is seeded and clockless: the engine is a pure state machine
over observation snapshots (hysteresis bands + cooldown windows in
virtual time), so a decision trace replays byte-for-byte
(:func:`~repro.autotune.controller.replay_trace`), and a disabled
controller leaves the service digest-byte-identical to one that never
had a controller (E25's gate).
"""

from repro.autotune.controller import (
    AutotuneController,
    Decision,
    DecisionEngine,
    Observation,
    replay_trace,
)
from repro.autotune.policy import AutotunePolicy
from repro.autotune.reconfig import (
    ReconfigExecutor,
    scheme_name,
    service_capabilities,
)

__all__ = [
    "AutotuneController",
    "AutotunePolicy",
    "Decision",
    "DecisionEngine",
    "Observation",
    "ReconfigExecutor",
    "replay_trace",
    "scheme_name",
    "service_capabilities",
]
