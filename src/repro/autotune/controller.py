"""The closed-loop controller: observe → decide → apply, deterministically.

The control plane is split so that every decision is byte-replayable:

- :class:`Observation` — a frozen, JSON-round-trippable snapshot of the
  signals one controller tick sees (per-shard probe-work deltas,
  replica counts, schemes, virtual-time backlog, admission deltas).
  Observations are *data*: taking one reads counters and busy-until
  clocks only, never charges a probe, and never touches an RNG stream.
- :class:`DecisionEngine` — a pure function of (policy, capabilities,
  observation history).  ``decide`` draws no randomness and reads no
  live service state, so identical observation streams under the same
  policy produce identical decision lists — the purity property the
  trace replay (:func:`replay_trace`) and the satellite property tests
  check byte-for-byte.
- :class:`AutotuneController` — the loop glue: paces ticks by
  ``check_every`` in virtual time, takes observations off the live
  service, records ``(observation, decisions)`` trace entries, and
  hands decisions to the :class:`~repro.autotune.reconfig.
  ReconfigExecutor`.  Apply *outcomes* (a split skipped because a
  replica was quarantined) are recorded beside the trace, not in it —
  the trace captures what the pure engine decided, which is what
  replays.

A disabled controller (``enabled=False``) never observes, never
decides, and never mutates — attaching one is digest-byte-identical to
a controller-free service (gated by E25 part E and the satellite
property tests).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

from repro.autotune.policy import AutotunePolicy
from repro.autotune.reconfig import ReconfigExecutor, scheme_name
from repro.errors import ReconfigError

__all__ = [
    "Observation",
    "Decision",
    "DecisionEngine",
    "AutotuneController",
    "replay_trace",
]


@dataclasses.dataclass(frozen=True)
class Observation:
    """One controller tick's view of the service, as plain data.

    Per-shard sequences are index-aligned with ``service.shards``.
    ``shard_probes`` / ``admitted`` / ``shed`` are deltas over the
    window since the previous observation; ``shard_backlog`` is how far
    each shard's busiest replica's virtual busy-until clock runs ahead
    of ``now`` (the tail-latency proxy).
    """

    now: float
    shard_probes: tuple
    shard_replicas: tuple
    shard_schemes: tuple
    shard_backlog: tuple
    admitted: int
    shed: int
    in_flight: int
    capacity: int
    pending_updates: int = 0
    update_capacity: int = 0

    def to_dict(self) -> dict:
        """JSON-safe form (tuples become lists)."""
        d = dataclasses.asdict(self)
        for key in ("shard_probes", "shard_replicas", "shard_schemes",
                    "shard_backlog"):
            d[key] = list(d[key])
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Observation":
        """Rebuild an observation from :meth:`to_dict` output."""
        fields = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in d.items() if k in fields}
        for key in ("shard_probes", "shard_replicas", "shard_schemes",
                    "shard_backlog"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)


@dataclasses.dataclass(frozen=True)
class Decision:
    """One action the engine chose: what, where, from → to, and why."""

    now: float
    kind: str
    shard: int
    before: int
    after: int
    reason: str
    target: str = ""

    def to_dict(self) -> dict:
        """JSON-safe dict form (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "Decision":
        """Rebuild a decision from :meth:`to_dict` output."""
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in fields})


class DecisionEngine:
    """Pure hysteresis policy: observations in, decisions out.

    The only state carried between calls is the cooldown book — per
    ``(action-class, shard)`` virtual-time stamps armed when a decision
    is issued — which is itself a deterministic function of the
    observation stream.  ``decide`` never draws randomness; ``seed`` is
    recorded as part of the trace identity because it seeds the
    *executor's* structural draws (new router and scheme seeds), which
    replays must reproduce.
    """

    def __init__(self, policy: AutotunePolicy, capabilities, seed=0):
        self.policy = policy
        self.capabilities = frozenset(capabilities)
        self.seed = int(seed)
        self._cooldowns: dict = {}

    # -- cooldown book -----------------------------------------------------------

    def _ready(self, key, now: float) -> bool:
        stamp = self._cooldowns.get(key)
        return stamp is None or now - stamp >= self.policy.cooldown

    def _arm(self, key, now: float) -> None:
        self._cooldowns[key] = now

    # -- the policy itself -------------------------------------------------------

    def decide(self, obs: Observation) -> list:
        """All actions this observation warrants, in apply order."""
        decisions: list[Decision] = []
        decisions += self._decide_capacity(obs)
        decisions += self._decide_update_capacity(obs)
        decisions += self._decide_structural(obs)
        decisions += self._decide_scheme(obs)
        return decisions

    def _decide_capacity(self, obs: Observation) -> list:
        if "capacity" not in self.capabilities:
            return []
        p = self.policy
        now = obs.now
        if not self._ready(("capacity", -1), now):
            return []
        offered = obs.admitted + obs.shed
        shed_frac = obs.shed / offered if offered else 0.0
        backlog = max(obs.shard_backlog) if obs.shard_backlog else 0.0
        cur = obs.capacity
        if backlog > p.backlog_slack and cur > p.min_capacity:
            after = max(p.min_capacity, cur - p.capacity_step)
            reason = (
                f"backlog {backlog:.3f} > slack {p.backlog_slack}: "
                f"shed earlier to protect tail latency"
            )
        elif (shed_frac > p.shed_high and backlog <= p.backlog_slack
              and cur < p.max_capacity):
            after = min(p.max_capacity, cur + p.capacity_step)
            reason = (
                f"shed fraction {shed_frac:.4f} > {p.shed_high} with "
                f"backlog {backlog:.3f} inside slack: admit more"
            )
        elif (p.shed_low > 0.0 and shed_frac < p.shed_low
              and cur > p.min_capacity):
            after = max(p.min_capacity, cur - p.capacity_step)
            reason = (
                f"shed fraction {shed_frac:.4f} < {p.shed_low}: "
                f"reclaim idle admission headroom"
            )
        else:
            return []
        self._arm(("capacity", -1), now)
        return [Decision(
            now=now, kind="capacity", shard=-1, before=cur,
            after=after, reason=reason,
        )]

    def _decide_update_capacity(self, obs: Observation) -> list:
        if ("update-capacity" not in self.capabilities
                or obs.update_capacity <= 0):
            return []
        p = self.policy
        now = obs.now
        if not self._ready(("update-capacity", -1), now):
            return []
        fill = obs.pending_updates / obs.update_capacity
        cur = obs.update_capacity
        if fill > p.backlog_high and cur < p.max_update_capacity:
            after = min(p.max_update_capacity, cur + p.update_capacity_step)
            reason = (
                f"update backlog fill {fill:.3f} > {p.backlog_high}: "
                f"absorb the write burst"
            )
        elif fill < p.backlog_low and cur > p.min_update_capacity:
            after = max(p.min_update_capacity, cur - p.update_capacity_step)
            reason = (
                f"update backlog fill {fill:.3f} < {p.backlog_low}: "
                f"tighten the read-your-writes bound"
            )
        else:
            return []
        self._arm(("update-capacity", -1), now)
        return [Decision(
            now=now, kind="update-capacity", shard=-1, before=cur,
            after=after, reason=reason,
        )]

    def _shares(self, obs: Observation):
        total = float(sum(obs.shard_probes))
        if total <= 0.0:
            return None
        return [p / total for p in obs.shard_probes]

    def _decide_structural(self, obs: Observation) -> list:
        if "split" not in self.capabilities:
            return []
        shares = self._shares(obs)
        if shares is None:
            return []
        p = self.policy
        now = obs.now
        fair = 1.0 / len(shares)
        backlog = obs.shard_backlog
        # A shard deserves another replica when it is *relatively* hot
        # (probe share above the high band) or *absolutely* saturated
        # (virtual-time backlog above split_backlog — a uniformly
        # overloaded service has no hot shard but must still grow).
        # Backlog pressure ranks first: it is the direct tail signal.
        hot = sorted(
            (
                i for i in range(len(shares))
                if (shares[i] > p.high_load * fair
                    or backlog[i] > p.split_backlog)
                and obs.shard_replicas[i] < p.max_replicas
                and self._ready(("structural", i), now)
            ),
            key=lambda i: (-backlog[i], -shares[i], i),
        )
        cold = sorted(
            (
                i for i in range(len(shares))
                if shares[i] < p.low_load * fair
                and backlog[i] <= p.join_backlog
                and obs.shard_replicas[i] > p.min_replicas
                and self._ready(("structural", i), now)
            ),
            key=lambda i: (shares[i], i),
        )
        if hot:
            target = hot[0]
            total_replicas = int(sum(obs.shard_replicas))
            decisions: list[Decision] = []
            if (p.max_total_replicas is not None
                    and total_replicas >= p.max_total_replicas):
                # At budget: fund the split by joining first — the LFCA
                # move, shifting replication from unpressured ranges to
                # hot ones at constant total cost.  Any drained,
                # non-hot shard with spare replicas can fund, most
                # over-provisioned first; a funder must never itself be
                # backlogged (the join would trade one tail for
                # another).
                funders = sorted(
                    (
                        i for i in range(len(shares))
                        if i != target
                        and shares[i] <= p.high_load * fair
                        and backlog[i] <= p.join_backlog
                        and obs.shard_replicas[i] > p.min_replicas
                        and self._ready(("structural", i), now)
                    ),
                    key=lambda i: (-obs.shard_replicas[i], shares[i], i),
                )
                if not funders:
                    return []
                victim = funders[0]
                self._arm(("structural", victim), now)
                decisions.append(Decision(
                    now=now, kind="join", shard=victim,
                    before=obs.shard_replicas[victim],
                    after=obs.shard_replicas[victim] - 1,
                    reason=(
                        f"share {shares[victim]:.3f}, backlog "
                        f"{backlog[victim]:.3f}: fund the hot split "
                        f"inside the {p.max_total_replicas}-replica budget"
                    ),
                ))
            self._arm(("structural", target), now)
            if backlog[target] > p.split_backlog:
                reason = (
                    f"backlog {backlog[target]:.3f} > "
                    f"{p.split_backlog}: grow replication on the "
                    f"saturated shard"
                )
            else:
                reason = (
                    f"share {shares[target]:.3f} > "
                    f"{p.high_load:.2f}x fair share {fair:.3f}: "
                    f"grow replication on the hot shard"
                )
            decisions.append(Decision(
                now=now, kind="split", shard=target,
                before=obs.shard_replicas[target],
                after=obs.shard_replicas[target] + 1,
                reason=reason,
            ))
            return decisions
        if cold:
            victim = cold[0]
            self._arm(("structural", victim), now)
            return [Decision(
                now=now, kind="join", shard=victim,
                before=obs.shard_replicas[victim],
                after=obs.shard_replicas[victim] - 1,
                reason=(
                    f"share {shares[victim]:.3f} < "
                    f"{p.low_load:.2f}x fair share {fair:.3f}: "
                    f"drain and release the cold replica"
                ),
            )]
        return []

    def _decide_scheme(self, obs: Observation) -> list:
        if ("scheme-switch" not in self.capabilities
                or not self.policy.scheme_switching):
            return []
        shares = self._shares(obs)
        if shares is None:
            return []
        p = self.policy
        now = obs.now
        fair = 1.0 / len(shares)
        order = sorted(range(len(shares)), key=lambda i: (-shares[i], i))
        for i in order:
            if (shares[i] > p.high_load * fair
                    and obs.shard_schemes[i] != p.hot_scheme
                    and self._ready(("structural", i), now)):
                self._arm(("structural", i), now)
                return [Decision(
                    now=now, kind="scheme-switch", shard=i,
                    before=obs.shard_replicas[i],
                    after=obs.shard_replicas[i],
                    target=p.hot_scheme,
                    reason=(
                        f"hot shard ({shares[i]:.3f} share) on "
                        f"{obs.shard_schemes[i]!r}: rebuild on the "
                        f"low-contention scheme"
                    ),
                )]
        for i in reversed(order):
            if (shares[i] < p.low_load * fair
                    and obs.shard_schemes[i] != p.cold_scheme
                    and self._ready(("structural", i), now)):
                self._arm(("structural", i), now)
                return [Decision(
                    now=now, kind="scheme-switch", shard=i,
                    before=obs.shard_replicas[i],
                    after=obs.shard_replicas[i],
                    target=p.cold_scheme,
                    reason=(
                        f"cold shard ({shares[i]:.3f} share) on "
                        f"{obs.shard_schemes[i]!r}: rebuild on the "
                        f"space-lean scheme"
                    ),
                )]
        return []


class AutotuneController:
    """Loop glue between a live service and the pure decision engine."""

    def __init__(self, service, policy: AutotunePolicy | None = None,
                 seed=0, enabled: bool = True):
        self.service = service
        self.policy = policy if policy is not None else AutotunePolicy()
        self.seed = int(seed)
        self.enabled = bool(enabled)
        self.executor = ReconfigExecutor(service, seed=seed)
        self.engine = DecisionEngine(
            self.policy, self.executor.capabilities, seed=seed
        )
        self._last_check: float | None = None
        # Window baselines for delta signals.  Reading counters here is
        # uncharged (totals, not probes) and touches no RNG stream.
        self._prev_probes = self._shard_probe_totals()
        self._prev_replicas = self._shard_replica_counts()
        self._prev_admitted = int(service.admission.admitted)
        self._prev_shed = int(service.admission.shed)
        #: Trace of ``{"observation": ..., "decisions": [...]}`` entries
        #: — what the pure engine saw and chose; replayable.
        self.trace: list[dict] = []
        #: Apply outcomes (kept out of the trace: a skip depends on live
        #: health state the pure engine does not see).
        self.applied = 0
        self.skipped = 0
        self.skips: list[dict] = []

    # -- raw signal taps ---------------------------------------------------------

    def _shard_probe_totals(self) -> list:
        return [
            int(np.sum(s.replica_probe_loads()))
            for s in self.service.shards
        ]

    def _shard_replica_counts(self) -> list:
        return [int(s.replicas) for s in self.service.shards]

    # -- observe -----------------------------------------------------------------

    def observe(self, now: float) -> Observation:
        """Snapshot the current window's signals (uncharged reads only)."""
        service = self.service
        cur_probes = self._shard_probe_totals()
        cur_replicas = self._shard_replica_counts()
        deltas = []
        for i, cur in enumerate(cur_probes):
            prev = (
                self._prev_probes[i]
                if i < len(self._prev_probes) else 0
            )
            geometry_changed = (
                i >= len(self._prev_replicas)
                or cur_replicas[i] != self._prev_replicas[i]
            )
            # A structural swap installs a fresh table with a fresh
            # counter, so the running total resets; the post-swap total
            # *is* the window's work.
            deltas.append(cur if geometry_changed or cur < prev else
                          cur - prev)
        busy = getattr(service, "_busy_until", None)
        if busy is not None:
            backlog = tuple(
                round(max(0.0, float(np.max(b)) - float(now)), 6)
                for b in busy
            )
        else:
            backlog = tuple(0.0 for _ in service.shards)
        admitted = int(service.admission.admitted)
        shed = int(service.admission.shed)
        obs = Observation(
            now=float(now),
            shard_probes=tuple(deltas),
            shard_replicas=tuple(cur_replicas),
            shard_schemes=tuple(
                scheme_name(s) for s in service.shards
            ),
            shard_backlog=backlog,
            admitted=admitted - self._prev_admitted,
            shed=shed - self._prev_shed,
            in_flight=int(service.admission.in_flight),
            capacity=int(service.admission.capacity),
            pending_updates=int(
                getattr(service, "pending_updates", 0)
            ),
            update_capacity=int(
                getattr(service, "update_capacity", 0)
            ),
        )
        self._prev_probes = cur_probes
        self._prev_replicas = cur_replicas
        self._prev_admitted = admitted
        self._prev_shed = shed
        return obs

    # -- the loop ----------------------------------------------------------------

    def tick(self, now: float) -> list:
        """One controller iteration; returns the decisions applied.

        No-op unless enabled and at least ``check_every`` virtual time
        has passed since the last iteration — the service calls this
        from every ``advance``, and the controller paces itself.
        """
        if not self.enabled:
            return []
        now = float(now)
        if (self._last_check is not None
                and now - self._last_check < self.policy.check_every):
            return []
        self._last_check = now
        obs = self.observe(now)
        decisions = self.engine.decide(obs)
        self.trace.append({
            "observation": obs.to_dict(),
            "decisions": [d.to_dict() for d in decisions],
        })
        applied = []
        join_failed = False
        for decision in decisions:
            if decision.kind == "split" and join_failed:
                # The engine only emits a join ahead of a split to fund
                # it inside the replica budget; if the funding join was
                # refused (undrained victim), applying the split anyway
                # would bust the budget.
                self.skipped += 1
                self.skips.append({
                    "now": now, "kind": decision.kind,
                    "shard": decision.shard,
                    "reason": "funding join was refused",
                })
                continue
            try:
                self.executor.apply(
                    decision, now,
                    verify=self.policy.verify_clones,
                    verify_queries=self.policy.verify_queries,
                )
            except ReconfigError as exc:
                # A precondition failed against live state the pure
                # engine cannot see (quarantined replica, undrained
                # victim).  Record and move on; the armed cooldown
                # stops the engine from hammering the same action.
                self.skipped += 1
                self.skips.append({
                    "now": now, "kind": decision.kind,
                    "shard": decision.shard, "reason": str(exc),
                })
                if decision.kind == "join":
                    join_failed = True
                continue
            self.applied += 1
            applied.append(decision)
        if applied or decisions:
            self._export_gauges()
        return applied

    def _export_gauges(self) -> None:
        hub = getattr(self.service, "telemetry", None)
        if hub is None or hub.metrics is None:
            return
        m = hub.metrics
        m.counter(
            "autotune_decisions_total", "control-plane decisions issued"
        ).inc(len(self.trace[-1]["decisions"]) if self.trace else 0)
        m.gauge(
            "autotune_replicas_total", "replicas across all shards"
        ).set(float(sum(self._shard_replica_counts())))
        m.gauge(
            "autotune_capacity", "admission capacity"
        ).set(float(self.service.admission.capacity))
        m.gauge(
            "autotune_reconfig_probes",
            "cumulative reconfiguration probes",
        ).set(float(self.executor.reconfig_probes))

    # -- traces ------------------------------------------------------------------

    def trace_payload(self) -> dict:
        """The complete replayable record of this controller's run."""
        return {
            "policy": self.policy.to_dict(),
            "seed": self.seed,
            "capabilities": sorted(self.executor.capabilities),
            "entries": list(self.trace),
        }

    def trace_digest(self) -> str:
        """SHA-256 over the canonical JSON trace — the run's identity."""
        payload = json.dumps(
            self.trace_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def replay_trace(payload: dict) -> dict:
    """Re-derive every decision in a trace from its observations.

    Rebuilds the pure engine from the recorded policy, capabilities,
    and seed, feeds it the recorded observation stream, and compares
    the decisions it makes now against the decisions recorded then.
    Returns ``{"match": bool, "digest": ..., "entries": ...,
    "mismatches": [...]}`` — ``match`` is the byte-replayability
    property the satellite tests and the ``repro autotune replay`` CLI
    assert.
    """
    policy = AutotunePolicy.from_dict(payload["policy"])
    engine = DecisionEngine(
        policy, frozenset(payload["capabilities"]),
        seed=payload.get("seed", 0),
    )
    entries = []
    mismatches = []
    for index, entry in enumerate(payload["entries"]):
        obs = Observation.from_dict(entry["observation"])
        decisions = [d.to_dict() for d in engine.decide(obs)]
        entries.append({
            "observation": obs.to_dict(), "decisions": decisions,
        })
        if decisions != entry["decisions"]:
            mismatches.append(index)
    replayed = {
        "policy": policy.to_dict(),
        "seed": int(payload.get("seed", 0)),
        "capabilities": sorted(payload["capabilities"]),
        "entries": entries,
    }
    digest = hashlib.sha256(json.dumps(
        replayed, sort_keys=True, separators=(",", ":")
    ).encode()).hexdigest()
    original = hashlib.sha256(json.dumps(
        {
            "policy": payload["policy"],
            "seed": int(payload.get("seed", 0)),
            "capabilities": sorted(payload["capabilities"]),
            "entries": list(payload["entries"]),
        },
        sort_keys=True, separators=(",", ":")
    ).encode()).hexdigest()
    return {
        "match": not mismatches and digest == original,
        "digest": digest,
        "entries": len(entries),
        "mismatches": mismatches,
    }
