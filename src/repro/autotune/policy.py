"""Autotune policy: every knob of the control plane as frozen data.

A :class:`AutotunePolicy` is the complete, serializable configuration
of the closed-loop controller — hysteresis bands, cooldown windows,
replica bounds and budget, admission-capacity bands, and the scheme
map.  Policies are immutable, JSON-round-trippable
(:meth:`AutotunePolicy.to_dict` / :meth:`AutotunePolicy.from_dict`),
and hash to a canonical digest, so a decision trace can name exactly
which policy produced it and a replay can rebuild the controller
byte-for-byte.

The thresholds follow the LFCA-tree discipline (SNIPPETS.md Snippet
1): a *pair* of levels per signal — act only above ``high`` or below
``low``, never inside the band — plus a per-(action, shard) cooldown
window in virtual time, so one noisy observation window can neither
trigger nor immediately revert a structural change.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.errors import AutotuneError


@dataclasses.dataclass(frozen=True)
class AutotunePolicy:
    """All tunables of the closed-loop controller, as one frozen record.

    Load bands are stated over a shard's *share* of the query-path
    probe work in one observation window, relative to the fair share
    ``1 / num_shards``: a shard is hot above ``high_load x fair`` and
    cold below ``low_load x fair``.  Admission bands are stated over
    the shed fraction and the observed replica backlog (the p99 proxy:
    how far the busiest replica's virtual busy-until time runs ahead
    of now).
    """

    #: Hot threshold: probe share above ``high_load x fair`` grows R.
    high_load: float = 2.0
    #: Cold threshold: probe share below ``low_load x fair`` shrinks R.
    low_load: float = 0.5
    #: Absolute-pressure pair over a shard's virtual-time backlog (how
    #: far its busiest replica runs ahead of now): split above
    #: ``split_backlog`` even when no shard is *relatively* hot (a
    #: uniformly saturated service must still grow), and never join a
    #: shard whose backlog exceeds ``join_backlog`` (a drained victim
    #: is what makes the shrink graceful).
    split_backlog: float = 2.0
    join_backlog: float = 0.25
    #: Per-shard replication bounds.
    min_replicas: int = 1
    max_replicas: int = 5
    #: Total replica budget across shards (None = unbounded).  Keeping
    #: this equal to a static uniform deployment's total is what makes
    #: the E25 adaptive-vs-static comparison an equal-budget one.
    max_total_replicas: int | None = None
    #: Cooldown window per (action, shard), in virtual time.
    cooldown: float = 50.0
    #: Controller cadence: ticks closer together than this are no-ops.
    check_every: float = 10.0
    #: Admission tuning: raise capacity when the shed fraction exceeds
    #: ``shed_high`` (and the backlog is inside ``backlog_slack``);
    #: ``shed_low > 0`` additionally reclaims idle headroom.
    shed_high: float = 0.02
    shed_low: float = 0.0
    #: Backlog (virtual seconds of queued replica work) above which
    #: admission capacity is *lowered* to protect tail latency.
    backlog_slack: float = 4.0
    capacity_step: int = 64
    min_capacity: int = 32
    max_capacity: int = 4096
    #: Write-path analogue, over ``pending / update_capacity`` fill.
    update_capacity_step: int = 32
    min_update_capacity: int = 16
    max_update_capacity: int = 2048
    backlog_high: float = 0.75
    backlog_low: float = 0.1
    #: Per-shard scheme switching (off by default: replication scaling
    #: alone already covers the common hot-shard case).
    scheme_switching: bool = False
    hot_scheme: str = "low-contention"
    cold_scheme: str = "fks"
    #: Canary-verify cloned replicas / rebuilt schemes before the swap.
    #: Verification probes are charged to the reconfiguration counter,
    #: never the query path, and decisions depend only on query-path
    #: observations — so toggling this must not change a single
    #: decision (gated by E25 part E).
    verify_clones: bool = True
    verify_queries: int = 16

    def __post_init__(self):
        if not 0.0 <= float(self.low_load) < float(self.high_load):
            raise AutotuneError(
                f"need 0 <= low_load < high_load, got "
                f"{self.low_load}/{self.high_load}"
            )
        if not 1 <= int(self.min_replicas) <= int(self.max_replicas):
            raise AutotuneError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"{self.min_replicas}/{self.max_replicas}"
            )
        if self.max_total_replicas is not None and (
            int(self.max_total_replicas) < int(self.min_replicas)
        ):
            raise AutotuneError(
                f"max_total_replicas {self.max_total_replicas} below "
                f"min_replicas {self.min_replicas}"
            )
        if not float(self.cooldown) > 0.0:
            raise AutotuneError("cooldown must be > 0")
        if not float(self.check_every) > 0.0:
            raise AutotuneError("check_every must be > 0")
        if not 0.0 <= float(self.shed_low) < float(self.shed_high):
            raise AutotuneError(
                f"need 0 <= shed_low < shed_high, got "
                f"{self.shed_low}/{self.shed_high}"
            )
        if not float(self.backlog_slack) > 0.0:
            raise AutotuneError("backlog_slack must be > 0")
        if not 0.0 <= float(self.join_backlog) < float(self.split_backlog):
            raise AutotuneError(
                f"need 0 <= join_backlog < split_backlog, got "
                f"{self.join_backlog}/{self.split_backlog}"
            )
        for name in ("capacity_step", "update_capacity_step",
                     "verify_queries"):
            if int(getattr(self, name)) < 1:
                raise AutotuneError(f"{name} must be >= 1")
        if not 1 <= int(self.min_capacity) <= int(self.max_capacity):
            raise AutotuneError(
                f"need 1 <= min_capacity <= max_capacity, got "
                f"{self.min_capacity}/{self.max_capacity}"
            )
        if not 1 <= int(self.min_update_capacity) <= int(
            self.max_update_capacity
        ):
            raise AutotuneError(
                "need 1 <= min_update_capacity <= max_update_capacity, "
                f"got {self.min_update_capacity}/{self.max_update_capacity}"
            )
        if not 0.0 <= float(self.backlog_low) < float(self.backlog_high):
            raise AutotuneError(
                f"need 0 <= backlog_low < backlog_high, got "
                f"{self.backlog_low}/{self.backlog_high}"
            )
        if self.hot_scheme == self.cold_scheme:
            raise AutotuneError(
                "hot_scheme and cold_scheme must differ, got "
                f"{self.hot_scheme!r} twice"
            )

    def to_dict(self) -> dict:
        """JSON-safe dict form (inverse of :meth:`from_dict`)."""
        d = dataclasses.asdict(self)
        return {
            k: (v if not isinstance(v, bool) else bool(v))
            for k, v in d.items()
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AutotunePolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in fields})

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form — the policy's identity."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()
