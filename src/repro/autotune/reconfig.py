"""Reconfiguration executor: applying control-plane decisions safely.

The executor is the only component that mutates a running service.  It
owns the three invariants every action must keep:

- **Probe-accounting isolation** — all reconfiguration reads (cloning
  a replica's rows from a healthy source, canary-verifying a rebuilt
  structure) are charged to a dedicated reconfiguration
  :class:`~repro.cellprobe.counters.ProbeCounter`, exactly like the
  healing layer's repair counters (:mod:`repro.heal`).  The query-path
  counters never see control-plane work, so a controller-disabled
  service digests byte-identically and verification can be toggled
  without moving a single query-path probe.
- **Epoch-boundary atomicity** — a structural action builds the new
  replica set *next to* the live one, then swaps it into
  ``service.shards[i]`` in one assignment and advances the executor's
  :class:`~repro.dynamic.epoch.EpochManager`, retiring the old table.
  In-flight batches dispatched before the swap finish against the old
  table they captured; batches flushed after see only the new one.
- **Capability honesty** — structural actions swap whole tables and
  routers, which is impossible when replica state lives elsewhere (the
  multicore fabric's workers hold shared-memory segments; the dynamic
  service's replicas advance by lockstep log replay).  Those
  deployments are limited to admission tuning, and asking for more
  raises :class:`~repro.errors.ActionUnsupportedError` instead of
  corrupting a live table.

Split cloning follows the :class:`~repro.heal.ReplicaRebuilder` idiom:
uncharged ``peek_row`` reads of the source replica with explicit
``record_batch`` charges on the reconfiguration counter, and free
construction-time ``write_row`` stores into the new outer table.
"""

from __future__ import annotations

import numpy as np

from repro.cellprobe.counters import ProbeCounter
from repro.dictionaries.replicated import ReplicatedDictionary
from repro.dynamic.epoch import EpochManager
from repro.errors import ActionUnsupportedError, ReconfigError
from repro.heal import charged_to
from repro.serve.router import LeastLoadedRouter, make_router
from repro.telemetry.events import BUS, ReconfigEvent
from repro.utils.rng import as_generator, spawn_generators

#: Action kinds a plain in-process sharded service supports.
STRUCTURAL_ACTIONS = ("split", "join", "scheme-switch")

#: Action kinds every service supports (admission tuning).
ADMISSION_ACTIONS = ("capacity",)


def service_capabilities(service) -> frozenset:
    """The action kinds the executor may apply to ``service``.

    The multicore fabric keeps replica state in worker-held
    shared-memory segments and the dynamic service keeps it in
    lockstep-replayed logs — both get admission tuning only.  The
    plain in-process :class:`~repro.serve.service.
    ShardedDictionaryService` supports the full structural set.
    """
    caps = set(ADMISSION_ACTIONS)
    # Imported lazily to keep this module importable without spinning
    # up the multiprocessing / dynamic layers.
    from repro.serve.dynamic_service import DynamicShardedService

    if isinstance(service, DynamicShardedService):
        caps.add("update-capacity")
        return frozenset(caps)
    from repro.parallel.fabric import ParallelDictionaryService

    if isinstance(service, ParallelDictionaryService):
        return frozenset(caps)
    from repro.serve.service import ShardedDictionaryService

    if isinstance(service, ShardedDictionaryService):
        caps.update(STRUCTURAL_ACTIONS)
    return frozenset(caps)


def scheme_name(dictionary) -> str:
    """The registry name of a replicated dictionary's inner scheme."""
    inner = getattr(dictionary, "inner", None)
    if inner is None:
        return "dynamic"
    from repro.experiments.common import SCHEMES

    for name, cls in SCHEMES.items():
        if type(inner) is cls:
            return name
    return type(inner).__name__


class ReconfigExecutor:
    """Applies :class:`~repro.autotune.controller.Decision` records.

    Two private RNG streams keep verification orthogonal to structure:
    ``_rng`` seeds new routers and rebuilt inner schemes (drawn
    identically whether or not verification runs), while
    ``_verify_rng`` feeds canary sampling only — so toggling
    ``verify_clones`` cannot shift a structural draw.
    """

    def __init__(self, service, seed=0):
        self.service = service
        self.capabilities = service_capabilities(service)
        self._rng, self._verify_rng = spawn_generators(
            as_generator(seed), 2
        )
        self.epochs = EpochManager()
        #: Cumulative reconfiguration probes (clones + canaries).
        self.reconfig_probes = 0
        #: Applied-action ledger: flat dicts for tables/inspection.
        self.actions: list[dict] = []

    # -- dispatch ----------------------------------------------------------------

    def apply(self, decision, now: float, verify: bool = True,
              verify_queries: int = 16) -> dict:
        """Apply one decision; returns ``{kind, shard, probes, epoch}``.

        Raises :class:`~repro.errors.ActionUnsupportedError` for a kind
        outside this service's capabilities and
        :class:`~repro.errors.ReconfigError` when preconditions fail
        (the controller records those as skips and moves on).
        """
        kind = decision.kind
        if kind not in self.capabilities:
            raise ActionUnsupportedError(
                f"action {kind!r} unsupported on "
                f"{type(self.service).__name__}; capabilities: "
                f"{sorted(self.capabilities)}"
            )
        now = float(now)
        if kind == "split":
            result = self._split(
                decision.shard, now, verify, verify_queries
            )
        elif kind == "join":
            result = self._join(decision.shard, now)
        elif kind == "scheme-switch":
            result = self._scheme_switch(
                decision.shard, decision.target, now, verify,
                verify_queries,
            )
        elif kind == "capacity":
            result = self._capacity(decision)
        else:  # update-capacity
            result = self._update_capacity(decision)
        self.reconfig_probes += result["probes"]
        entry = {"now": now, **result}
        self.actions.append(entry)
        if BUS.active:
            BUS.emit(ReconfigEvent(
                kind=result["kind"], shard=result["shard"],
                before=result["before"], after=result["after"],
                probes=result["probes"], epoch=result["epoch"],
                target=result.get("target", ""),
            ))
        return entry

    # -- preconditions -----------------------------------------------------------

    def _require_steady(self, shard: int, action: str) -> None:
        """Structural actions need every replica live and healthy."""
        service = self.service
        d = service.shards[shard]
        router = service.routers[shard]
        if len(router.live) != d.replicas:
            raise ReconfigError(
                f"{action} shard {shard}: "
                f"{d.replicas - len(router.live)} replica(s) down"
            )
        health = service.health
        if health is None:
            return
        for r in range(d.replicas):
            machine = health.machines.get((shard, r))
            if machine is not None and machine.state != "healthy":
                raise ReconfigError(
                    f"{action} shard {shard}: replica {r} is "
                    f"{machine.state}"
                )
        if health.rebuilders[shard].active:
            raise ReconfigError(
                f"{action} shard {shard}: rebuild in progress"
            )

    def _canary(self, dictionary, replica: int, queries: int) -> int:
        """Verify one replica against ground truth; returns probes.

        Runs a seeded positive/negative sample through the replica with
        the table's counter swapped for a throwaway reconfiguration
        counter (:func:`~repro.heal.charged_to`), so the new table's
        query-path counter starts clean.  A wrong answer aborts the
        action before the swap.
        """
        keys = np.asarray(dictionary.keys, dtype=np.int64)
        rng = self._verify_rng
        pos = keys[rng.integers(0, keys.size, size=int(queries))]
        neg = rng.integers(0, dictionary.universe_size, size=int(queries))
        sample = np.concatenate([pos, neg])
        counter = ProbeCounter(dictionary.table.num_cells)
        with charged_to(dictionary.table, counter):
            answers = dictionary.query_batch_on(sample, replica, rng)
        expected = np.isin(sample, keys)
        if bool(np.any(answers != expected)):
            raise ReconfigError(
                f"canary caught {int(np.sum(answers != expected))} wrong "
                f"answer(s) on replica {replica}; swap aborted"
            )
        return counter.total_probes()

    # -- structural actions ------------------------------------------------------

    def _rebuild_replica_set(self, old, replicas: int):
        """A fresh replica set around ``old``'s inner, same fault layer."""
        return ReplicatedDictionary(
            old.inner, replicas, mode=old.mode, faults=old.faults,
            max_retries=old.max_retries,
        )

    def _swap(self, shard: int, new, router, busy) -> int:
        """Atomically install a rebuilt shard at an epoch boundary."""
        service = self.service
        old = service.shards[shard]
        self.epochs.retire((shard, old.table), words=old.table.num_cells)
        service.shards[shard] = new
        service.routers[shard] = router
        service._busy_until[shard] = busy
        epoch = self.epochs.advance()
        if service.health is not None:
            service.health.rebind_shard(shard)
        return epoch

    def _clone_router(self, old_router, replicas: int):
        """A same-policy router for the new geometry, state carried over.

        Survivor breakers move wholesale (they are per-replica state
        machines); a least-loaded router keeps survivor load totals so
        the policy does not restart from a blank slate.
        """
        service = self.service
        router = make_router(
            service.router_name, replicas,
            int(self._rng.integers(0, 2**63 - 1)),
        )
        carry = min(replicas, len(old_router.breakers))
        for r in range(carry):
            router.breakers[r] = old_router.breakers[r]
        if isinstance(router, LeastLoadedRouter) and isinstance(
            old_router, LeastLoadedRouter
        ):
            router.loads[:carry] = old_router.loads[:carry]
        return router

    def _split(self, shard: int, now: float, verify: bool,
               verify_queries: int) -> dict:
        """Grow one shard's replication by cloning a healthy replica."""
        self._require_steady(shard, "split")
        service = self.service
        d = service.shards[shard]
        before = d.replicas
        after = before + 1
        new = self._rebuild_replica_set(d, after)
        # Survivors keep their live outer state verbatim (free
        # construction-time writes — state transfer is a memmove, not
        # probe work; deliberately including any undetected corruption,
        # a split must not silently heal).
        for row in range(d.table.rows):
            new.table.write_row(row, d.table._cells[row])
        # The new replica clones row-by-row from the least-busy healthy
        # source, every read charged to the reconfiguration counter —
        # the ReplicaRebuilder discipline from repro.heal.
        busy = service._busy_until[shard]
        source = int(np.argmin(busy))
        counter = ProbeCounter(d.table.num_cells)
        columns = np.arange(d.table.s)
        read_table = d._read_table
        for inner_row in range(d.inner_rows):
            outer = d.replica_row(source, inner_row)
            values = read_table.peek_row(outer)
            counter.record_batch(0, outer * d.table.s + columns)
            new.table.write_row(
                new.replica_row(after - 1, inner_row), values
            )
        probes = counter.total_probes()
        if verify:
            probes += self._canary(new, after - 1, verify_queries)
        router = self._clone_router(service.routers[shard], after)
        epoch = self._swap(
            shard, new, router, np.append(busy, 0.0),
        )
        return {
            "kind": "split", "shard": int(shard), "before": before,
            "after": after, "probes": probes, "epoch": epoch,
            "source": source,
        }

    def _join(self, shard: int, now: float) -> dict:
        """Shrink one shard's replication, draining the victim first."""
        self._require_steady(shard, "join")
        service = self.service
        d = service.shards[shard]
        before = d.replicas
        if before < 2:
            raise ReconfigError(
                f"join shard {shard}: already at one replica"
            )
        after = before - 1
        victim = before - 1
        busy = service._busy_until[shard]
        if float(busy[victim]) > float(now):
            raise ReconfigError(
                f"join shard {shard}: replica {victim} busy until "
                f"{float(busy[victim]):.3f} (graceful drain pending)"
            )
        new = self._rebuild_replica_set(d, after)
        for row in range(new.table.rows):
            new.table.write_row(row, d.table._cells[row])
        router = self._clone_router(service.routers[shard], after)
        epoch = self._swap(
            shard, new, router, busy[:after].copy(),
        )
        return {
            "kind": "join", "shard": int(shard), "before": before,
            "after": after, "probes": 0, "epoch": epoch,
            "victim": victim,
        }

    def _scheme_switch(self, shard: int, target: str, now: float,
                       verify: bool, verify_queries: int) -> dict:
        """Rebuild one shard on another scheme; swap at an epoch."""
        self._require_steady(shard, "scheme-switch")
        service = self.service
        d = service.shards[shard]
        from repro.experiments.common import SCHEMES

        if target not in SCHEMES:
            raise ReconfigError(
                f"unknown target scheme {target!r}; options: "
                f"{sorted(SCHEMES)}"
            )
        current = scheme_name(d)
        if current == target:
            raise ReconfigError(
                f"scheme-switch shard {shard}: already running "
                f"{target!r}"
            )
        # Background build: the new inner constructs on its own table
        # (construction writes, not query probes), then replicates.
        inner = SCHEMES[target](
            np.asarray(d.keys, dtype=np.int64),
            d.universe_size,
            rng=np.random.default_rng(
                self._rng.integers(0, 2**63 - 1)
            ),
        )
        new = ReplicatedDictionary(
            inner, d.replicas, mode=d.mode, faults=d.faults,
            max_retries=d.max_retries,
        )
        probes = 0
        if verify:
            probes = self._canary(new, 0, verify_queries)
        epoch = self._swap(
            shard, new, service.routers[shard],
            service._busy_until[shard],
        )
        return {
            "kind": "scheme-switch", "shard": int(shard),
            "before": d.replicas, "after": new.replicas,
            "probes": probes, "epoch": epoch, "target": target,
            "from": current,
        }

    # -- admission actions -------------------------------------------------------

    def _capacity(self, decision) -> dict:
        """Retarget the admission-control capacity bound."""
        self.service.admission.capacity = int(decision.after)
        return {
            "kind": "capacity", "shard": -1,
            "before": int(decision.before), "after": int(decision.after),
            "probes": 0, "epoch": self.epochs.epoch,
        }

    def _update_capacity(self, decision) -> dict:
        """Retarget the write-backlog bound (dynamic service only)."""
        self.service.update_capacity = int(decision.after)
        return {
            "kind": "update-capacity", "shard": -1,
            "before": int(decision.before), "after": int(decision.after),
            "probes": 0, "epoch": self.epochs.epoch,
        }
