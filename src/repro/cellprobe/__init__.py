"""The instrumented cell-probe machine (paper Section 1.1).

A data structure in the cell-probe model is a table of ``s`` cells of ``b``
bits plus a probabilistic query algorithm that makes ``t`` adaptive probes.
This subpackage provides:

- :class:`~repro.cellprobe.table.Table` — the memory, with per-probe
  accounting (every ``read`` is a probe; writes during construction are
  free, as in the static cell-probe model);
- :class:`~repro.cellprobe.counters.ProbeCounter` — per-cell, per-step
  probe counts realizing Definition 1's contention empirically;
- :mod:`~repro.cellprobe.steps` — an algebra of *probe steps*: exact,
  closed-form per-step probe distributions (fixed cell, uniform over a
  strided range, uniform over an explicit set) used both to *execute*
  queries (sampling) and to *analyze* them (exact contention);
- :class:`~repro.cellprobe.machine.CellProbeMachine` — drives query
  executions and validates that executions stay inside the analytic plan.
"""

from repro.cellprobe.counters import ProbeCounter
from repro.cellprobe.machine import CellProbeMachine, ExecutionRecord
from repro.cellprobe.steps import (
    BatchStridedStep,
    FixedCell,
    ProbeStep,
    UniformSet,
    UniformStrided,
)
from repro.cellprobe.table import EMPTY_CELL, Table

__all__ = [
    "Table",
    "EMPTY_CELL",
    "ProbeCounter",
    "ProbeStep",
    "FixedCell",
    "UniformStrided",
    "UniformSet",
    "BatchStridedStep",
    "CellProbeMachine",
    "ExecutionRecord",
]
