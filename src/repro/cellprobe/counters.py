"""Per-cell, per-step probe accounting.

:class:`ProbeCounter` is the empirical side of Definition 1: after running
``E`` query executions, ``counter.contention_per_step() / E`` estimates
the per-step contention matrix ``Phi_t(j)`` and
``counter.total_contention() / E`` estimates the total contention
``Phi(j) = sum_t Phi_t(j)``.  The exact analytic counterpart lives in
:mod:`repro.contention.exact`; tests check the two converge.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ParameterError
from repro.telemetry.events import BUS, ExecutionEvent
from repro.utils.validation import check_positive_integer


class ProbeCounter:
    """Counts probes to each flat cell index, stratified by query step.

    Step arrays are allocated lazily: most schemes probe a bounded number
    of steps, but the counter does not need to know the bound up front.
    """

    def __init__(self, num_cells: int):
        self.num_cells = check_positive_integer("num_cells", num_cells)
        self._per_step: list[np.ndarray] = []
        self.executions = 0

    # -- recording -------------------------------------------------------------

    def record(self, step: int, flat_cell: int) -> None:
        """Record one probe of ``flat_cell`` at 0-based query ``step``."""
        if step < 0:
            raise ParameterError("step must be non-negative")
        if not 0 <= flat_cell < self.num_cells:
            raise ParameterError(
                f"cell {flat_cell} out of range [0, {self.num_cells})"
            )
        while len(self._per_step) <= step:
            self._per_step.append(np.zeros(self.num_cells, dtype=np.int64))
        self._per_step[step][flat_cell] += 1

    def record_batch(self, step: int, flat_cells: np.ndarray) -> None:
        """Record one probe per non-negative entry of ``flat_cells``.

        Negative entries are *skipped entirely*: they charge no probe to
        any cell and they do not advance :attr:`executions` (only
        :meth:`finish_execution` ever does).  This is the contract the
        batched query algorithms rely on to express per-key steps the
        scalar algorithm would not execute, and it is pinned by an
        explicit test (``tests/test_cellprobe_counters.py``).
        """
        if step < 0:
            raise ParameterError("step must be non-negative")
        flat_cells = np.asarray(flat_cells, dtype=np.int64)
        active = flat_cells >= 0
        if np.any(flat_cells[active] >= self.num_cells):
            raise ParameterError("cell index out of range in batch")
        while len(self._per_step) <= step:
            self._per_step.append(np.zeros(self.num_cells, dtype=np.int64))
        np.add.at(self._per_step[step], flat_cells[active], 1)

    def finish_execution(self, count: int = 1) -> None:
        """Mark ``count`` completed query executions (the normalizer)."""
        if count < 1:
            raise ParameterError("count must be positive")
        self.executions += count
        if BUS.active:
            BUS.emit(ExecutionEvent(count=count))

    def merge(self, other: "ProbeCounter") -> "ProbeCounter":
        """Fold another counter's tallies into this one (in place).

        Per-worker counters (e.g. one per parallel experiment shard or
        per replica view) can be combined into a single global counter:
        per-step count matrices add element-wise (the shorter counter's
        missing steps count as zero) and execution counts add.  Both
        counters must track the same number of cells.  Returns ``self``
        for chaining.
        """
        if not isinstance(other, ProbeCounter):
            raise ParameterError(
                f"can only merge ProbeCounter, got {type(other).__name__}"
            )
        if other.num_cells != self.num_cells:
            raise ParameterError(
                f"cannot merge counter over {other.num_cells} cells into "
                f"one over {self.num_cells}"
            )
        while len(self._per_step) < len(other._per_step):
            self._per_step.append(np.zeros(self.num_cells, dtype=np.int64))
        for step, counts in enumerate(other._per_step):
            self._per_step[step] += counts
        self.executions += other.executions
        return self

    # -- reading ----------------------------------------------------------------

    @property
    def num_steps(self) -> int:
        """Number of distinct step indices recorded so far."""
        return len(self._per_step)

    def counts_per_step(self) -> np.ndarray:
        """Raw counts, shape ``(num_steps, num_cells)`` (a copy)."""
        if not self._per_step:
            return np.zeros((0, self.num_cells), dtype=np.int64)
        return np.stack(self._per_step)

    def total_counts(self) -> np.ndarray:
        """Raw probe counts summed over steps, shape ``(num_cells,)``."""
        if not self._per_step:
            return np.zeros(self.num_cells, dtype=np.int64)
        return np.sum(self._per_step, axis=0)

    def contention_per_step(self) -> np.ndarray:
        """Empirical ``Phi_t(j)``: counts / executions, per step and cell."""
        if self.executions == 0:
            raise ParameterError("no executions recorded yet")
        return self.counts_per_step() / float(self.executions)

    def total_contention(self) -> np.ndarray:
        """Empirical total contention ``Phi(j) = sum_t Phi_t(j)``."""
        if self.executions == 0:
            raise ParameterError("no executions recorded yet")
        return self.total_counts() / float(self.executions)

    def max_contention(self) -> float:
        """``max_j Phi(j)`` — the headline quantity of the paper."""
        return float(self.total_contention().max(initial=0.0))

    def max_step_contention(self) -> float:
        """``max_{t,j} Phi_t(j)`` — the balanced-scheme bound (Def. 2)."""
        per = self.contention_per_step()
        return float(per.max(initial=0.0)) if per.size else 0.0

    def total_probes(self) -> int:
        """Total probes recorded across all steps and cells."""
        return int(sum(int(a.sum()) for a in self._per_step))

    def digest(self) -> str:
        """SHA-256 over the exact accounting state (steps, counts, E).

        Two counters digest equally iff their per-step count matrices
        and execution counts are byte-identical — the comparison the
        E20/E21 "observation changes nothing" gates are stated in.
        """
        h = hashlib.sha256()
        h.update(f"{self.num_cells}:{self.executions}:".encode())
        for counts in self._per_step:
            h.update(counts.tobytes())
        return h.hexdigest()

    def reset(self) -> None:
        """Clear all counts and the execution counter."""
        self._per_step = []
        self.executions = 0
