"""Query driver with plan-conformance checking.

:class:`CellProbeMachine` runs a dictionary's executable query repeatedly,
records the probes it actually made, and (optionally) validates every
probe against the dictionary's *analytic* probe plan — the closed-form
per-step distributions used by the exact contention engine.  The two are
implemented independently inside each dictionary (the executable query
computes addresses from values it has read; the plan computes them from
the builder's private state), so conformance is a real end-to-end check
that the analytics describe the algorithm that actually runs.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

import numpy as np

from repro.cellprobe.steps import ProbeStep
from repro.errors import QueryError
from repro.utils.rng import as_generator


@dataclasses.dataclass
class ExecutionRecord:
    """One executed query: its answer and the probes it made."""

    query: int
    answer: bool
    probes: list[tuple[int, int, int]]  # (step, row, column)

    @property
    def num_probes(self) -> int:
        return len(self.probes)


class PlanViolation(QueryError):
    """An executed probe fell outside the analytic plan's support."""


class CellProbeMachine:
    """Runs queries against a :class:`~repro.dictionaries.base.StaticDictionary`.

    Parameters
    ----------
    dictionary:
        Any object with ``query(x, rng) -> bool``, ``probe_plan(x) ->
        list[ProbeStep]``, ``table`` and ``contains(x)`` (the
        ``StaticDictionary`` protocol).
    check_plan:
        When True (default), every executed probe is validated against the
        plan: step count must match the plan length, and each probed cell
        must be in the support of the corresponding plan step.
    """

    def __init__(self, dictionary, *, check_plan: bool = True):
        self.dictionary = dictionary
        self.check_plan = check_plan

    def run_query(self, x: int, rng=None) -> ExecutionRecord:
        """Execute one query, recording and (optionally) validating probes."""
        rng = as_generator(rng)
        table = self.dictionary.table
        counter = table.counter
        start_counts = {
            t: arr.copy() for t, arr in enumerate(counter._per_step)
        }
        start_steps = counter.num_steps
        answer = bool(self.dictionary.query(x, rng))
        probes = self._extract_new_probes(counter, start_counts)
        counter.finish_execution()
        record = ExecutionRecord(query=int(x), answer=answer, probes=probes)
        if self.check_plan:
            self._validate(x, record)
        expected = bool(self.dictionary.contains(x))
        if answer != expected:
            raise QueryError(
                f"query({x}) returned {answer}, ground truth {expected}"
            )
        return record

    def run_many(self, xs: Iterable[int], rng=None) -> list[ExecutionRecord]:
        """Execute many queries with a shared RNG stream."""
        rng = as_generator(rng)
        return [self.run_query(int(x), rng) for x in xs]

    # -- internals ---------------------------------------------------------------

    def _extract_new_probes(self, counter, start_counts) -> list[tuple[int, int, int]]:
        s = self.dictionary.table.s
        probes: list[tuple[int, int, int]] = []
        for t in range(counter.num_steps):
            arr = counter._per_step[t]
            before = start_counts.get(t)
            delta = arr - before if before is not None else arr
            cells = np.nonzero(delta)[0]
            for cell in cells:
                for _ in range(int(delta[cell])):
                    probes.append((t, int(cell) // s, int(cell) % s))
        probes.sort()
        return probes

    def _validate(self, x: int, record: ExecutionRecord) -> None:
        plan: Sequence[ProbeStep] = self.dictionary.probe_plan(x)
        if len(record.probes) != len(plan):
            raise PlanViolation(
                f"query({x}) made {len(record.probes)} probes, plan has "
                f"{len(plan)} steps"
            )
        for (step, row, column), plan_step in zip(record.probes, plan):
            # Multi-row steps (e.g. whole-structure replication) expose
            # contains_cell; single-row steps pin their row attribute.
            if hasattr(plan_step, "contains_cell"):
                ok = plan_step.contains_cell(row, column)
            else:
                ok = row == plan_step.row and plan_step.contains(column)
            if not ok:
                raise PlanViolation(
                    f"query({x}) step {step}: probed ({row}, {column}), "
                    f"plan step is row {plan_step.row} with support size "
                    f"{plan_step.size}"
                )
