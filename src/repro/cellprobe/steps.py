"""Probe-step algebra: exact per-step probe distributions.

Every dictionary in this library answers a query with a sequence of
*probe steps*.  Each step is a probability distribution over table cells
from which the executing query samples **exactly one** probe.  Because
every step used by our schemes is uniform over an explicitly describable
set (a single cell, an arithmetic progression within a row, or a small
explicit set), we can compute the contention

    Phi_t(j) = E[Y^(t)(X, j)]   (paper Definition 1)

*exactly* by accumulating ``q(x) / |support|`` over the support of each
query's step-t distribution — no Monte-Carlo noise.  The same objects
drive execution: sampling a probe is sampling from the step.

Cells are addressed as ``(row, column)`` within a
:class:`~repro.cellprobe.table.Table` of shape ``(rows, s)``; the *flat*
index ``row * s + column`` is used by the contention engine.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ParameterError


class ProbeStep:
    """Abstract probe step: a distribution over cells of one table row."""

    row: int

    def sample(self, rng: np.random.Generator) -> int:
        """Sample the probed column."""
        raise NotImplementedError

    def support(self) -> np.ndarray:
        """Columns with positive probe probability (int64 array)."""
        raise NotImplementedError

    def probability(self) -> float:
        """Probe probability of each support column (steps are uniform)."""
        raise NotImplementedError

    def contains(self, column: int) -> bool:
        """Whether ``column`` is in the support."""
        raise NotImplementedError

    @property
    def size(self) -> int:
        """Support size."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class FixedCell(ProbeStep):
    """Deterministic probe of a single cell."""

    row: int
    column: int

    def __post_init__(self):
        if self.row < 0 or self.column < 0:
            raise ParameterError("row and column must be non-negative")

    def sample(self, rng: np.random.Generator) -> int:
        return self.column

    def support(self) -> np.ndarray:
        return np.array([self.column], dtype=np.int64)

    def probability(self) -> float:
        return 1.0

    def contains(self, column: int) -> bool:
        return column == self.column

    @property
    def size(self) -> int:
        return 1


@dataclasses.dataclass(frozen=True)
class UniformStrided(ProbeStep):
    """Uniform probe over ``{start + k*stride : 0 <= k < count}``.

    This is the workhorse: replicated words live at congruent positions
    (e.g. the ``s/m`` copies of a group's GBAS word sit at columns
    ``k*m + group`` for ``k in [s/m]``), and a bucket's owned cell span is
    the contiguous case ``stride == 1``.
    """

    row: int
    start: int
    stride: int
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise ParameterError("count must be >= 1")
        if self.stride < 1:
            raise ParameterError("stride must be >= 1")
        if self.row < 0 or self.start < 0:
            raise ParameterError("row and start must be non-negative")

    def sample(self, rng: np.random.Generator) -> int:
        return self.start + self.stride * int(rng.integers(0, self.count))

    def support(self) -> np.ndarray:
        return self.start + self.stride * np.arange(self.count, dtype=np.int64)

    def probability(self) -> float:
        return 1.0 / self.count

    def contains(self, column: int) -> bool:
        offset = column - self.start
        return (
            offset >= 0
            and offset % self.stride == 0
            and offset // self.stride < self.count
        )

    @property
    def size(self) -> int:
        return self.count


@dataclasses.dataclass(frozen=True)
class UniformSet(ProbeStep):
    """Uniform probe over an explicit column set (e.g. cuckoo's two cells)."""

    row: int
    columns: tuple[int, ...]

    def __post_init__(self):
        if not self.columns:
            raise ParameterError("columns must be non-empty")
        if len(set(self.columns)) != len(self.columns):
            raise ParameterError("columns must be distinct")
        if any(c < 0 for c in self.columns):
            raise ParameterError("columns must be non-negative")

    def sample(self, rng: np.random.Generator) -> int:
        return self.columns[int(rng.integers(0, len(self.columns)))]

    def support(self) -> np.ndarray:
        return np.asarray(self.columns, dtype=np.int64)

    def probability(self) -> float:
        return 1.0 / len(self.columns)

    def contains(self, column: int) -> bool:
        return column in self.columns

    @property
    def size(self) -> int:
        return len(self.columns)


@dataclasses.dataclass
class BatchStridedStep:
    """Vectorized probe step for a batch of queries (one table row).

    Query ``i`` of the batch probes uniformly over
    ``{starts[i] + k*strides[i] : 0 <= k < counts[i]}``; queries with
    ``counts[i] == 0`` make no probe at this step (e.g. empty buckets end
    the query early).  ``shared=True`` asserts all queries have identical
    support — the contention engine then accumulates in O(count) instead
    of O(batch * count) (the f/g coefficient rows, probed uniformly over
    all ``s`` cells by every query, would otherwise dominate).
    """

    row: int
    starts: np.ndarray
    strides: np.ndarray
    counts: np.ndarray
    shared: bool = False

    def __post_init__(self):
        self.starts = np.asarray(self.starts, dtype=np.int64)
        self.strides = np.asarray(self.strides, dtype=np.int64)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        n = self.starts.shape[0]
        if self.strides.shape != (n,) or self.counts.shape != (n,):
            raise ParameterError("starts/strides/counts must share shape")
        if np.any(self.counts < 0):
            raise ParameterError("counts must be non-negative")
        if np.any((self.counts > 0) & (self.strides < 1)):
            raise ParameterError("strides must be >= 1 where counts > 0")
        if self.shared and n > 0:
            same = (
                np.all(self.starts == self.starts[0])
                and np.all(self.strides == self.strides[0])
                and np.all(self.counts == self.counts[0])
            )
            if not same:
                raise ParameterError("shared=True requires identical supports")

    @property
    def batch_size(self) -> int:
        return self.starts.shape[0]

    def accumulate(self, flat: np.ndarray, weights: np.ndarray, s: int) -> None:
        """Add each query's probe distribution, scaled by ``weights``.

        ``flat`` is the flat (rows*s,) contention accumulator; query ``i``
        contributes ``weights[i] / counts[i]`` to each of its support cells.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.batch_size,):
            raise ParameterError("weights must match batch size")
        active = self.counts > 0
        if not np.any(active):
            return
        base = self.row * s
        if self.shared:
            cols = self.starts[0] + self.strides[0] * np.arange(
                self.counts[0], dtype=np.int64
            )
            total = float(weights[active].sum())
            flat[base + cols] += total / float(self.counts[0])
            return
        starts = self.starts[active]
        strides = self.strides[active]
        counts = self.counts[active]
        w = weights[active] / counts
        total = int(counts.sum())
        # Flatten all supports: for each query i, emit counts[i] indices
        # start_i + k*stride_i.  np.repeat + a segmented arange does this
        # without a Python loop (guide: vectorize with index arrays).
        reps_start = np.repeat(starts, counts)
        reps_stride = np.repeat(strides, counts)
        seg_end = np.cumsum(counts)
        k = np.arange(total, dtype=np.int64) - np.repeat(seg_end - counts, counts)
        cols = reps_start + reps_stride * k
        np.add.at(flat, base + cols, np.repeat(w, counts))

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Sample one probed column per query; -1 where count == 0."""
        out = np.full(self.batch_size, -1, dtype=np.int64)
        active = self.counts > 0
        if np.any(active):
            k = (rng.random(int(active.sum())) * self.counts[active]).astype(np.int64)
            # Guard against the measure-zero rng.random()==1.0 edge.
            np.minimum(k, self.counts[active] - 1, out=k)
            out[active] = self.starts[active] + self.strides[active] * k
        return out

    def step_for(self, i: int) -> ProbeStep | None:
        """The single-query :class:`ProbeStep` of batch element ``i``."""
        if self.counts[i] == 0:
            return None
        if self.counts[i] == 1:
            return FixedCell(self.row, int(self.starts[i]))
        return UniformStrided(
            self.row, int(self.starts[i]), int(self.strides[i]), int(self.counts[i])
        )


def plan_total_probes(plan: Sequence[ProbeStep]) -> int:
    """Number of probes a plan makes (its length; one probe per step)."""
    return len(plan)


def plan_max_row(plan: Sequence[ProbeStep]) -> int:
    """Largest row index touched by a plan (-1 for the empty plan)."""
    return max((step.row for step in plan), default=-1)
