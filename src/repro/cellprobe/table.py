"""The cell-probe table: ``rows × s`` cells of b-bit words, with accounting.

In the static cell-probe model the table is prepared offline (writes are
free); only query-time *reads* are probes and are charged to the
:class:`~repro.cellprobe.counters.ProbeCounter`.  Cells hold unsigned
values below ``2**64``; the reserved sentinel :data:`EMPTY_CELL` marks
unowned / vacant cells (it is outside every universe we allow, since
universes are capped at ``2**62``).
"""

from __future__ import annotations

import numpy as np

from repro.cellprobe.counters import ProbeCounter
from repro.errors import TableError
from repro.telemetry.events import BUS, ProbeEvent
from repro.utils.validation import check_positive_integer

#: Sentinel stored in vacant cells; outside any permitted universe.
EMPTY_CELL = (1 << 64) - 1

#: Cell width in bits (DESIGN.md conventions; b = 64 >= log2 N).
CELL_BITS = 64


class Table:
    """An instrumented cell-probe memory of shape ``(rows, s)``.

    Parameters
    ----------
    rows:
        Number of rows; the schemes in this library use one probe per row.
    s:
        Number of cells per row (the paper's table size parameter).
    counter:
        Optional shared :class:`ProbeCounter`; a fresh one is created if
        omitted.
    """

    def __init__(self, rows: int, s: int, counter: ProbeCounter | None = None):
        self.rows = check_positive_integer("rows", rows)
        self.s = check_positive_integer("s", s)
        self._cells = np.full((self.rows, self.s), EMPTY_CELL, dtype=np.uint64)
        #: Cells written during construction — a deterministic proxy for
        #: construction work (writes are free in the model but O(build time)).
        self.writes = 0
        self.counter = counter if counter is not None else ProbeCounter(self.rows * self.s)
        if self.counter.num_cells != self.rows * self.s:
            raise TableError(
                f"counter tracks {self.counter.num_cells} cells, table has "
                f"{self.rows * self.s}"
            )

    # -- construction-time access (free) ------------------------------------

    def write(self, row: int, column: int, value: int) -> None:
        """Store ``value`` (a b-bit word) during construction; not a probe."""
        self._check(row, column)
        if not 0 <= value < (1 << CELL_BITS):
            raise TableError(f"value {value} does not fit a {CELL_BITS}-bit cell")
        self._cells[row, column] = value
        self.writes += 1

    def write_row(self, row: int, values: np.ndarray) -> None:
        """Bulk-store an entire row during construction; not a probe."""
        if not 0 <= row < self.rows:
            raise TableError(f"row {row} out of range [0, {self.rows})")
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != (self.s,):
            raise TableError(f"row must have shape ({self.s},), got {values.shape}")
        self._cells[row, :] = values
        self.writes += self.s

    def peek(self, row: int, column: int) -> int:
        """Read without charging a probe (analysis / debugging only)."""
        self._check(row, column)
        return int(self._cells[row, column])

    def peek_row(self, row: int) -> np.ndarray:
        """Copy an entire row without charging probes (scrub/rebuild I/O).

        The healing layer charges its own repair counter explicitly per
        cell, so the raw read must stay off the query-path counter.
        """
        if not 0 <= row < self.rows:
            raise TableError(f"row {row} out of range [0, {self.rows})")
        return self._cells[row].copy()

    # -- query-time access (charged) -----------------------------------------

    def read(self, row: int, column: int, step: int) -> int:
        """Probe cell ``(row, column)`` at query step ``step`` and return it.

        The probe is charged to the table's counter under step index
        ``step`` (0-based), realizing one sample of ``Y^(t)(x, j)``.
        """
        self._check(row, column)
        self.counter.record(step, row * self.s + column)
        if BUS.active:
            BUS.emit(ProbeEvent(step=step, probes=1))
        return int(self._cells[row, column])

    def read_batch(
        self, rows: np.ndarray | int, columns: np.ndarray, step: int
    ) -> np.ndarray:
        """Probe many cells at the same query step and return their values.

        ``rows`` broadcasts against ``columns`` (pass a scalar row to probe
        one row at many columns).  Entries with ``column < 0`` are *skipped*:
        no probe is charged and :data:`EMPTY_CELL` is returned in their
        place — this is how batched query algorithms express per-key steps
        that the scalar algorithm would not execute (e.g. a second cuckoo
        probe after a first-table hit).

        All executed probes are charged to the counter under step index
        ``step`` via one :meth:`ProbeCounter.record_batch` call.
        """
        columns = np.asarray(columns, dtype=np.int64)
        rows_arr = np.broadcast_to(
            np.asarray(rows, dtype=np.int64), columns.shape
        )
        active = columns >= 0
        if bool(np.any(active)):
            r_act = rows_arr[active]
            c_act = columns[active]
            if r_act.size and (
                int(r_act.min()) < 0
                or int(r_act.max()) >= self.rows
                or int(c_act.max()) >= self.s
            ):
                raise TableError(
                    f"batch probe out of range for table "
                    f"({self.rows} rows x {self.s} cells)"
                )
        flat = np.where(active, rows_arr * self.s + columns, -1)
        self.counter.record_batch(step, flat)
        if BUS.active:
            BUS.emit(ProbeEvent(step=step, probes=int(np.count_nonzero(active))))
        out = np.full(columns.shape, EMPTY_CELL, dtype=np.uint64)
        if bool(np.any(active)):
            out[active] = self._cells[rows_arr[active], columns[active]]
        return out

    # -- misc ------------------------------------------------------------------

    def flat_index(self, row: int, column: int) -> int:
        """Flat cell index used by counters and the contention engine."""
        self._check(row, column)
        return row * self.s + column

    @property
    def num_cells(self) -> int:
        """Total number of cells (the paper's space in words)."""
        return self.rows * self.s

    def occupancy(self) -> float:
        """Fraction of cells not holding :data:`EMPTY_CELL`."""
        return float(np.count_nonzero(self._cells != EMPTY_CELL)) / self.num_cells

    def _check(self, row: int, column: int) -> None:
        if not (0 <= row < self.rows and 0 <= column < self.s):
            raise TableError(
                f"cell ({row}, {column}) out of range for table "
                f"({self.rows} rows x {self.s} cells)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table(rows={self.rows}, s={self.s}, occupancy={self.occupancy():.3f})"
