"""Command-line interface: ``python -m repro <command>``.

Commands
--------

- ``list`` — show the experiment registry (E1–E14) with titles.
- ``run E5 [--full] [--seed 0] [--json out.json]`` — run one experiment
  (or ``all``) and print its regenerated table.
- ``survey [--n 512] [--seed 0]`` — the §1.3 contention comparison
  across all schemes on one instance.
- ``info`` — package, paper, and reproduction-band summary.

The CLI is a thin veneer over :mod:`repro.experiments`; everything it
prints is available programmatically.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.experiments import EXPERIMENTS
from repro.io.results import save_results


def _cmd_list(args) -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, (title, _) in EXPERIMENTS.items():
        print(f"{eid:<{width}}  {title}")
    return 0


def _cmd_run(args) -> int:
    from repro.experiments.parallel import run_experiments

    results = run_experiments(
        args.experiments,
        fast=not args.full,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    for result in results:
        print(result.render())
        print()
    if args.json:
        save_results(results, args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_survey(args) -> int:
    import numpy as np

    from repro.contention import measure
    from repro.experiments.common import SCHEMES, make_instance
    from repro.distributions import UniformPositiveNegative
    from repro.io import render_table

    keys, N = make_instance(args.n, args.seed)
    dist = UniformPositiveNegative(N, keys, 0.5)
    rows = []
    for name, cls in SCHEMES.items():
        d = cls(keys, N, rng=np.random.default_rng(args.seed + 1))
        rows.append(measure(d, dist).row())
    print(
        render_table(
            rows,
            columns=[
                "scheme", "space_words", "max_probes", "E[probes]",
                "max_step_phi", "ratio_step",
            ],
            title=f"Contention survey: n={args.n}, N={N}, uniform +/- queries",
        )
    )
    return 0


def _cmd_info(args) -> int:
    print(
        f"repro {__version__} — reproduction of 'Low-Contention Data "
        "Structures'\n(Aspnes, Eisenstat, Yin; SPAA 2010).\n\n"
        f"Experiments registered: {len(EXPERIMENTS)} "
        f"({', '.join(EXPERIMENTS)})\n"
        "Docs: README.md (tour), DESIGN.md (system inventory), "
        "EXPERIMENTS.md (paper vs measured)."
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed for testing/completion)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Low-contention data structures: reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run experiments (ids or 'all')")
    run_p.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids, e.g. E1 E5, or 'all'",
    )
    run_p.add_argument("--full", action="store_true", help="full size ladders")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--json", help="also write results as JSON")
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (results are identical for any count)",
    )
    run_p.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk construction cache directory (default: memory-only)",
    )
    run_p.set_defaults(func=_cmd_run)

    survey_p = sub.add_parser("survey", help="cross-scheme contention table")
    survey_p.add_argument("--n", type=int, default=512)
    survey_p.add_argument("--seed", type=int, default=0)
    survey_p.set_defaults(func=_cmd_survey)

    sub.add_parser("info", help="package and paper summary").set_defaults(
        func=_cmd_info
    )
    return parser


def main(argv=None) -> int:
    """Parse arguments and dispatch to a command; returns the exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
