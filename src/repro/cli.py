"""Command-line interface: ``python -m repro <command>``.

Commands
--------

- ``list`` — show the experiment registry (E1–E18) with titles.
- ``run E5 [--full] [--seed 0] [--json out.json]`` — run one experiment
  (or ``all``) and print its regenerated table.  Resilience is opt-in:
  ``--timeout``/``--retries``/``--retry-backoff`` harden individual
  experiments, ``--checkpoint-dir`` makes multi-experiment runs
  crash-safe (kill and re-invoke to resume), and
  ``--fail-fast``/``--keep-going`` pick the multi-experiment failure
  semantics.
- ``survey [--n 512] [--seed 0]`` — the §1.3 contention comparison
  across all schemes on one instance.
- ``info`` — package, paper, and reproduction-band summary.

The CLI is a thin veneer over :mod:`repro.experiments`; everything it
prints is available programmatically.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.errors import ExperimentFailureError, ReproError
from repro.experiments import EXPERIMENTS
from repro.io.results import save_results


def _cmd_list(args) -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, (title, _) in EXPERIMENTS.items():
        print(f"{eid:<{width}}  {title}")
    return 0


def _print_results(results, json_path) -> None:
    for result in results:
        print(result.render())
        print()
    if json_path:
        save_results(results, json_path)
        print(f"wrote {json_path}")


def _cmd_run(args) -> int:
    from repro.experiments.parallel import run_experiments

    try:
        results = run_experiments(
            args.experiments,
            fast=not args.full,
            seed=args.seed,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            timeout=args.timeout,
            retries=args.retries,
            retry_backoff=args.retry_backoff,
            checkpoint_dir=args.checkpoint_dir,
            keep_going=args.keep_going,
        )
    except ExperimentFailureError as exc:
        # Keep-going runs still render everything that completed; either
        # way each failure becomes one line on stderr and a nonzero exit.
        _print_results(exc.results, args.json if exc.results else None)
        for eid, reason in exc.failures.items():
            print(f"error: {eid} failed: {reason}", file=sys.stderr)
        return 1
    _print_results(results, args.json)
    return 0


def _cmd_survey(args) -> int:
    import numpy as np

    from repro.contention import measure
    from repro.experiments.common import SCHEMES, make_instance
    from repro.distributions import UniformPositiveNegative
    from repro.io import render_table

    keys, N = make_instance(args.n, args.seed)
    dist = UniformPositiveNegative(N, keys, 0.5)
    rows = []
    for name, cls in SCHEMES.items():
        d = cls(keys, N, rng=np.random.default_rng(args.seed + 1))
        rows.append(measure(d, dist).row())
    print(
        render_table(
            rows,
            columns=[
                "scheme", "space_words", "max_probes", "E[probes]",
                "max_step_phi", "ratio_step",
            ],
            title=f"Contention survey: n={args.n}, N={N}, uniform +/- queries",
        )
    )
    return 0


def _cmd_info(args) -> int:
    print(
        f"repro {__version__} — reproduction of 'Low-Contention Data "
        "Structures'\n(Aspnes, Eisenstat, Yin; SPAA 2010).\n\n"
        f"Experiments registered: {len(EXPERIMENTS)} "
        f"({', '.join(EXPERIMENTS)})\n"
        "Docs: README.md (tour), DESIGN.md (system inventory), "
        "EXPERIMENTS.md (paper vs measured)."
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed for testing/completion)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Low-contention data structures: reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run experiments (ids or 'all')")
    run_p.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids, e.g. E1 E5, or 'all'",
    )
    run_p.add_argument("--full", action="store_true", help="full size ladders")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--json", help="also write results as JSON")
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (results are identical for any count)",
    )
    run_p.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk construction cache directory (default: memory-only)",
    )
    run_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-experiment timeout in seconds (worker is killed)",
    )
    run_p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a failed/timed-out experiment this many times",
    )
    run_p.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        help="base retry backoff in seconds (doubles per attempt)",
    )
    run_p.add_argument(
        "--checkpoint-dir",
        default=None,
        help="persist completed results here and resume from them "
        "on re-invocation (crash-safe multi-experiment runs)",
    )
    halting = run_p.add_mutually_exclusive_group()
    halting.add_argument(
        "--fail-fast",
        dest="keep_going",
        action="store_false",
        help="stop at the first failed experiment (default)",
    )
    halting.add_argument(
        "--keep-going",
        dest="keep_going",
        action="store_true",
        help="run remaining experiments past a failure; report all "
        "failures at the end and exit nonzero",
    )
    run_p.set_defaults(func=_cmd_run, keep_going=False)

    survey_p = sub.add_parser("survey", help="cross-scheme contention table")
    survey_p.add_argument("--n", type=int, default=512)
    survey_p.add_argument("--seed", type=int, default=0)
    survey_p.set_defaults(func=_cmd_survey)

    sub.add_parser("info", help="package and paper summary").set_defaults(
        func=_cmd_info
    )
    return parser


def main(argv=None) -> int:
    """Parse arguments and dispatch to a command; returns the exit code.

    Library failures (:class:`~repro.errors.ReproError`) become a
    one-line ``error:`` message on stderr and exit code 2 — never a
    traceback.  Programming errors still raise.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
