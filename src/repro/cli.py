"""Command-line interface: ``python -m repro <command>``.

Commands
--------

- ``list [--json]`` — show the experiment registry (E1–E23) with
  titles (``--json`` prints a machine-readable object including the
  telemetry capability descriptor).
- ``run E5 [--full] [--seed 0] [--json out.json]`` — run one experiment
  (or ``all``) and print its regenerated table.  Resilience is opt-in:
  ``--timeout``/``--retries``/``--retry-backoff`` harden individual
  experiments, ``--checkpoint-dir`` makes multi-experiment runs
  crash-safe (kill and re-invoke to resume), and
  ``--fail-fast``/``--keep-going`` pick the multi-experiment failure
  semantics.  ``--emit-telemetry DIR`` writes one bus-collected metrics
  snapshot per experiment without changing any result.
- ``survey [--n 512] [--seed 0]`` — the §1.3 contention comparison
  across all schemes on one instance.
- ``serve [--n 256] [--smoke-queries 64] [--duration 0] [--metrics]
  [--heal] [--procs N] [--dynamic]`` — boot the asyncio dictionary
  server (:mod:`repro.serve`) over a random instance, answer a seeded
  self-test workload, optionally stay up; ``--metrics`` attaches a
  telemetry hub and prints the Prometheus exposition on shutdown;
  ``--heal`` arms fault injection and enables the self-healing layer;
  ``--procs N`` serves through N real worker processes over shared
  memory (:mod:`repro.parallel`; clamped to available CPUs, and the
  metrics exposition then carries per-worker queue depths);
  ``--dynamic`` boots the *mutable* sharded service instead
  (:mod:`repro.serve.dynamic_service`): the smoke workload interleaves
  inserts with reads, checks read-your-writes, and finishes with an
  epoch-pinned multi-key read verified against ground truth;
  ``--autotune`` attaches the closed-loop control plane
  (:mod:`repro.autotune`) — capability-gated, so it composes with
  every deployment — and prints the decision-trace digest on shutdown.
  Invalid flag combinations are rejected up front with typed errors
  (exit 2).
- ``autotune run|inspect|replay`` — the control plane
  (:mod:`repro.autotune`): ``run`` drives a seeded hot-shard workload
  under the controller and writes the byte-replayable decision trace,
  ``inspect`` prints a policy's effective parameters and identity
  digest, and ``replay`` re-derives every decision of a saved trace
  and exits 1 unless the replay is byte-identical.
- ``chaos [--requests 4000] [--crashes 1] [--corruptions 1]`` — run a
  seeded randomized fault schedule (crashes, bit flips, stuck cells,
  contention spikes) against a healing-enabled service and report
  recoveries, repairs, and wrong answers (exit 1 on any wrong answer
  or quarantine violation).
- ``adversary search|replay|minimize`` — the evolutionary red team
  (:mod:`repro.adversary`): ``search`` evolves attack genomes against
  the self-healing stack and can save the best find as a JSON fixture,
  ``replay`` re-evaluates fixtures and exits 1 unless every one
  reproduces its digest byte-identically with zero wrong answers and
  zero quarantine violations, and ``minimize`` greedily shrinks a
  fixture's genome while keeping most of its fitness.
- ``loadgen [--requests 2000] [--discipline open] [--router
  least-loaded]`` — deterministic virtual-time load generation against
  a fresh service; prints throughput, latency percentiles, and
  per-replica probe loads.
- ``stats [--monitor] [--prometheus] [--json snap.json]`` — drive a
  seeded workload through an instrumented service and print the
  collected metrics; ``--monitor`` checks live per-cell counts against
  the exact Φ_t law and reports any hot-cell alarms.
- ``trace --out trace.json [--fmt chrome]`` — record the full
  request → admission → batch → route → replica → probe span tree for
  a seeded workload and write it as Chrome ``trace_event`` JSON
  (loadable in ``chrome://tracing`` / Perfetto) or raw span JSON.
- ``info [--json]`` — package, paper, and reproduction-band summary.

The CLI is a thin veneer over :mod:`repro.experiments`; everything it
prints is available programmatically.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.errors import ExperimentFailureError, ReproError
from repro.experiments import EXPERIMENTS
from repro.io.results import save_results


def _cmd_list(args) -> int:
    if args.json:
        import json

        from repro.telemetry import SNAPSHOT_VERSION, TRACE_VERSION

        print(
            json.dumps(
                {
                    "experiments": {
                        eid: title
                        for eid, (title, _) in EXPERIMENTS.items()
                    },
                    "telemetry": {
                        "events": True,
                        "tracing": True,
                        "metrics": True,
                        "monitoring": True,
                        "snapshot_version": SNAPSHOT_VERSION,
                        "trace_version": TRACE_VERSION,
                        "trace_formats": ["chrome", "json"],
                    },
                },
                indent=2,
            )
        )
        return 0
    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, (title, _) in EXPERIMENTS.items():
        print(f"{eid:<{width}}  {title}")
    return 0


def _print_results(results, json_path) -> None:
    for result in results:
        print(result.render())
        print()
    if json_path:
        save_results(results, json_path)
        print(f"wrote {json_path}")


def _cmd_run(args) -> int:
    from repro.experiments.parallel import run_experiments

    try:
        results = run_experiments(
            args.experiments,
            fast=not args.full,
            seed=args.seed,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            timeout=args.timeout,
            retries=args.retries,
            retry_backoff=args.retry_backoff,
            checkpoint_dir=args.checkpoint_dir,
            keep_going=args.keep_going,
            telemetry_dir=args.emit_telemetry,
        )
    except ExperimentFailureError as exc:
        # Keep-going runs still render everything that completed; either
        # way each failure becomes one line on stderr and a nonzero exit.
        _print_results(exc.results, args.json if exc.results else None)
        for eid, reason in exc.failures.items():
            print(f"error: {eid} failed: {reason}", file=sys.stderr)
        return 1
    _print_results(results, args.json)
    if args.emit_telemetry:
        print(f"wrote telemetry snapshots to {args.emit_telemetry}")
    return 0


def _cmd_survey(args) -> int:
    import numpy as np

    from repro.contention import measure
    from repro.experiments.common import SCHEMES, make_instance
    from repro.distributions import UniformPositiveNegative
    from repro.io import render_table

    keys, N = make_instance(args.n, args.seed)
    dist = UniformPositiveNegative(N, keys, 0.5)
    rows = []
    for name, cls in SCHEMES.items():
        d = cls(keys, N, rng=np.random.default_rng(args.seed + 1))
        rows.append(measure(d, dist).row())
    print(
        render_table(
            rows,
            columns=[
                "scheme", "space_words", "max_probes", "E[probes]",
                "max_step_phi", "ratio_step",
            ],
            title=f"Contention survey: n={args.n}, N={N}, uniform +/- queries",
        )
    )
    return 0


def _cmd_info(args) -> int:
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "package": "repro",
                    "version": __version__,
                    "paper": {
                        "title": "Low-Contention Data Structures",
                        "authors": ["Aspnes", "Eisenstat", "Yin"],
                        "venue": "SPAA 2010",
                    },
                    "experiments": list(EXPERIMENTS),
                    "docs": ["README.md", "DESIGN.md", "EXPERIMENTS.md"],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"repro {__version__} — reproduction of 'Low-Contention Data "
        "Structures'\n(Aspnes, Eisenstat, Yin; SPAA 2010).\n\n"
        f"Experiments registered: {len(EXPERIMENTS)} "
        f"({', '.join(EXPERIMENTS)})\n"
        "Docs: README.md (tour), DESIGN.md (system inventory), "
        "EXPERIMENTS.md (paper vs measured)."
    )
    return 0


def _make_service(args, armed: bool = False):
    """Shared ``serve``/``loadgen`` setup: instance + service + dist.

    ``armed`` builds the shards over armed fault injectors so chaos
    events (crash/corrupt/stick) and the healing hooks are available.
    """
    import numpy as np

    from repro.distributions import ZipfDistribution
    from repro.experiments.common import make_instance, uniform_distribution
    from repro.serve import build_service

    faults = None
    if armed:
        from repro.faults import FaultConfig

        faults = FaultConfig(armed=True)
    keys, N = make_instance(args.n, args.seed)
    service = build_service(
        keys,
        N,
        num_shards=args.shards,
        replicas=args.replicas,
        scheme=args.scheme,
        router=args.router,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        capacity=args.capacity,
        probe_time=args.probe_time,
        faults=faults,
        seed=args.seed + 1,
    )
    if args.workload == "zipf":
        rng = np.random.default_rng(args.seed + 2)
        candidates = np.unique(
            np.concatenate([keys, rng.integers(0, N, size=args.n)])
        )
        dist = ZipfDistribution(
            N, candidates, exponent=args.zipf_exponent,
            shuffle_ranks=args.seed + 3,
        )
    else:
        dist = uniform_distribution(keys, N)
    return keys, N, service, dist


def _validate_serve_flags(args) -> None:
    """Reject invalid ``serve`` flag combinations before construction.

    Every conflict surfaces here as a typed
    :class:`~repro.errors.ParameterError` (exit 2 via ``main``) instead
    of failing deep inside service construction.  ``--autotune``
    composes with every deployment: the controller is capability-gated,
    so the fabric and the dynamic service simply expose admission
    tuning only.
    """
    from repro.errors import ParameterError

    if args.procs and args.heal:
        raise ParameterError(
            "--heal runs in-process only; the fabric (--procs) recovers "
            "crashed workers by failover and respawn instead"
        )
    if args.dynamic and args.procs:
        raise ParameterError(
            "--dynamic serves in-process; --procs applies to the static "
            "fabric only"
        )
    if args.dynamic and args.heal:
        raise ParameterError(
            "--dynamic replicas recover by lockstep log replay; --heal "
            "applies to the static service only"
        )
    if args.procs < 0:
        raise ParameterError(
            f"--procs must be >= 0, got {args.procs}"
        )
    if getattr(args, "checkpoint_dir", None) and not args.dynamic:
        raise ParameterError(
            "--checkpoint-dir persists the mutable stack; it requires "
            "--dynamic (the static service is rebuilt from its keys)"
        )
    if getattr(args, "log_retention", None) is not None and not args.dynamic:
        raise ParameterError(
            "--log-retention bounds the dynamic replay log; it requires "
            "--dynamic"
        )


def _autotune_summary(controller) -> str:
    """One-line controller summary for the serve paths."""
    return (
        f"autotune: {controller.applied} action(s) applied, "
        f"{controller.skipped} skipped, "
        f"{controller.executor.reconfig_probes} reconfig probes, "
        f"trace digest {controller.trace_digest()[:16]}"
    )


def _cmd_serve_procs(args) -> int:
    """The ``serve --procs N`` path: real worker processes, shared memory.

    Clamps ``--procs`` to the host's CPU count (one-line stderr
    warning), boots the :mod:`repro.parallel` fabric, answers the
    seeded smoke workload through it, and (with ``--metrics``) prints
    the Prometheus exposition including per-worker queue depths.
    """
    import os
    import time

    import numpy as np

    from repro.experiments.common import make_instance
    from repro.parallel import build_parallel_service

    procs = int(args.procs)
    cpus = os.cpu_count() or 1
    if procs > cpus:
        print(
            f"warning: --procs {procs} exceeds the {cpus} available "
            f"CPU(s); clamping to {cpus}",
            file=sys.stderr,
        )
        procs = cpus
    keys, N = make_instance(args.n, args.seed)
    service = build_parallel_service(
        keys,
        N,
        procs=procs,
        num_shards=args.shards,
        replicas=args.replicas,
        scheme=args.scheme,
        router=args.router,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        capacity=args.capacity,
        seed=args.seed + 1,
    )
    controller = (
        service.enable_autotune(seed=args.seed + 6)
        if getattr(args, "autotune", False) else None
    )
    try:
        print(
            f"serving n={args.n} keys over universe [0, {N}) — "
            f"{args.shards} shard(s) x {args.replicas} replicas, "
            f"router={args.router}, {procs} worker process(es)"
            + (", metrics on" if args.metrics else "")
            + (", autotune on" if controller is not None else "")
        )
        exit_code = 0
        if args.smoke_queries:
            rng = np.random.default_rng(args.seed + 4)
            xs = np.concatenate([
                rng.choice(keys, size=args.smoke_queries // 2, replace=True),
                rng.integers(
                    0, N,
                    size=args.smoke_queries - args.smoke_queries // 2,
                ),
            ]).astype(np.int64)
            answers = service.query_batch(xs)
            wrong = int(np.sum(answers != np.isin(xs, keys)))
            print(
                f"smoke: {xs.size} queries answered, {wrong} wrong, "
                f"{service.fabric_stats.groups} groups, "
                f"{service.stats.probes} probes, "
                f"queue depths {service.queue_depths()}"
            )
            if wrong:
                exit_code = 1
        if args.duration > 0:
            print(f"serving for {args.duration}s (ctrl-c to stop)")
            try:
                time.sleep(args.duration)
            except KeyboardInterrupt:
                pass
        if args.metrics:
            from repro.telemetry import MetricsRegistry

            registry = MetricsRegistry()
            service.export_metrics(registry)
            print(registry.to_prometheus(), end="")
        if controller is not None:
            print(_autotune_summary(controller))
    finally:
        service.close()
    return exit_code


def _cmd_serve_dynamic(args) -> int:
    """The ``serve --dynamic`` path: the mutable sharded service.

    Starts empty, streams the instance's keys in as micro-batched
    inserts interleaved with majority-voted reads, checks
    read-your-writes along the way, and finishes with an epoch-pinned
    multi-key read verified against the tracked reference set.

    With ``--checkpoint-dir`` the service becomes crash-restartable:
    if the directory holds a usable generation the service *recovers*
    from it (corrupt files are quarantined, not fatal) instead of
    starting empty, checkpoints periodically in virtual time when
    ``--checkpoint-every`` is set, and always writes a final
    generation on shutdown.
    """
    import time

    import numpy as np

    from repro.errors import CheckpointError, OverloadError, UpdateBacklogError
    from repro.experiments.common import make_instance
    from repro.serve import build_dynamic_service

    keys, N = make_instance(args.n, args.seed)
    store = None
    service = None
    if args.checkpoint_dir:
        from repro.persist import CheckpointStore, restore_dynamic_service

        store = CheckpointStore(args.checkpoint_dir)
        if store.latest_generation() > 0:
            try:
                service, report = restore_dynamic_service(
                    args.checkpoint_dir
                )
            except CheckpointError as exc:
                print(
                    f"recovery: no usable generation ({exc}); "
                    f"starting empty",
                    file=sys.stderr,
                )
            else:
                print(
                    f"recovered generation "
                    f"{max(s['generation'] for s in report['shards'])}: "
                    f"{report['replayed']} updates replayed, "
                    f"{report['quarantined']} corrupt file(s) quarantined, "
                    f"sources {[s['source'] for s in report['shards']]}"
                )
    if service is None:
        service = build_dynamic_service(
            N,
            num_shards=args.shards,
            replicas=args.replicas,
            max_batch=args.max_batch,
            max_delay=args.max_delay,
            capacity=args.capacity,
            log_retention=args.log_retention,
            seed=args.seed + 1,
        )
    if store is not None:
        service.attach_checkpoints(
            store,
            every=args.checkpoint_every if args.checkpoint_every > 0
            else None,
        )
    controller = (
        service.enable_autotune(seed=args.seed + 6)
        if getattr(args, "autotune", False) else None
    )
    print(
        f"serving (dynamic) universe [0, {N}) — "
        f"{args.shards} shard(s) x {args.replicas} lockstep replicas"
        + (", metrics on" if args.metrics else "")
        + (", autotune on" if controller is not None else "")
    )
    exit_code = 0
    now = 0.0
    if args.smoke_queries:
        rng = np.random.default_rng(args.seed + 4)
        ref: set[int] = set()
        ryw_wrong = 0
        ryw_checked = 0
        for i in range(args.smoke_queries):
            now += 1.0
            k = int(keys[i % keys.size])
            try:
                service.submit_update(k, True, now)
                ref.add(k)
            except UpdateBacklogError:
                pass
            try:
                ticket = service.submit(int(rng.integers(0, N)), now)
            except OverloadError:
                ticket = None
            service.advance(now)
            if ticket is not None and ticket.done:
                ryw_checked += 1
                if ticket.answer != (ticket.key in ref):
                    ryw_wrong += 1
        service.drain(now + 1.0)
        sample = rng.integers(0, N, size=max(args.smoke_queries, 1))
        answers, epochs = service.read_pinned(sample, now + 2.0)
        truth = np.isin(
            sample,
            np.fromiter(ref, dtype=np.int64, count=len(ref))
            if ref else np.empty(0, dtype=np.int64),
        )
        wrong = int(np.sum(answers != truth)) + ryw_wrong
        row = service.stats_row()
        print(
            f"smoke: {row['completed']} reads "
            f"({ryw_checked} read-your-writes checks), "
            f"{row['updates_applied']} updates in "
            f"{row['update_groups']} groups, "
            f"epochs {service.epochs_by_shard()}, "
            f"pinned read of {sample.size} keys @ epochs {epochs}, "
            f"{wrong} wrong"
        )
        if wrong:
            exit_code = 1
    if args.duration > 0:
        print(f"serving for {args.duration}s (ctrl-c to stop)")
        try:
            time.sleep(args.duration)
        except KeyboardInterrupt:
            pass
    if args.metrics:
        row = service.stats_row()
        print(
            f"metrics: {row['completed']} completed, "
            f"{row['batches']} batches, {row['probes']} probes, "
            f"{row['shed_reads']} reads shed, "
            f"{row['shed_updates']} updates shed"
        )
    if store is not None:
        generation = service.checkpoint(now + 3.0)
        print(
            f"checkpoint: wrote generation {generation} to "
            f"{args.checkpoint_dir} "
            f"({service.update_log_entries()} log entries retained, "
            f"{service.stats_compactions} compaction(s))"
        )
    if controller is not None:
        print(_autotune_summary(controller))
    return exit_code


def _cmd_serve(args) -> int:
    import asyncio

    import numpy as np

    from repro.serve import AsyncDictionaryServer

    _validate_serve_flags(args)
    if args.dynamic:
        return _cmd_serve_dynamic(args)
    if args.procs:
        return _cmd_serve_procs(args)
    keys, N, service, dist = _make_service(args, armed=args.heal)
    if args.metrics:
        from repro.telemetry import TelemetryHub

        service.attach_telemetry(TelemetryHub(metrics=True))
    manager = service.enable_healing(seed=args.seed + 5) if args.heal else None
    controller = (
        service.enable_autotune(seed=args.seed + 6)
        if getattr(args, "autotune", False) else None
    )

    async def session() -> int:
        async with AsyncDictionaryServer(service) as server:
            print(
                f"serving n={args.n} keys over universe [0, {N}) — "
                f"{args.shards} shard(s) x {args.replicas} replicas, "
                f"router={args.router}"
                + (", metrics on" if args.metrics else "")
                + (", healing on" if manager is not None else "")
                + (", autotune on" if controller is not None else "")
            )
            if args.smoke_queries:
                rng = np.random.default_rng(args.seed + 4)
                xs = dist.sample(rng, args.smoke_queries)
                answers = await server.query_many(xs)
                sorted_keys = np.sort(keys)
                idx = np.clip(
                    np.searchsorted(sorted_keys, xs), 0, keys.size - 1
                )
                truth = sorted_keys[idx] == xs
                wrong = int(np.sum(np.asarray(answers) != truth))
                print(
                    f"smoke: {len(answers)} queries answered, "
                    f"{wrong} wrong, {service.stats.batches} batches, "
                    f"{service.stats.probes} probes"
                )
                if wrong:
                    return 1
            if args.duration > 0:
                print(f"serving for {args.duration}s (ctrl-c to stop)")
                try:
                    await asyncio.sleep(args.duration)
                except (KeyboardInterrupt, asyncio.CancelledError):
                    pass
            if args.metrics:
                snap = server.metrics_snapshot()
                print(
                    f"metrics: {snap['server']['completed']} completed, "
                    f"{snap['server']['batches']} batches, "
                    f"{snap['server']['probes']} probes"
                )
                text = server.metrics_text()
                if text:
                    print(text, end="")
            if manager is not None:
                row = manager.row()
                print(
                    f"healing: {row['recoveries']} recoveries, "
                    f"{row['quarantines']} quarantines, "
                    f"{row['cells_repaired']} cells repaired, "
                    f"{row['violations']} violations"
                )
            if controller is not None:
                print(_autotune_summary(controller))
        return 0

    return asyncio.run(session())


def _load_autotune_policy(path):
    """An :class:`~repro.autotune.AutotunePolicy` from JSON (or defaults)."""
    import json

    from repro.autotune import AutotunePolicy

    if not path:
        return AutotunePolicy()
    with open(path) as fh:
        return AutotunePolicy.from_dict(json.load(fh))


def _cmd_autotune_inspect(args) -> int:
    """Print a policy's effective parameters and identity digest."""
    import json

    policy = _load_autotune_policy(args.policy)
    if args.json:
        print(json.dumps(policy.to_dict(), indent=2, sort_keys=True))
    else:
        for key, value in sorted(policy.to_dict().items()):
            print(f"{key:>22} = {value}")
    print(f"policy digest: {policy.digest()}")
    return 0


def _cmd_autotune_run(args) -> int:
    """Drive a seeded hot-shard workload under the controller.

    Boots a static sharded service, skews the query stream onto shard
    0, lets the controller adapt, and writes the byte-replayable
    decision trace (``--out``) for ``repro autotune replay``.
    """
    import json

    import numpy as np

    from repro.experiments.common import make_instance
    from repro.serve.service import build_service
    from repro.utils.rng import as_generator

    policy = _load_autotune_policy(args.policy)
    keys, N = make_instance(args.n, args.seed)
    service = build_service(
        keys, N,
        num_shards=args.shards,
        replicas=args.replicas,
        probe_time=0.02,
        max_batch=8,
        max_delay=0.5,
        capacity=args.capacity,
        seed=args.seed + 1,
    )
    controller = service.enable_autotune(
        policy=policy, seed=args.seed + 2
    )
    rng = as_generator(args.seed + 3)
    hot_span = max(1, N // args.shards)
    now = 0.0
    wrong = 0
    tickets = []
    for _ in range(args.requests):
        now += 1.0 / args.rate
        service.advance(now)
        if rng.random() < args.hot_fraction:
            x = int(rng.integers(0, hot_span))
        else:
            x = int(rng.integers(0, N))
        try:
            tickets.append((x, service.submit(x, now)))
        except ReproError:
            pass
    service.drain(now + 16.0)
    for x, ticket in tickets:
        if ticket.done and ticket.answer != bool(np.isin(x, keys)):
            wrong += 1
    print(
        f"ran {args.requests} requests at rate {args.rate} "
        f"({args.hot_fraction:.0%} on shard 0's range): "
        f"replicas {[s.replicas for s in service.shards]}, "
        f"{wrong} wrong answers"
    )
    print(_autotune_summary(controller))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(controller.trace_payload(), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 1 if wrong else 0


def _cmd_autotune_replay(args) -> int:
    """Re-derive a trace's decisions; exit 1 unless byte-identical."""
    import json

    from repro.autotune import replay_trace

    with open(args.trace) as fh:
        payload = json.load(fh)
    report = replay_trace(payload)
    status = "match" if report["match"] else "MISMATCH"
    print(
        f"{args.trace}: {report['entries']} entries, "
        f"digest {report['digest'][:16]} — {status}"
    )
    if report["mismatches"]:
        print(f"mismatched entries: {report['mismatches']}")
    return 0 if report["match"] else 1


def _cmd_checkpoint_save(args) -> int:
    """Seeded workload → one durable generation (CI/demo entry point)."""
    import numpy as np

    from repro.persist import CheckpointStore
    from repro.serve import build_dynamic_service

    service = build_dynamic_service(
        args.n,
        num_shards=args.shards,
        replicas=args.replicas,
        log_retention=args.log_retention,
        seed=args.seed + 1,
    )
    store = CheckpointStore(args.dir)
    service.attach_checkpoints(store)
    rng = np.random.default_rng(args.seed + 4)
    now = 0.0
    for k in rng.choice(args.n, size=args.updates, replace=True):
        service.submit_update(int(k), bool(rng.random() >= 0.25), now)
        now += 1.0
        service.advance(now)
    service.drain(now + 1.0)
    generation = service.checkpoint(now + 2.0)
    print(
        f"wrote generation {generation} ({args.shards} shard file(s)) "
        f"to {args.dir}: epochs {service.epochs_by_shard()}, "
        f"{service.update_log_entries()} log entries retained, "
        f"{service.stats_compactions} compaction(s)"
    )
    return 0


def _cmd_checkpoint_inspect(args) -> int:
    """Verify + summarize checkpoint files without restoring them.

    ``path`` may be one ``.ckpt`` file or a checkpoint directory (every
    generation is inspected).  Corrupt files are reported and count
    toward a nonzero exit, but inspection never renames or repairs —
    quarantine is recovery's job.
    """
    import json
    import os

    from repro.errors import CheckpointCorruptError
    from repro.persist import CheckpointStore

    if os.path.isdir(args.path):
        store = CheckpointStore(args.path)
        targets = [p for (_s, _g, p) in store.generations()]
        if not targets:
            print(f"{args.path}: no checkpoint files")
            return 1
    else:
        store = CheckpointStore(os.path.dirname(args.path) or ".")
        targets = [args.path]
    rows, corrupt = [], 0
    for path in targets:
        try:
            rows.append(store.inspect(path))
        except CheckpointCorruptError as exc:
            corrupt += 1
            rows.append({"path": exc.path, "corrupt": exc.reason})
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        for row in rows:
            if "corrupt" in row:
                print(f"{row['path']}: CORRUPT — {row['corrupt']}")
            else:
                print(
                    f"{row['path']}: shard {row['shard']} "
                    f"gen {row['generation']} epoch {row['epoch']} — "
                    f"{row['live_keys']} live keys, "
                    f"{row['update_count']} updates "
                    f"({row['suffix_entries']} in the retained suffix)"
                )
    return 1 if corrupt else 0


def _cmd_checkpoint_restore(args) -> int:
    """Recover a service from a checkpoint directory and smoke-read it.

    Walks the full fallback chain (newest generation → verify →
    quarantine → older generation → log replay), prints the per-shard
    recovery report, and answers a seeded smoke batch through the
    restored service.  Exit 2 (typed error) only when *no* shard has
    any usable generation.
    """
    import numpy as np

    from repro.persist import restore_dynamic_service

    service, report = restore_dynamic_service(
        args.dir, verify=not args.no_verify
    )
    for shard in report["shards"]:
        print(
            f"shard {shard['shard']}: {shard['source']} "
            f"(generation {shard['generation']}), "
            f"{shard['replayed']} updates replayed, "
            f"{shard['quarantined']} file(s) quarantined"
        )
    print(
        f"recovery: {report['replayed']} replayed, "
        f"{report['quarantined']} quarantined, "
        f"{report['recovery_probes']} verification probes "
        f"(charged to recovery counters)"
    )
    for path, reason in report["quarantine_log"]:
        print(f"quarantined {path}: {reason}", file=sys.stderr)
    rng = np.random.default_rng(args.seed + 4)
    now = float(service.update_log_entries()) + 1.0
    sample = rng.integers(0, service.universe_size, size=64)
    answers, epochs = service.read_pinned(sample, now)
    print(
        f"smoke: pinned read of {sample.size} keys @ epochs {epochs}, "
        f"{int(answers.sum())} present"
    )
    return 0


def _cmd_loadgen(args) -> int:
    from repro.io import render_table
    from repro.serve import run_loadgen

    keys, N, service, dist = _make_service(args)
    report = run_loadgen(
        service,
        dist,
        args.requests,
        discipline=args.discipline,
        rate=args.rate,
        clients=args.clients,
        think_time=args.think_time,
        seed=args.seed + 4,
        expected_keys=keys,
    )
    print(
        render_table(
            [report.row()],
            title=(
                f"loadgen: {args.discipline} loop, {args.workload} "
                f"workload, router={args.router}, n={args.n}"
            ),
        )
    )
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report.row(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 1 if report.wrong_answers else 0


def _cmd_stats(args) -> int:
    from repro.io import render_table
    from repro.serve import run_loadgen
    from repro.telemetry import ContentionMonitor, TelemetryHub

    keys, N, service, dist = _make_service(args)
    monitor = None
    if args.monitor:
        from repro.contention import exact_contention

        if args.shards != 1:
            print(
                "error: --monitor needs --shards 1 (one exact Phi_t "
                "prediction per monitored table)",
                file=sys.stderr,
            )
            return 2
        monitor = ContentionMonitor(
            exact_contention(service.shards[0], dist).phi,
            sigma_threshold=args.sigma,
        )
    hub = TelemetryHub(
        metrics=True, contention=monitor, check_every=args.check_every
    )
    service.attach_telemetry(hub)
    report = run_loadgen(
        service,
        dist,
        args.requests,
        discipline=args.discipline,
        rate=args.rate,
        clients=args.clients,
        think_time=args.think_time,
        seed=args.seed + 4,
        expected_keys=keys,
    )
    print(
        render_table(
            hub.metrics.rows(),
            title=(
                f"stats: {report.completed} requests, {args.workload} "
                f"workload, router={args.router}, n={args.n}"
            ),
        )
    )
    if monitor is not None:
        print(
            f"monitor: {monitor.checks} checks of "
            f"{monitor.cells_tested} cells, "
            f"{len(monitor.alarms)} alarm(s)"
        )
        for alarm in monitor.alarms[:10]:
            print(f"  {alarm.row()}")
        if len(monitor.alarms) > 10:
            print(f"  ... and {len(monitor.alarms) - 10} more")
    if args.prometheus:
        print(hub.metrics.to_prometheus(), end="")
    if args.json:
        from repro.io.results import save_snapshot

        save_snapshot(hub.snapshot(), args.json)
        print(f"wrote {args.json}")
    return 1 if report.wrong_answers else 0


def _cmd_chaos(args) -> int:
    from repro.errors import ParameterError
    from repro.serve import ChaosSchedule, run_chaos
    from repro.serve.chaos import require_armed
    from repro.utils.validation import check_positive_integer

    # Validate before the horizon division so a bad --rate/--requests
    # becomes a runner-style exit 2, not a raw ZeroDivisionError.
    requests = check_positive_integer("requests", args.requests)
    if not args.rate > 0:
        raise ParameterError(f"rate must be positive, got {args.rate}")
    keys, N, service, dist = _make_service(args, armed=True)
    require_armed(service)
    manager = service.enable_healing(seed=args.seed + 5)
    horizon = requests / args.rate
    d = service.shards[0]
    schedule = ChaosSchedule.generate(
        args.seed + 6,
        horizon,
        args.replicas,
        d.inner_rows * d.table.s,
        crashes=args.crashes,
        corruptions=args.corruptions,
        stuck=args.stuck,
        spikes=args.spikes,
    )
    report = run_chaos(
        service,
        dist,
        schedule,
        requests,
        args.rate,
        seed=args.seed + 4,
        expected_keys=keys,
    )
    heal = manager.row()
    mttr = manager.mttr_values()
    print(
        f"chaos: {report.completed}/{report.requested} completed, "
        f"{report.shed} shed ({report.degraded_shed} degraded), "
        f"{report.wrong_answers} wrong answers"
    )
    print(
        f"faults: {report.events_applied} events injected "
        f"({args.crashes} crash, {args.corruptions} corrupt, "
        f"{args.stuck} stuck, {args.spikes} spike)"
    )
    print(
        f"healing: {heal['recoveries']} recoveries "
        f"(max MTTR {max(mttr):.2f})" if mttr
        else "healing: 0 recoveries",
    )
    print(
        f"repairs: {heal['cells_repaired']} cells repaired, "
        f"{heal['stuck_cells']} stuck, {heal['rows_rebuilt']} rows "
        f"rebuilt, {heal['canary_queries']} canary queries, "
        f"{heal['violations']} quarantine violations"
    )
    states = " ".join(
        f"{k}={v}" for k, v in sorted(report.final_states.items())
    )
    print(f"states: {states}")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report.row(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 1 if report.wrong_answers or heal["violations"] else 0


def _adversary_config(args):
    """Build the :class:`~repro.adversary.EvalConfig` from CLI flags."""
    from repro.adversary import EvalConfig

    return EvalConfig(
        n=args.n,
        replicas=args.replicas,
        requests=args.requests,
        procs=args.procs,
    )


def _cmd_adversary_search(args) -> int:
    from repro.adversary import minimize, save_fixture, search

    config = _adversary_config(args)
    result = search(
        config,
        args.seed,
        generations=args.generations,
        population=args.population,
        elites=args.elites,
    )
    for entry in result.history:
        print(
            f"gen {entry['generation']}: best {entry['best_fitness']:.4f} "
            f"mean {entry['mean_fitness']:.4f} "
            f"({entry['evaluated']} evaluated)"
        )
    verdict = "BEAT" if result.beat_baseline else "did NOT beat"
    print(
        f"best fitness {result.best.fitness:.4f} {verdict} baseline "
        f"{result.baseline.fitness:.4f} "
        f"({result.evaluations} distinct genomes evaluated)"
    )
    metrics = result.best.metrics
    print(
        f"best genome: {len(result.best_genome.events)} events, "
        f"family={result.best_genome.family}, "
        f"rate={result.best_genome.rate:.1f}; "
        f"wrong={metrics.get('wrong_answers')}, "
        f"violations={metrics.get('violations')}, "
        f"shed={metrics.get('shed')}, "
        f"quarantined={metrics.get('quarantined')}"
    )
    if args.out:
        genome, evaluation = result.best_genome, result.best
        if args.minimize:
            genome, evaluation = minimize(genome, config, args.seed)
            print(
                f"minimized to {len(genome.events)} events at fitness "
                f"{evaluation.fitness:.4f}"
            )
        save_fixture(args.out, genome, config, args.seed, evaluation)
        print(f"wrote {args.out}")
    return 0 if result.beat_baseline else 1


def _adversary_fixture_args(args) -> list:
    """Resolve the ``fixtures``/``--dir`` operands into a path list."""
    from repro.adversary import fixture_paths
    from repro.errors import ParameterError

    paths = list(args.fixtures)
    if args.dir:
        paths.extend(fixture_paths(args.dir))
    if not paths:
        raise ParameterError(
            "no fixtures: pass paths and/or --dir with *.json files"
        )
    return paths


def _cmd_adversary_replay(args) -> int:
    from repro.adversary import replay_fixture

    failed = 0
    for path in _adversary_fixture_args(args):
        verdict = replay_fixture(path)
        status = "ok" if verdict["passed"] else "FAIL"
        print(
            f"{status}: {verdict['fixture']} "
            f"fitness {verdict['fitness']:.4f} "
            f"(stored {verdict['stored_fitness']:.4f}) "
            f"digest_match={verdict['digest_match']} "
            f"wrong_ok={verdict['no_wrong_answers']} "
            f"violations_ok={verdict['no_violations']}"
        )
        failed += 0 if verdict["passed"] else 1
    if failed:
        print(f"error: {failed} fixture(s) failed replay", file=sys.stderr)
        return 1
    return 0


def _cmd_adversary_minimize(args) -> int:
    from repro.adversary import evaluate, load_fixture, minimize, save_fixture

    fx = load_fixture(args.fixture)
    original = evaluate(fx["genome"], fx["config"], fx["seed"])
    genome, evaluation = minimize(
        fx["genome"], fx["config"], fx["seed"],
        keep_fraction=args.keep_fraction,
    )
    print(
        f"{len(fx['genome'].events)} events @ fitness "
        f"{original.fitness:.4f} -> {len(genome.events)} events @ "
        f"{evaluation.fitness:.4f}"
    )
    out = args.out or args.fixture
    save_fixture(out, genome, fx["config"], fx["seed"], evaluation)
    print(f"wrote {out}")
    return 0


def _cmd_trace(args) -> int:
    from repro.serve import run_loadgen
    from repro.telemetry import TelemetryHub

    keys, N, service, dist = _make_service(args)
    hub = TelemetryHub(metrics=True, tracing=True)
    service.attach_telemetry(hub)
    run_loadgen(
        service,
        dist,
        args.requests,
        discipline=args.discipline,
        rate=args.rate,
        clients=args.clients,
        think_time=args.think_time,
        seed=args.seed + 4,
        expected_keys=keys,
    )
    tracer = hub.tracer
    path = tracer.save(args.out, fmt=args.fmt)
    print(
        f"recorded {len(tracer.spans)} spans "
        f"({len(tracer.roots())} requests"
        + (f", {tracer.dropped} dropped" if tracer.dropped else "")
        + f") -> {path} [{args.fmt}]"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed for testing/completion)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Low-contention data structures: reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list experiments")
    list_p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    list_p.set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run experiments (ids or 'all')")
    run_p.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids, e.g. E1 E5, or 'all'",
    )
    run_p.add_argument("--full", action="store_true", help="full size ladders")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--json", help="also write results as JSON")
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (results are identical for any count)",
    )
    run_p.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk construction cache directory (default: memory-only)",
    )
    run_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-experiment timeout in seconds (worker is killed)",
    )
    run_p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a failed/timed-out experiment this many times",
    )
    run_p.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        help="base retry backoff in seconds (doubles per attempt)",
    )
    run_p.add_argument(
        "--checkpoint-dir",
        default=None,
        help="persist completed results here and resume from them "
        "on re-invocation (crash-safe multi-experiment runs)",
    )
    run_p.add_argument(
        "--emit-telemetry",
        default=None,
        metavar="DIR",
        help="write one bus-collected metrics snapshot per experiment "
        "into DIR (results are unchanged)",
    )
    halting = run_p.add_mutually_exclusive_group()
    halting.add_argument(
        "--fail-fast",
        dest="keep_going",
        action="store_false",
        help="stop at the first failed experiment (default)",
    )
    halting.add_argument(
        "--keep-going",
        dest="keep_going",
        action="store_true",
        help="run remaining experiments past a failure; report all "
        "failures at the end and exit nonzero",
    )
    run_p.set_defaults(func=_cmd_run, keep_going=False)

    survey_p = sub.add_parser("survey", help="cross-scheme contention table")
    survey_p.add_argument("--n", type=int, default=512)
    survey_p.add_argument("--seed", type=int, default=0)
    survey_p.set_defaults(func=_cmd_survey)

    def add_service_options(p) -> None:
        from repro.experiments.common import SCHEMES
        from repro.serve import ROUTERS

        p.add_argument("--n", type=int, default=256, help="keys in the instance")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--shards", type=int, default=1)
        p.add_argument("--replicas", type=int, default=3)
        p.add_argument(
            "--scheme", default="low-contention", choices=sorted(SCHEMES)
        )
        p.add_argument(
            "--router", default="least-loaded", choices=list(ROUTERS)
        )
        p.add_argument("--max-batch", type=int, default=32)
        p.add_argument(
            "--max-delay",
            type=float,
            default=0.25,
            help="batch flush deadline (seconds / virtual time units)",
        )
        p.add_argument("--capacity", type=int, default=1024)
        p.add_argument(
            "--probe-time",
            type=float,
            default=0.0,
            help="virtual replica service time per probe (loadgen only)",
        )
        p.add_argument(
            "--workload", default="uniform", choices=("uniform", "zipf")
        )
        p.add_argument("--zipf-exponent", type=float, default=1.1)

    serve_p = sub.add_parser(
        "serve", help="boot the asyncio dictionary server"
    )
    add_service_options(serve_p)
    serve_p.add_argument(
        "--smoke-queries",
        type=int,
        default=64,
        help="seeded self-test queries to answer on boot (0 = none)",
    )
    serve_p.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="stay up this many seconds after the smoke test",
    )
    serve_p.add_argument(
        "--metrics",
        action="store_true",
        help="attach a telemetry hub; print the Prometheus exposition "
        "on shutdown",
    )
    serve_p.add_argument(
        "--heal",
        action="store_true",
        help="arm fault injection and enable the self-healing layer "
        "(health state machines, scrubbing, rebuild)",
    )
    serve_p.add_argument(
        "--procs",
        type=int,
        default=0,
        help="serve through N real worker processes over shared memory "
        "(0 = in-process asyncio server; clamped to available CPUs)",
    )
    serve_p.add_argument(
        "--dynamic",
        action="store_true",
        help="boot the mutable sharded service (lockstep replicated "
        "dynamic dictionaries with a micro-batched write path, "
        "read-your-writes, and epoch-pinned reads)",
    )
    serve_p.add_argument(
        "--autotune",
        action="store_true",
        help="attach the closed-loop control plane (replication "
        "split/join, scheme switching, admission tuning — "
        "capability-gated per deployment); prints the decision-trace "
        "digest on shutdown",
    )
    serve_p.add_argument(
        "--checkpoint-dir",
        help="(requires --dynamic) durable checkpoint directory: "
        "recover from the newest usable generation on boot, write a "
        "final generation on shutdown",
    )
    serve_p.add_argument(
        "--checkpoint-every",
        type=float,
        default=0.0,
        help="also checkpoint every this many virtual seconds while "
        "serving (0 = final checkpoint only)",
    )
    serve_p.add_argument(
        "--log-retention",
        type=int,
        default=None,
        help="(requires --dynamic) compact the replay log whenever the "
        "retained entries reach this bound (default: grow forever)",
    )
    serve_p.set_defaults(func=_cmd_serve)

    loadgen_p = sub.add_parser(
        "loadgen", help="deterministic load generation against a service"
    )
    add_service_options(loadgen_p)
    loadgen_p.add_argument("--requests", type=int, default=2000)
    loadgen_p.add_argument(
        "--discipline", default="open", choices=("open", "closed")
    )
    loadgen_p.add_argument(
        "--rate", type=float, default=64.0, help="open-loop arrival rate"
    )
    loadgen_p.add_argument(
        "--clients", type=int, default=16, help="closed-loop population"
    )
    loadgen_p.add_argument("--think-time", type=float, default=0.0)
    loadgen_p.add_argument("--json", help="also write the report as JSON")
    loadgen_p.set_defaults(func=_cmd_loadgen)

    def add_loadgen_options(p) -> None:
        p.add_argument("--requests", type=int, default=2000)
        p.add_argument(
            "--discipline", default="open", choices=("open", "closed")
        )
        p.add_argument(
            "--rate", type=float, default=64.0, help="open-loop arrival rate"
        )
        p.add_argument(
            "--clients", type=int, default=16, help="closed-loop population"
        )
        p.add_argument("--think-time", type=float, default=0.0)

    stats_p = sub.add_parser(
        "stats", help="collected metrics for a seeded workload"
    )
    add_service_options(stats_p)
    add_loadgen_options(stats_p)
    stats_p.add_argument(
        "--monitor",
        action="store_true",
        help="check live per-cell counts against the exact Phi_t law "
        "(needs --shards 1)",
    )
    stats_p.add_argument(
        "--check-every",
        type=int,
        default=8,
        help="monitor check cadence in completed batches",
    )
    stats_p.add_argument(
        "--sigma",
        type=float,
        default=3.0,
        help="monitor base threshold before the max-of-Gaussians "
        "correction",
    )
    stats_p.add_argument(
        "--prometheus",
        action="store_true",
        help="also print the Prometheus text exposition",
    )
    stats_p.add_argument(
        "--json", help="also write the versioned telemetry snapshot here"
    )
    stats_p.set_defaults(func=_cmd_stats)

    chaos_p = sub.add_parser(
        "chaos",
        help="run a seeded chaos schedule against a self-healing service",
    )
    add_service_options(chaos_p)
    chaos_p.add_argument("--requests", type=int, default=4000)
    chaos_p.add_argument(
        "--rate", type=float, default=64.0, help="open-loop arrival rate"
    )
    chaos_p.add_argument("--crashes", type=int, default=1)
    chaos_p.add_argument("--corruptions", type=int, default=1)
    chaos_p.add_argument("--stuck", type=int, default=0)
    chaos_p.add_argument("--spikes", type=int, default=1)
    chaos_p.add_argument("--json", help="also write the report as JSON")
    # Five replicas keep a strict read majority with two damaged.
    chaos_p.set_defaults(func=_cmd_chaos, replicas=5, router="random")

    autotune_p = sub.add_parser(
        "autotune",
        help="closed-loop control plane: run, inspect, and replay traces",
    )
    autotune_sub = autotune_p.add_subparsers(
        dest="autotune_command", required=True
    )

    at_run_p = autotune_sub.add_parser(
        "run",
        help="drive a seeded hot-shard workload under the controller "
        "and write its byte-replayable decision trace",
    )
    at_run_p.add_argument("--seed", type=int, default=0)
    at_run_p.add_argument(
        "--n", type=int, default=192, help="keys in the instance"
    )
    at_run_p.add_argument("--shards", type=int, default=4)
    at_run_p.add_argument("--replicas", type=int, default=2)
    at_run_p.add_argument("--capacity", type=int, default=256)
    at_run_p.add_argument("--requests", type=int, default=2000)
    at_run_p.add_argument(
        "--rate", type=float, default=48.0, help="open-loop arrival rate"
    )
    at_run_p.add_argument(
        "--hot-fraction", type=float, default=0.8,
        help="fraction of queries aimed at shard 0's keyspace range",
    )
    at_run_p.add_argument(
        "--policy", help="policy JSON file (default: AutotunePolicy())"
    )
    at_run_p.add_argument("--out", help="write the decision trace here")
    at_run_p.set_defaults(func=_cmd_autotune_run)

    at_inspect_p = autotune_sub.add_parser(
        "inspect", help="print a policy's parameters and identity digest"
    )
    at_inspect_p.add_argument(
        "--policy", help="policy JSON file (default: AutotunePolicy())"
    )
    at_inspect_p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    at_inspect_p.set_defaults(func=_cmd_autotune_inspect)

    at_replay_p = autotune_sub.add_parser(
        "replay",
        help="re-derive a saved trace's decisions; exit 1 unless the "
        "replay is byte-identical",
    )
    at_replay_p.add_argument("trace", help="trace JSON path")
    at_replay_p.set_defaults(func=_cmd_autotune_replay)

    checkpoint_p = sub.add_parser(
        "checkpoint",
        help="durable checkpoints: save, inspect, and restore the "
        "dynamic stack",
    )
    checkpoint_sub = checkpoint_p.add_subparsers(
        dest="checkpoint_command", required=True
    )

    ck_save_p = checkpoint_sub.add_parser(
        "save",
        help="run a seeded update workload and write one durable "
        "generation",
    )
    ck_save_p.add_argument("--dir", required=True)
    ck_save_p.add_argument("--seed", type=int, default=0)
    ck_save_p.add_argument(
        "--n", type=int, default=4096, help="universe size"
    )
    ck_save_p.add_argument("--shards", type=int, default=2)
    ck_save_p.add_argument("--replicas", type=int, default=2)
    ck_save_p.add_argument(
        "--updates", type=int, default=256,
        help="seeded updates to apply before saving",
    )
    ck_save_p.add_argument(
        "--log-retention", type=int, default=128,
        help="replay-log compaction bound (use a large value to keep "
        "the full log)",
    )
    ck_save_p.set_defaults(func=_cmd_checkpoint_save)

    ck_inspect_p = checkpoint_sub.add_parser(
        "inspect",
        help="verify (CRC/SHA) and summarize checkpoint files without "
        "restoring; exit 1 if any file is corrupt",
    )
    ck_inspect_p.add_argument(
        "path", help="one .ckpt file or a checkpoint directory"
    )
    ck_inspect_p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    ck_inspect_p.set_defaults(func=_cmd_checkpoint_inspect)

    ck_restore_p = checkpoint_sub.add_parser(
        "restore",
        help="recover a service through the quarantine/fallback chain "
        "and smoke-read it",
    )
    ck_restore_p.add_argument("--dir", required=True)
    ck_restore_p.add_argument("--seed", type=int, default=0)
    ck_restore_p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the post-restore canary verification sweep",
    )
    ck_restore_p.set_defaults(func=_cmd_checkpoint_restore)

    adversary_p = sub.add_parser(
        "adversary",
        help="evolutionary red team: search, replay, and shrink attacks",
    )
    adversary_sub = adversary_p.add_subparsers(
        dest="adversary_command", required=True
    )

    def add_adversary_eval_options(p) -> None:
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--n", type=int, default=48, help="keys in the target instance"
        )
        p.add_argument(
            "--replicas", type=int, default=5,
            help="healing-service replicas (5 keeps a strict majority "
            "with two damaged)",
        )
        p.add_argument(
            "--requests", type=int, default=600,
            help="requests per genome evaluation",
        )
        p.add_argument(
            "--procs", type=int, default=0,
            help="also replay each genome against N real worker "
            "processes (0 = healing service only)",
        )

    adv_search_p = adversary_sub.add_parser(
        "search", help="evolve attack genomes against the healing stack"
    )
    add_adversary_eval_options(adv_search_p)
    adv_search_p.add_argument("--generations", type=int, default=4)
    adv_search_p.add_argument("--population", type=int, default=6)
    adv_search_p.add_argument("--elites", type=int, default=2)
    adv_search_p.add_argument(
        "--out", help="save the best genome as a JSON fixture"
    )
    adv_search_p.add_argument(
        "--minimize",
        action="store_true",
        help="greedily shrink the best genome before saving",
    )
    adv_search_p.set_defaults(func=_cmd_adversary_search)

    adv_replay_p = adversary_sub.add_parser(
        "replay",
        help="re-evaluate fixtures; exit 1 unless every digest matches "
        "with zero wrong answers and zero violations",
    )
    adv_replay_p.add_argument(
        "fixtures", nargs="*", help="fixture JSON paths"
    )
    adv_replay_p.add_argument(
        "--dir", help="also replay every *.json under this directory"
    )
    adv_replay_p.set_defaults(func=_cmd_adversary_replay)

    adv_min_p = adversary_sub.add_parser(
        "minimize", help="greedily shrink a fixture's genome"
    )
    adv_min_p.add_argument("fixture", help="fixture JSON path")
    adv_min_p.add_argument(
        "--out", help="write the shrunk fixture here (default: in place)"
    )
    adv_min_p.add_argument(
        "--keep-fraction",
        type=float,
        default=0.8,
        help="accept simplifications keeping at least this fraction "
        "of the original fitness",
    )
    adv_min_p.set_defaults(func=_cmd_adversary_minimize)

    trace_p = sub.add_parser(
        "trace", help="record a span tree for a seeded workload"
    )
    add_service_options(trace_p)
    add_loadgen_options(trace_p)
    trace_p.add_argument(
        "--out", required=True, help="trace output path"
    )
    trace_p.add_argument(
        "--fmt",
        default="chrome",
        choices=("chrome", "json"),
        help="chrome trace_event JSON (chrome://tracing) or raw spans",
    )
    trace_p.set_defaults(func=_cmd_trace)

    info_p = sub.add_parser("info", help="package and paper summary")
    info_p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    info_p.set_defaults(func=_cmd_info)
    return parser


def main(argv=None) -> int:
    """Parse arguments and dispatch to a command; returns the exit code.

    Library failures (:class:`~repro.errors.ReproError`) become a
    one-line ``error:`` message on stderr and exit code 2 — never a
    traceback.  Programming errors still raise.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
