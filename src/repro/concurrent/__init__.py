"""Simultaneous-query simulation on a shared-memory multiprocessor.

The paper motivates contention by "how many queries to the data
structure might simultaneously access the same memory cell" and bounds
the expected simultaneous probes to a cell by m * Phi(j) (linearity of
expectation over m concurrent queries).  This subpackage measures the
actual behaviour:

- :class:`~repro.concurrent.simulator.ConcurrentSimulator` — a
  synchronous (PRAM-round) simulator of m processors running a closed
  loop of membership queries against one shared table, with pluggable
  memory-contention semantics;
- :mod:`~repro.concurrent.resolution` — the semantics: ``crcw``
  (concurrent reads are free — the idealized baseline), and ``queued``
  (each cell serves one probe per cycle, the Dwork–Herlihy–Waarts-style
  stall model [6] in which hot cells serialize their readers).

E12 runs all dictionaries through both models: binary search's root
cell caps system throughput at ~1 query-step per cycle regardless of m,
while the low-contention scheme scales almost linearly until m
approaches s.
"""

from repro.concurrent.adversaries import (
    Adversary,
    CellOutageAdversary,
    ContentionSpikeAdversary,
)
from repro.concurrent.resolution import (
    BackoffModel,
    CRCWModel,
    QueuedModel,
    ResolutionModel,
)
from repro.concurrent.simulator import ConcurrentSimulator, SimulationResult

__all__ = [
    "ConcurrentSimulator",
    "SimulationResult",
    "ResolutionModel",
    "CRCWModel",
    "QueuedModel",
    "BackoffModel",
    "Adversary",
    "CellOutageAdversary",
    "ContentionSpikeAdversary",
]
