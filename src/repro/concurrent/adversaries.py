"""Per-cycle adversaries for the concurrent simulator.

The paper's contention bound is an expectation over an *oblivious*
query distribution; a production system also faces environments that
actively misbehave.  Two seeded adversaries model the classic failure
modes:

- :class:`CellOutageAdversary` — transient cell outages: each cycle,
  with probability ``event_rate``, a batch of uniformly random cells
  goes down for ``duration`` cycles.  ``mode="block"`` makes probes to
  down cells stall (they retry until the cell recovers: availability
  and retry amplification degrade); ``mode="corrupt"`` serves them but
  *taints* the reading query, which is pessimistically counted as a
  wrong answer on completion (any corrupted read is assumed fatal to
  the answer — an upper bound on the true wrong-answer rate).
- :class:`ContentionSpikeAdversary` — periodic workload spikes: during
  windows of ``width`` cycles every ``period`` cycles, every freshly
  assigned query is collapsed onto one key, focusing the whole machine
  on that key's probe path and spiking per-cell collisions.

Adversaries own a private seeded RNG: with ``adversary=None`` the
simulator's draw sequence — and therefore its results — is untouched
(the zero-overhead default).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.utils.validation import check_positive_integer, check_probability

__all__ = ["Adversary", "CellOutageAdversary", "ContentionSpikeAdversary"]


class Adversary:
    """Base adversary: no outages, no corruption, no query override.

    The simulator calls :meth:`bind` once, :meth:`begin_cycle` at the
    top of each cycle, then consults :attr:`blocked` / :attr:`corrupted`
    (boolean masks over flat cells, or ``None`` for "none this cycle")
    and routes fresh query assignments through :meth:`override_queries`.
    """

    name = "none"

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)
        self.blocked: np.ndarray | None = None
        self.corrupted: np.ndarray | None = None
        self._cycle_done: int | None = None

    def bind(self, num_cells: int) -> None:
        """Size internal state to the table being attacked."""
        self.num_cells = int(num_cells)

    def advance(self, cycle: int) -> None:
        """Move to ``cycle`` exactly once (idempotent per cycle)."""
        if self._cycle_done != cycle:
            self._cycle_done = cycle
            self.begin_cycle(cycle)

    def begin_cycle(self, cycle: int) -> None:
        """Advance adversarial state to ``cycle``."""

    def override_queries(self, xs: np.ndarray) -> np.ndarray:
        """Rewrite a batch of freshly assigned queries (identity here)."""
        return xs


class CellOutageAdversary(Adversary):
    """Knocks out (or silently corrupts) random cells for a while."""

    def __init__(
        self,
        event_rate: float = 0.1,
        cells_per_event: int = 1,
        duration: int = 10,
        mode: str = "block",
        seed: int = 0,
    ):
        super().__init__(seed)
        self.event_rate = check_probability("event_rate", event_rate)
        self.cells_per_event = check_positive_integer(
            "cells_per_event", cells_per_event
        )
        self.duration = check_positive_integer("duration", duration)
        if mode not in ("block", "corrupt"):
            raise ParameterError(
                f"mode must be 'block' or 'corrupt', got {mode!r}"
            )
        self.mode = mode
        self.name = f"outage[{mode}]"

    def bind(self, num_cells: int) -> None:
        super().bind(num_cells)
        self._down_until = np.zeros(num_cells, dtype=np.int64)

    def begin_cycle(self, cycle: int) -> None:
        if self.rng.random() < self.event_rate:
            k = min(self.cells_per_event, self.num_cells)
            cells = self.rng.choice(self.num_cells, size=k, replace=False)
            self._down_until[cells] = np.maximum(
                self._down_until[cells], cycle + self.duration
            )
        mask = self._down_until > cycle
        if not mask.any():
            mask = None
        if self.mode == "block":
            self.blocked, self.corrupted = mask, None
        else:
            self.blocked, self.corrupted = None, mask


class ContentionSpikeAdversary(Adversary):
    """Collapses fresh assignments onto one key during periodic windows."""

    def __init__(self, period: int = 50, width: int = 5, seed: int = 0):
        super().__init__(seed)
        self.period = check_positive_integer("period", period)
        self.width = check_positive_integer("width", width)
        if self.width > self.period:
            raise ParameterError("width must be <= period")
        self.name = "spike"
        self._active = False

    def begin_cycle(self, cycle: int) -> None:
        self._active = (cycle % self.period) < self.width

    def override_queries(self, xs: np.ndarray) -> np.ndarray:
        if self._active and xs.size:
            # The spike target is whatever key the workload dealt first
            # this batch: every processor re-assigned during the window
            # hammers the same probe path, no extra RNG draws needed.
            xs = np.full_like(xs, xs.flat[0])
        return xs
