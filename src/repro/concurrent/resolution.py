"""Memory-contention resolution semantics for the concurrent simulator.

A resolution model decides, each synchronous cycle, which of the
processors attempting a probe actually complete it.  Two classic
semantics:

- :class:`CRCWModel` — concurrent-read CRCW PRAM: all probes complete
  every cycle.  Contention is *observed* (per-cell collision counts)
  but costs nothing; this isolates the probe-complexity term.
- :class:`QueuedModel` — QRQW-style queuing (cf. Dwork–Herlihy–Waarts's
  stall-counting model [6]): each cell serves at most ``capacity``
  probes per cycle; the rest stall and retry.  Hot cells serialize
  their readers, so wall-clock throughput now reflects contention.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_positive_integer


class ResolutionModel(abc.ABC):
    """Decides which attempted probes are served each cycle."""

    name: str

    @abc.abstractmethod
    def serve(
        self, cells: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Given attempted flat-cell indices, return a served boolean mask.

        ``cells`` holds one flat cell index per attempting processor.
        """


class CRCWModel(ResolutionModel):
    """Concurrent reads are free: everything is served."""

    name = "crcw"

    def serve(self, cells: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.ones(cells.shape[0], dtype=bool)


class BackoffModel(ResolutionModel):
    """Collision-abort with randomized backoff (optical-router style).

    If two or more processors probe the same cell in a cycle, *none*
    are served (the hardware aborts on conflict); each retries after a
    geometric backoff implemented as serving each contender next time
    with probability 1/contenders.  More pessimistic than
    :class:`QueuedModel` around hot cells — a cell with k steady
    contenders serves ~k (1/k)(1-1/k)^{k-1} ~ e^{-1} probes per cycle
    instead of 1 — which models arbitration collapse rather than fair
    queuing.
    """

    name = "backoff"

    def serve(self, cells: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        k = cells.shape[0]
        if k == 0:
            return np.zeros(0, dtype=bool)
        order = np.argsort(cells, kind="stable")
        sorted_cells = cells[order]
        new_group = np.concatenate(
            [[True], sorted_cells[1:] != sorted_cells[:-1]]
        )
        group_id = np.cumsum(new_group) - 1
        group_sizes = np.bincount(group_id)
        sizes_per_probe = group_sizes[group_id]
        # Solo probes always served; contenders each independently
        # transmit w.p. 1/size and succeed only if alone in doing so.
        transmit = rng.random(k) < (1.0 / sizes_per_probe)
        transmit_counts = np.bincount(
            group_id, weights=transmit.astype(np.float64)
        )
        served_sorted = transmit & (transmit_counts[group_id] == 1)
        served = np.zeros(k, dtype=bool)
        served[order] = served_sorted
        return served


class QueuedModel(ResolutionModel):
    """Each cell serves at most ``capacity`` probes per cycle, fairly.

    Among the processors contending for one cell, ``capacity`` winners
    are chosen uniformly at random (random tie-break models hardware
    arbitration); losers retry next cycle.
    """

    name = "queued"

    def __init__(self, capacity: int = 1):
        self.capacity = check_positive_integer("capacity", capacity)

    def serve(self, cells: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        k = cells.shape[0]
        if k == 0:
            return np.zeros(0, dtype=bool)
        # Random priorities, then stable sort by (cell, priority): the
        # first `capacity` entries of each cell group win.
        priorities = rng.random(k)
        order = np.lexsort((priorities, cells))
        sorted_cells = cells[order]
        # Rank within each equal-cell run.
        new_group = np.concatenate([[True], sorted_cells[1:] != sorted_cells[:-1]])
        group_start = np.maximum.accumulate(
            np.where(new_group, np.arange(k), 0)
        )
        rank = np.arange(k) - group_start
        served_sorted = rank < self.capacity
        served = np.zeros(k, dtype=bool)
        served[order] = served_sorted
        return served
