"""Synchronous m-processor closed-loop query simulator.

Each of ``m`` processors repeatedly draws a query from the workload
distribution, walks its probe sequence one cell per cycle (sampling the
same per-step distributions the sequential algorithm uses), and starts a
fresh query upon completion.  A :class:`ResolutionModel` arbitrates
per-cell service each cycle.

Measured per run: completed queries, throughput (completions/cycle),
mean/95p query latency in cycles, stall fraction, and the maximum
simultaneous probes observed on any single cell (the quantity the paper
bounds by m * Phi(j) in expectation).

Everything is vectorized over processors (guide: index-array
vectorization); per-cycle work is O(m log m) for the queued model's
sort.  Probe *sequences* are pre-sampled per query via
``probe_plan_batch`` at assignment time, which keeps the cycle loop free
of per-processor Python work.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.concurrent.resolution import CRCWModel, ResolutionModel
from repro.distributions.base import QueryDistribution
from repro.errors import ParameterError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Aggregate statistics of one concurrent simulation run."""

    scheme: str
    model: str
    processors: int
    cycles: int
    completed_queries: int
    total_probes: int
    stalled_probes: int
    mean_latency: float
    p95_latency: float
    max_cell_collisions: int
    predicted_max_collisions: float | None = None

    @property
    def throughput(self) -> float:
        """Completed queries per cycle."""
        return self.completed_queries / self.cycles if self.cycles else 0.0

    @property
    def stall_fraction(self) -> float:
        """Fraction of probe attempts that stalled."""
        attempts = self.total_probes + self.stalled_probes
        return self.stalled_probes / attempts if attempts else 0.0

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        return {
            "scheme": self.scheme,
            "model": self.model,
            "m": self.processors,
            "cycles": self.cycles,
            "throughput": round(self.throughput, 3),
            "mean_latency": round(self.mean_latency, 2),
            "p95_latency": round(self.p95_latency, 2),
            "stall_frac": round(self.stall_fraction, 4),
            "max_collisions": self.max_cell_collisions,
        }


class ConcurrentSimulator:
    """Closed-loop simulation of ``m`` processors querying one table."""

    def __init__(
        self,
        dictionary,
        distribution: QueryDistribution,
        processors: int,
        model: ResolutionModel | None = None,
        rng=None,
    ):
        self.dictionary = dictionary
        self.distribution = distribution
        self.m = check_positive_integer("processors", processors)
        self.model = model if model is not None else CRCWModel()
        self.rng = as_generator(rng)
        table = dictionary.table
        self._s = table.s
        self._num_cells = table.num_cells
        max_probes = int(dictionary.max_probes)
        # Per-processor pre-sampled probe sequences (flat cells, -1 pad).
        self._seq = np.full((self.m, max_probes), -1, dtype=np.int64)
        self._len = np.zeros(self.m, dtype=np.int64)
        self._pos = np.zeros(self.m, dtype=np.int64)
        self._start_cycle = np.zeros(self.m, dtype=np.int64)
        self._assign(np.arange(self.m), cycle=0)

    def _assign(self, procs: np.ndarray, cycle: int) -> None:
        """Draw fresh queries for ``procs`` and pre-sample their probes."""
        k = procs.shape[0]
        if k == 0:
            return
        xs = self.distribution.sample(self.rng, k)
        steps = self.dictionary.probe_plan_batch(xs)
        if len(steps) > self._seq.shape[1]:
            raise ParameterError(
                f"plan produced {len(steps)} steps > max_probes "
                f"{self._seq.shape[1]}"
            )
        self._seq[procs, :] = -1
        lengths = np.zeros(k, dtype=np.int64)
        for t, step in enumerate(steps):
            cols = step.sample(self.rng)
            active = step.counts > 0
            flat = np.where(active, step.row * self._s + cols, -1)
            self._seq[procs, t] = flat
            lengths += active.astype(np.int64)
        # Plans are prefix-shaped: a query's active steps are its first
        # `length` steps (inactive steps only occur after termination).
        self._len[procs] = lengths
        self._pos[procs] = 0
        self._start_cycle[procs] = cycle

    def run(self, cycles: int) -> SimulationResult:
        """Advance the system ``cycles`` synchronous rounds."""
        cycles = check_positive_integer("cycles", cycles)
        completed = 0
        total_probes = 0
        stalled = 0
        # Latencies accumulate into a geometrically grown numpy buffer
        # (bounded by one completion per processor per cycle).
        lat_buf = np.empty(min(1024, self.m * cycles), dtype=np.int64)
        lat_n = 0
        max_collisions = 0
        all_procs = np.arange(self.m)
        for cycle in range(cycles):
            cells = self._seq[all_procs, self._pos]
            # Zero-length plans surface as cell -1: no probe to make, the
            # query completes immediately (np.bincount rejects negatives).
            valid = cells >= 0
            n_valid = int(valid.sum())
            if n_valid:
                counts = np.bincount(cells[valid], minlength=1)
                max_collisions = max(max_collisions, int(counts.max(initial=0)))
            served = np.zeros(self.m, dtype=bool)
            if n_valid:
                served[valid] = self.model.serve(cells[valid], self.rng)
            n_served = int(served.sum())
            total_probes += n_served
            stalled += n_valid - n_served
            self._pos[served] += 1
            finished = (served & (self._pos >= self._len)) | ~valid
            if np.any(finished):
                fin_idx = all_procs[finished]
                completed += fin_idx.shape[0]
                new_lats = cycle + 1 - self._start_cycle[fin_idx]
                needed = lat_n + new_lats.shape[0]
                if needed > lat_buf.shape[0]:
                    grown = np.empty(
                        max(needed, 2 * lat_buf.shape[0]), dtype=np.int64
                    )
                    grown[:lat_n] = lat_buf[:lat_n]
                    lat_buf = grown
                lat_buf[lat_n:needed] = new_lats
                lat_n = needed
                self._assign(fin_idx, cycle=cycle + 1)
        lat = lat_buf[:lat_n].astype(np.float64)
        return SimulationResult(
            scheme=getattr(self.dictionary, "name", "scheme"),
            model=self.model.name,
            processors=self.m,
            cycles=cycles,
            completed_queries=completed,
            total_probes=total_probes,
            stalled_probes=stalled,
            mean_latency=float(lat.mean()) if lat.size else float("nan"),
            p95_latency=float(np.percentile(lat, 95)) if lat.size else float("nan"),
            max_cell_collisions=max_collisions,
        )
