"""Synchronous m-processor closed-loop query simulator.

Each of ``m`` processors repeatedly draws a query from the workload
distribution, walks its probe sequence one cell per cycle (sampling the
same per-step distributions the sequential algorithm uses), and starts a
fresh query upon completion.  A :class:`ResolutionModel` arbitrates
per-cell service each cycle.

Measured per run: completed queries, throughput (completions/cycle),
mean/95p query latency in cycles, stall fraction, and the maximum
simultaneous probes observed on any single cell (the quantity the paper
bounds by m * Phi(j) in expectation).

Everything is vectorized over processors (guide: index-array
vectorization); per-cycle work is O(m log m) for the queued model's
sort.  Probe *sequences* are pre-sampled per query via
``probe_plan_batch`` at assignment time, which keeps the cycle loop free
of per-processor Python work.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.concurrent.resolution import CRCWModel, ResolutionModel
from repro.distributions.base import QueryDistribution
from repro.errors import ParameterError
from repro.utils.rng import as_generator
from repro.utils.validation import check_integer, check_positive_integer


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Aggregate statistics of one concurrent simulation run.

    The degradation fields (``blocked_probes``, ``wrong_answers``) stay
    zero unless an adversary was attached; availability and retry
    amplification then quantify graceful (or not) degradation.
    """

    scheme: str
    model: str
    processors: int
    cycles: int
    completed_queries: int
    total_probes: int
    stalled_probes: int
    mean_latency: float
    p95_latency: float
    max_cell_collisions: int
    predicted_max_collisions: float | None = None
    blocked_probes: int = 0
    wrong_answers: int = 0

    @property
    def throughput(self) -> float:
        """Completed queries per cycle."""
        return self.completed_queries / self.cycles if self.cycles else 0.0

    @property
    def stall_fraction(self) -> float:
        """Fraction of probe attempts that stalled."""
        attempts = self.total_probes + self.stalled_probes
        return self.stalled_probes / attempts if attempts else 0.0

    @property
    def availability(self) -> float:
        """Fraction of probe attempts not blocked by cell outages."""
        attempts = self.total_probes + self.stalled_probes + self.blocked_probes
        return 1.0 - self.blocked_probes / attempts if attempts else 1.0

    @property
    def retry_amplification(self) -> float:
        """Probe attempts per served probe (1.0 = no stalls, no outages)."""
        attempts = self.total_probes + self.stalled_probes + self.blocked_probes
        return attempts / self.total_probes if self.total_probes else float("nan")

    @property
    def wrong_answer_rate(self) -> float:
        """Completed queries tainted by a corrupted read, per completion."""
        return (
            self.wrong_answers / self.completed_queries
            if self.completed_queries
            else 0.0
        )

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        return {
            "scheme": self.scheme,
            "model": self.model,
            "m": self.processors,
            "cycles": self.cycles,
            "throughput": round(self.throughput, 3),
            "mean_latency": round(self.mean_latency, 2),
            "p95_latency": round(self.p95_latency, 2),
            "stall_frac": round(self.stall_fraction, 4),
            "max_collisions": self.max_cell_collisions,
        }

    def degradation_row(self) -> dict:
        """Flat dict of the fault-facing metrics (E18 tables)."""
        return {
            "scheme": self.scheme,
            "m": self.processors,
            "availability": round(self.availability, 4),
            "retry_amp": round(self.retry_amplification, 3),
            "wrong_rate": round(self.wrong_answer_rate, 4),
            "throughput": round(self.throughput, 3),
        }


class ConcurrentSimulator:
    """Closed-loop simulation of ``m`` processors querying one table."""

    def __init__(
        self,
        dictionary,
        distribution: QueryDistribution,
        processors: int,
        model: ResolutionModel | None = None,
        rng=None,
        adversary=None,
    ):
        self.dictionary = dictionary
        self.distribution = distribution
        self.m = check_positive_integer("processors", processors)
        self.model = model if model is not None else CRCWModel()
        self.rng = as_generator(rng)
        self.adversary = adversary
        table = dictionary.table
        self._s = table.s
        self._num_cells = table.num_cells
        if adversary is not None:
            adversary.bind(self._num_cells)
            adversary.advance(0)
        max_probes = int(dictionary.max_probes)
        # Per-processor pre-sampled probe sequences (flat cells, -1 pad).
        self._seq = np.full((self.m, max_probes), -1, dtype=np.int64)
        self._len = np.zeros(self.m, dtype=np.int64)
        self._pos = np.zeros(self.m, dtype=np.int64)
        self._start_cycle = np.zeros(self.m, dtype=np.int64)
        # Tainted = consumed at least one corrupted read this query.
        self._tainted = np.zeros(self.m, dtype=bool)
        self._assign(np.arange(self.m), cycle=0)

    def _assign(self, procs: np.ndarray, cycle: int) -> None:
        """Draw fresh queries for ``procs`` and pre-sample their probes."""
        k = procs.shape[0]
        if k == 0:
            return
        xs = self.distribution.sample(self.rng, k)
        if self.adversary is not None:
            xs = self.adversary.override_queries(xs)
        steps = self.dictionary.probe_plan_batch(xs)
        if len(steps) > self._seq.shape[1]:
            raise ParameterError(
                f"plan produced {len(steps)} steps > max_probes "
                f"{self._seq.shape[1]}"
            )
        self._seq[procs, :] = -1
        lengths = np.zeros(k, dtype=np.int64)
        for t, step in enumerate(steps):
            cols = step.sample(self.rng)
            active = step.counts > 0
            flat = np.where(active, step.row * self._s + cols, -1)
            self._seq[procs, t] = flat
            lengths += active.astype(np.int64)
        # Plans are prefix-shaped: a query's active steps are its first
        # `length` steps (inactive steps only occur after termination).
        self._len[procs] = lengths
        self._pos[procs] = 0
        self._start_cycle[procs] = cycle
        self._tainted[procs] = False

    def run(self, cycles: int) -> SimulationResult:
        """Advance the system ``cycles`` synchronous rounds.

        ``cycles=0`` is a legal no-op run: zero completions, NaN
        latencies, assignments untouched.
        """
        cycles = check_integer("cycles", cycles, minimum=0)
        completed = 0
        total_probes = 0
        stalled = 0
        blocked_probes = 0
        wrong_answers = 0
        adversary = self.adversary
        # Latencies accumulate into a geometrically grown numpy buffer
        # (bounded by one completion per processor per cycle).
        lat_buf = np.empty(min(1024, max(1, self.m * cycles)), dtype=np.int64)
        lat_n = 0
        max_collisions = 0
        all_procs = np.arange(self.m)
        for cycle in range(cycles):
            if adversary is not None:
                adversary.advance(cycle)
            cells = self._seq[all_procs, self._pos]
            # Zero-length plans surface as cell -1: no probe to make, the
            # query completes immediately (np.bincount rejects negatives).
            valid = cells >= 0
            blocked = np.zeros(self.m, dtype=bool)
            if adversary is not None and adversary.blocked is not None:
                blocked = valid & adversary.blocked[np.where(valid, cells, 0)]
            attempt = valid & ~blocked
            blocked_probes += int(blocked.sum())
            n_attempt = int(attempt.sum())
            if n_attempt:
                counts = np.bincount(cells[attempt], minlength=1)
                max_collisions = max(max_collisions, int(counts.max(initial=0)))
            served = np.zeros(self.m, dtype=bool)
            if n_attempt:
                served[attempt] = self.model.serve(cells[attempt], self.rng)
            n_served = int(served.sum())
            total_probes += n_served
            stalled += n_attempt - n_served
            if adversary is not None and adversary.corrupted is not None:
                self._tainted |= served & adversary.corrupted[
                    np.where(valid, cells, 0)
                ]
            self._pos[served] += 1
            finished = (served & (self._pos >= self._len)) | ~valid
            if np.any(finished):
                fin_idx = all_procs[finished]
                completed += fin_idx.shape[0]
                wrong_answers += int(self._tainted[fin_idx].sum())
                new_lats = cycle + 1 - self._start_cycle[fin_idx]
                needed = lat_n + new_lats.shape[0]
                if needed > lat_buf.shape[0]:
                    grown = np.empty(
                        max(needed, 2 * lat_buf.shape[0]), dtype=np.int64
                    )
                    grown[:lat_n] = lat_buf[:lat_n]
                    lat_buf = grown
                lat_buf[lat_n:needed] = new_lats
                lat_n = needed
                self._assign(fin_idx, cycle=cycle + 1)
        lat = lat_buf[:lat_n].astype(np.float64)
        return SimulationResult(
            scheme=getattr(self.dictionary, "name", "scheme"),
            model=self.model.name,
            processors=self.m,
            cycles=cycles,
            completed_queries=completed,
            total_probes=total_probes,
            stalled_probes=stalled,
            mean_latency=float(lat.mean()) if lat.size else float("nan"),
            p95_latency=float(np.percentile(lat, 95)) if lat.size else float("nan"),
            max_cell_collisions=max_collisions,
            blocked_probes=blocked_probes,
            wrong_answers=wrong_answers,
        )
