"""Contention measurement (paper Definition 1).

- :mod:`~repro.contention.exact` — exact contention matrices
  ``Phi_t(j) = sum_x q(x) P_t(x, j)`` computed from the schemes'
  closed-form probe plans, vectorized over the query support;
- :mod:`~repro.contention.montecarlo` — estimators: Rao-Blackwellized
  (sample queries, accumulate exact probe vectors) and fully empirical
  (execute queries, count probes) — used to validate the exact engine;
- :mod:`~repro.contention.metrics` — max/step contention, ratio to the
  optimal 1/s, Lorenz/Gini load-balance summaries;
- :mod:`~repro.contention.adversarial` — the worst-case point-mass
  distribution for a built scheme (the §1.3 "arbitrarily bad" regime);
- :mod:`~repro.contention.report` — result records and ASCII tables.
"""

from repro.contention.adversarial import worst_point_mass, worst_support_k
from repro.contention.exact import ContentionMatrix, exact_contention
from repro.contention.metrics import (
    component_breakdown,
    contention_summary,
    gini_coefficient,
    lorenz_curve,
)
from repro.contention.montecarlo import empirical_contention, sampled_contention
from repro.contention.report import ContentionReport, measure

__all__ = [
    "ContentionMatrix",
    "exact_contention",
    "sampled_contention",
    "empirical_contention",
    "contention_summary",
    "component_breakdown",
    "gini_coefficient",
    "lorenz_curve",
    "worst_point_mass",
    "worst_support_k",
    "ContentionReport",
    "measure",
]
