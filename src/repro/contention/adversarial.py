"""Adversarial query distributions against a *built* scheme.

Section 1.3: "for arbitrary query distributions, the contentions can be
arbitrarily bad."  The worst single-query distribution for a fixed table
is the point mass on the query whose probe plan has the most
concentrated step — its contention at that step equals that step's
per-cell probability (e.g. 1 on the bucket-header cell of FKS, or
1/load**2 on a small perfect-hash span of the low-contention scheme).

:func:`worst_point_mass` scans a candidate pool and returns the worst
query, its achieved max step contention, and the PointMass distribution
— used by E6.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.explicit import PointMass
from repro.errors import ParameterError


def per_query_peak_probability(dictionary, xs: np.ndarray) -> np.ndarray:
    """For each query: max over steps of its per-cell probe probability.

    Under PointMass(x), max_{t,j} Phi_t(j) equals exactly this value
    (every plan step is uniform over its support).
    """
    xs = np.asarray(xs, dtype=np.int64)
    peak = np.zeros(xs.shape[0], dtype=np.float64)
    for step in dictionary.probe_plan_batch(xs):
        active = step.counts > 0
        if np.any(active):
            peak[active] = np.maximum(
                peak[active], 1.0 / step.counts[active]
            )
    return peak


def worst_support_k(
    dictionary,
    k: int,
    candidates: np.ndarray | None = None,
    max_support: int = 64,
) -> tuple["ExplicitDistribution", float]:
    """The worst *k-query* uniform distribution against a built scheme.

    Interpolates between the point mass (k = 1, contention 1) and broad
    distributions: among the candidate pool, find the table cell whose
    top-k per-query probe probabilities have the largest mean — a
    uniform distribution on those k queries gives that mean as the
    cell's step contention.  Only plan steps with support at most
    ``max_support`` are considered (wide replicated steps contribute
    O(1/s) per cell and can never be the argmax).

    Returns ``(distribution, achieved_max_step_contention)``; used to
    show contention degrades like ~1/k as the adversary is forced to
    spread (E6's graceful-degradation rows).
    """
    from collections import defaultdict

    from repro.distributions.explicit import ExplicitDistribution

    if k < 1:
        raise ParameterError("k must be >= 1")
    if candidates is None:
        candidates = dictionary.keys
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.size < k:
        raise ParameterError(f"need >= {k} candidates, got {candidates.size}")
    s = dictionary.table.s
    # (step_index, flat_cell) -> list of (probability, query).
    contributions: dict[tuple[int, int], list] = defaultdict(list)
    for t, step in enumerate(dictionary.probe_plan_batch(candidates)):
        active = np.nonzero(step.counts > 0)[0]
        for i in active:
            count = int(step.counts[i])
            if count > max_support:
                continue
            p = 1.0 / count
            base = step.row * s
            start, stride = int(step.starts[i]), int(step.strides[i])
            for offset in range(count):
                cell = base + start + offset * stride
                contributions[(t, cell)].append((p, int(candidates[i])))
    best_mean = -1.0
    best_queries: list[int] = []
    for entries in contributions.values():
        if len(entries) < k:
            continue
        entries.sort(reverse=True)
        mean = sum(p for p, _ in entries[:k]) / k
        if mean > best_mean:
            best_mean = mean
            best_queries = [q for _, q in entries[:k]]
    # A cell probed by only ONE of the k supported queries still gets
    # contention peak/k (e.g. each query's private data cell with
    # peak = 1); take whichever mechanism is worse.
    peaks = per_query_peak_probability(dictionary, candidates)
    order = np.argsort(peaks)[::-1][:k]
    solo_value = float(peaks[order[0]]) / k
    if solo_value > best_mean:
        best_mean = solo_value
        best_queries = [int(candidates[i]) for i in order]
    dist = ExplicitDistribution(
        dictionary.universe_size, best_queries, [1.0 / k] * k
    )
    return dist, best_mean


def worst_point_mass(
    dictionary, candidates: np.ndarray | None = None
) -> tuple[int, float, PointMass]:
    """The worst-case single query against a built dictionary.

    ``candidates`` defaults to the stored keys (positive queries are
    usually the worst: they always reach the final data probe).
    Returns ``(query, max_step_contention, PointMass)``.
    """
    if candidates is None:
        candidates = dictionary.keys
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.size == 0:
        raise ParameterError("candidate pool is empty")
    peak = per_query_peak_probability(dictionary, candidates)
    worst = int(np.argmax(peak))
    x = int(candidates[worst])
    return x, float(peak[worst]), PointMass(dictionary.universe_size, x)
