"""Exact contention: Phi_t = q P_t computed in closed form.

For every scheme in this library the step-t probe distribution of a
fixed query is uniform over an explicit strided set
(:class:`~repro.cellprobe.steps.BatchStridedStep`), so the contention
matrix is an exact weighted accumulation over the query support — no
sampling error.  Supports are enumerated in chunks by the query
distribution (the uniform-negative support is the whole co-universe),
and accumulation is ``np.add.at`` over flattened index arrays (guide:
vectorize with index arrays; in-place accumulation).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.distributions.base import QueryDistribution
from repro.errors import ParameterError


@dataclasses.dataclass
class ContentionMatrix:
    """Exact Phi_t(j) for a (scheme, distribution) pair.

    ``phi`` has shape ``(num_steps, rows * s)``; entry (t, j) is the
    probability that step t probes flat cell j (paper Definition 1).
    """

    phi: np.ndarray
    rows: int
    s: int
    scheme: str = ""

    def __post_init__(self):
        if self.phi.ndim != 2 or self.phi.shape[1] != self.rows * self.s:
            raise ParameterError("phi must have shape (steps, rows*s)")

    @property
    def num_steps(self) -> int:
        return self.phi.shape[0]

    @property
    def num_cells(self) -> int:
        return self.phi.shape[1]

    def step_mass(self) -> np.ndarray:
        """sum_j Phi_t(j) per step = Pr[query makes a t-th probe] (<= 1)."""
        return self.phi.sum(axis=1)

    def total(self) -> np.ndarray:
        """Total contention Phi(j) = sum_t Phi_t(j), shape (rows*s,)."""
        return self.phi.sum(axis=0)

    def max_step_contention(self) -> float:
        """max_{t,j} Phi_t(j) — Definition 2's phi for the scheme."""
        return float(self.phi.max(initial=0.0))

    def max_total_contention(self) -> float:
        """max_j Phi(j)."""
        return float(self.total().max(initial=0.0))

    def expected_probes(self) -> float:
        """sum_{t,j} Phi_t(j) = expected number of probes per query."""
        return float(self.phi.sum())

    def per_row_max(self) -> np.ndarray:
        """max_j Phi(j) within each table row, shape (rows,)."""
        return self.total().reshape(self.rows, self.s).max(axis=1)

    def hottest_cells(self, k: int = 5) -> list[tuple[int, int, float]]:
        """The k highest-contention cells as (row, column, Phi(j))."""
        tot = self.total()
        idx = np.argsort(tot)[::-1][:k]
        return [(int(j) // self.s, int(j) % self.s, float(tot[j])) for j in idx]


def exact_contention(
    dictionary,
    distribution: QueryDistribution,
    chunk_size: int = 1 << 17,
) -> ContentionMatrix:
    """Exact contention of ``dictionary`` under ``distribution``.

    ``dictionary`` must expose ``probe_plan_batch``, ``table`` — i.e. the
    :class:`~repro.dictionaries.base.StaticDictionary` protocol.
    """
    table = dictionary.table
    num_cells = table.num_cells
    phi_steps: list[np.ndarray] = []
    for xs, weights in distribution.enumerate_mass(chunk_size):
        steps = dictionary.probe_plan_batch(xs)
        for t, step in enumerate(steps):
            # Several batch steps may realize one logical query step
            # (e.g. the replicas of ReplicatedDictionary); they carry
            # an explicit step_index so the matrix stays (t*, cells).
            t_eff = getattr(step, "step_index", None)
            t_eff = t if t_eff is None else int(t_eff)
            while len(phi_steps) <= t_eff:
                phi_steps.append(np.zeros(num_cells, dtype=np.float64))
            step.accumulate(phi_steps[t_eff], weights, table.s)
    if not phi_steps:
        raise ParameterError("distribution has empty support")
    return ContentionMatrix(
        phi=np.stack(phi_steps),
        rows=table.rows,
        s=table.s,
        scheme=getattr(dictionary, "name", type(dictionary).__name__),
    )
