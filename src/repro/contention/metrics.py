"""Summary metrics over contention matrices.

The paper's headline numbers are ``max_{t,j} Phi_t(j)`` (Definition 2's
phi) and its ratio to the optimal ``1/s``; the Lorenz/Gini summaries
quantify *how flat* the load distribution is — Theorem 3's scheme should
approach the perfectly flat Gini 0 profile on the replicated rows, while
FKS-style header rows concentrate mass (Gini near 1).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.contention.exact import ContentionMatrix
from repro.errors import ParameterError


def lorenz_curve(values: np.ndarray, points: int = 101) -> np.ndarray:
    """Lorenz curve of a non-negative load vector, sampled at ``points``.

    Returns cumulative load share at the bottom k/points fraction of
    cells (after sorting ascending); the diagonal is perfect balance.
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    total = v.sum()
    if total <= 0:
        return np.linspace(0.0, 1.0, points)
    cum = np.concatenate([[0.0], np.cumsum(v)]) / total
    positions = np.linspace(0, v.size, points)
    return np.interp(positions, np.arange(v.size + 1), cum)


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative load vector (0 = flat)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    n = v.size
    total = v.sum()
    if n == 0 or total <= 0:
        return 0.0
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * np.sum(ranks * v) / (n * total)) - (n + 1.0) / n)


@dataclasses.dataclass(frozen=True)
class ContentionSummary:
    """Headline metrics of a contention matrix."""

    scheme: str
    num_cells: int
    s: int
    expected_probes: float
    max_step_contention: float
    max_total_contention: float
    optimal: float  # 1/s
    ratio_step: float  # max step contention / optimal
    ratio_total: float
    gini_total: float

    def as_dict(self) -> dict:
        """Plain-dict form for serialization."""
        return dataclasses.asdict(self)


def contention_summary(matrix: ContentionMatrix) -> ContentionSummary:
    """Compute the standard summary of a contention matrix."""
    optimal = 1.0 / matrix.s
    max_step = matrix.max_step_contention()
    max_total = matrix.max_total_contention()
    return ContentionSummary(
        scheme=matrix.scheme,
        num_cells=matrix.num_cells,
        s=matrix.s,
        expected_probes=matrix.expected_probes(),
        max_step_contention=max_step,
        max_total_contention=max_total,
        optimal=optimal,
        ratio_step=max_step / optimal,
        ratio_total=max_total / optimal,
        gini_total=gini_coefficient(matrix.total()),
    )


def component_breakdown(matrix: ContentionMatrix, dictionary) -> list[dict]:
    """Attribute contention to the scheme's structural components.

    Uses the dictionary's ``row_labels()`` to report, per table row:
    the peak per-cell contention, the total probe mass landing on the
    row, and the peak as a multiple of the 1/s floor — identifying the
    hot component (binary search's root row, FKS's headers, ...).
    """
    labels = dictionary.row_labels()
    if len(labels) != matrix.rows:
        raise ParameterError(
            f"{len(labels)} labels for {matrix.rows} table rows"
        )
    total = matrix.total().reshape(matrix.rows, matrix.s)
    rows = []
    for r, label in enumerate(labels):
        peak = float(total[r].max())
        rows.append(
            {
                "component": label,
                "peak_phi": peak,
                "row_mass": float(total[r].sum()),
                "peak_x_s": peak * matrix.s,
            }
        )
    return sorted(rows, key=lambda d: d["peak_phi"], reverse=True)


def simultaneous_probe_bound(matrix: ContentionMatrix, m: int) -> float:
    """Expected probes to the hottest cell under m simultaneous queries.

    The paper's Section 1: "the expected number of probes to the cell for
    some fixed number m of simultaneous queries can then be bounded using
    linearity of expectation" — i.e. m * Phi(j).
    """
    return float(m) * matrix.max_total_contention()
