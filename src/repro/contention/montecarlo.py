"""Monte-Carlo contention estimators (validation of the exact engine).

Two estimators with very different variance:

- :func:`sampled_contention` — **Rao-Blackwellized**: sample queries
  X_1..X_M ~ q but accumulate each query's *exact* probe distribution
  (integrating out the algorithm's probe randomness analytically).  The
  only noise is over the query draw; for explicit-support distributions
  this converges at rate O(1/sqrt(M)) in each cell.
- :func:`empirical_contention` — fully empirical: actually *execute*
  queries on the instrumented table and count probes.  This is the
  end-to-end ground truth: it exercises the honest query algorithm,
  including its reads and decodes, and the test suite checks it
  converges to the exact matrix (which would catch any divergence
  between the executable algorithm and the analytic plans).
"""

from __future__ import annotations

import numpy as np

from repro.contention.exact import ContentionMatrix
from repro.distributions.base import QueryDistribution
from repro.errors import VerificationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer


def sampled_contention(
    dictionary,
    distribution: QueryDistribution,
    num_samples: int,
    rng=None,
    batch_size: int = 1 << 15,
) -> ContentionMatrix:
    """Rao-Blackwellized estimate of the contention matrix."""
    num_samples = check_positive_integer("num_samples", num_samples)
    rng = as_generator(rng)
    table = dictionary.table
    phi_steps: list[np.ndarray] = []
    remaining = num_samples
    w_each = 1.0 / num_samples
    while remaining > 0:
        take = min(remaining, batch_size)
        xs = distribution.sample(rng, take)
        weights = np.full(take, w_each)
        steps = dictionary.probe_plan_batch(xs)
        for t, step in enumerate(steps):
            t_eff = getattr(step, "step_index", None)
            t_eff = t if t_eff is None else int(t_eff)
            while len(phi_steps) <= t_eff:
                phi_steps.append(np.zeros(table.num_cells, dtype=np.float64))
            step.accumulate(phi_steps[t_eff], weights, table.s)
        remaining -= take
    return ContentionMatrix(
        phi=np.stack(phi_steps),
        rows=table.rows,
        s=table.s,
        scheme=getattr(dictionary, "name", type(dictionary).__name__),
    )


def empirical_contention(
    dictionary,
    distribution: QueryDistribution,
    num_queries: int,
    rng=None,
    batch_size: int = 1 << 14,
) -> ContentionMatrix:
    """Fully empirical contention: execute queries, count probes.

    Queries execute through the vectorized :meth:`query_batch` path in
    chunks of ``batch_size`` (identical probe accounting to the scalar
    algorithm).  Resets the dictionary table's probe counter first, so
    repeated calls are independent measurements.  Raises
    :class:`~repro.errors.VerificationError` if any executed answer
    disagrees with ground truth.
    """
    num_queries = check_positive_integer("num_queries", num_queries)
    rng = as_generator(rng)
    table = dictionary.table
    counter = table.counter
    counter.reset()
    remaining = num_queries
    while remaining > 0:
        take = min(remaining, batch_size)
        xs = distribution.sample(rng, take)
        answers = dictionary.query_batch(xs, rng)
        expected = dictionary.contains_batch(xs)
        if bool(np.any(answers != expected)):
            bad = int(np.argmax(answers != expected))
            raise VerificationError(
                int(xs[bad]), bool(answers[bad]), bool(expected[bad])
            )
        remaining -= take
    counter.finish_execution(num_queries)
    phi = counter.counts_per_step().astype(np.float64) / num_queries
    counter.reset()
    return ContentionMatrix(
        phi=phi,
        rows=table.rows,
        s=table.s,
        scheme=getattr(dictionary, "name", type(dictionary).__name__),
    )
