"""Measurement records and human-readable contention reports."""

from __future__ import annotations

import dataclasses

from repro.contention.exact import ContentionMatrix, exact_contention
from repro.contention.metrics import ContentionSummary, contention_summary
from repro.distributions.base import QueryDistribution


@dataclasses.dataclass(frozen=True)
class ContentionReport:
    """A (scheme, distribution) contention measurement with metadata."""

    summary: ContentionSummary
    n: int
    universe_size: int
    space_words: int
    max_probes: int
    distribution: str

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        return {
            "scheme": self.summary.scheme,
            "n": self.n,
            "N": self.universe_size,
            "space_words": self.space_words,
            "max_probes": self.max_probes,
            "distribution": self.distribution,
            "E[probes]": round(self.summary.expected_probes, 3),
            "max_step_phi": self.summary.max_step_contention,
            "max_total_phi": self.summary.max_total_contention,
            "ratio_step": round(self.summary.ratio_step, 3),
            "ratio_total": round(self.summary.ratio_total, 3),
            "gini": round(self.summary.gini_total, 4),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        s = self.summary
        return (
            f"{s.scheme:>16s}  n={self.n:<6d} "
            f"phi*={s.max_step_contention:.3e} "
            f"(ratio {s.ratio_step:8.2f}x optimal) "
            f"E[probes]={s.expected_probes:5.2f} "
            f"space={self.space_words}w"
        )


def measure(
    dictionary,
    distribution: QueryDistribution,
    chunk_size: int = 1 << 17,
) -> ContentionReport:
    """Exact contention measurement packaged as a report."""
    matrix = exact_contention(dictionary, distribution, chunk_size)
    return ContentionReport(
        summary=contention_summary(matrix),
        n=dictionary.n,
        universe_size=dictionary.universe_size,
        space_words=dictionary.space_words,
        max_probes=dictionary.max_probes,
        distribution=type(distribution).__name__,
    )
