"""The paper's contribution: the low-contention static dictionary.

Section 2 of the paper constructs, for the membership problem under
query distributions uniform within the positive and within the negative
queries, an ``(O(n), b, O(1), O(1/n))``-balanced-cell-probing scheme:
linear space, constant probes, and contention O(1/n) on *every* cell at
*every* step — all three asymptotically optimal.

- :class:`~repro.core.params.SchemeParameters` — the constants
  (c = 2e, d, delta, alpha, beta) with Lemma 9's validity constraints
  and the derived sizes (r, m, s, group size, rho).
- :mod:`~repro.core.construction` — sampling (f, g, z) until property
  P(S) holds, the row layout, GBAS, group histograms, and per-bucket
  perfect hashing (Section 2.2).
- :class:`~repro.core.dictionary.LowContentionDictionary` — the facade:
  honest 4-phase randomized queries (Section 2.3) plus the analytic
  probe plans used by the contention engine.
- :mod:`~repro.core.analysis` — closed-form per-step contention bounds
  to compare measured against predicted.
"""

from repro.core.construction import ConstructionResult, construct
from repro.core.dictionary import LowContentionDictionary
from repro.core.params import SchemeParameters
from repro.core.verification import verify_dictionary, verify_table

__all__ = [
    "SchemeParameters",
    "construct",
    "ConstructionResult",
    "LowContentionDictionary",
    "verify_table",
    "verify_dictionary",
]
