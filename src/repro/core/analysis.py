"""Closed-form per-step contention bounds for the Section 2 scheme.

Section 2.3's accounting, made executable: under a query distribution
uniform within positives (mass ``p``) and within negatives (mass
``1 - p``), each step's maximum cell contention is

====================  ==========================================================
coefficient rows      1/s exactly (every query, uniform over the row)
z row                 max_i q(g-bucket i) / z_copies(i)
GBAS row              max_j q(group j) / (s/m)
histogram rows        same as the GBAS row
perfect-hash row      max_b q(bucket b) / load(b)**2
data row              max cell mass: p/n for key cells (perfect hashing
                      sends each key to its own cell) plus the negative
                      mass landing on that exact cell
====================  ==========================================================

where q(bucket) = p * load/n + (1-p) * negative_load/(N-n).  Positive
masses use the *exact* construction loads; negative bucket masses are
computed exactly on request (``exact_negatives=True`` evaluates the hash
on the whole universe) or bounded by Lemma 10's 2(N-n)/k estimate.

The headline prediction of Theorem 3 is that every entry is O(1/n);
E1 compares these predictions against the measured contention matrix.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.construction import ConstructionResult


@dataclasses.dataclass(frozen=True)
class StepContentionBounds:
    """Per-step max-contention bounds plus their overall maximum."""

    coefficient: float
    z: float
    gbas: float
    histogram: float
    phf: float
    data: float

    @property
    def overall(self) -> float:
        return max(
            self.coefficient, self.z, self.gbas, self.histogram, self.phf,
            self.data,
        )

    def as_dict(self) -> dict:
        """Plain-dict form including the overall maximum."""
        return dataclasses.asdict(self) | {"overall": self.overall}


def _negative_loads(
    con: ConstructionResult,
    universe_size: int,
    hash_fn,
    range_size: int,
    exact: bool,
    chunk: int = 1 << 20,
) -> np.ndarray:
    """Loads of U \\ S under ``hash_fn`` — exact scan or Lemma 10 bound."""
    n = int(con.loads.sum())
    if not exact:
        # Lemma 10: for a domain-uniform hash, every negative load is
        # <= 2 (N - n) / k for large n; we return the bound as a flat array.
        bound = 2.0 * (universe_size - n) / range_size
        return np.full(range_size, bound)
    total = np.zeros(range_size, dtype=np.int64)
    for lo in range(0, universe_size, chunk):
        xs = np.arange(lo, min(lo + chunk, universe_size), dtype=np.int64)
        total += np.bincount(hash_fn.eval_batch(xs), minlength=range_size)
    pos = np.bincount(hash_fn.eval_batch(con_keys(con)), minlength=range_size)
    return (total - pos).astype(np.float64)


def con_keys(con: ConstructionResult) -> np.ndarray:
    """Recover the key set from the construction (data row contents)."""
    # The data row stores each key exactly once; loads/bincount give the
    # bucket ids, but the keys themselves are only in the table.
    p = con.params
    row = np.array(
        [con.table.peek(p.data_row, j) for j in range(p.s)], dtype=np.uint64
    )
    keys = row[row != np.uint64((1 << 64) - 1)].astype(np.int64)
    keys.sort()
    return keys


def predicted_step_bounds(
    con: ConstructionResult,
    universe_size: int,
    positive_mass: float = 0.5,
    exact_negatives: bool = False,
) -> StepContentionBounds:
    """Predicted per-step max contention for the built dictionary."""
    p = con.params
    n = p.n
    N = int(universe_size)
    pos, neg = float(positive_mass), 1.0 - float(positive_mass)
    neg_count = max(N - n, 1)

    # g-bucket masses.
    g_pos = np.bincount(con.h.g.eval_batch(con_keys(con)), minlength=p.r)
    g_neg = _negative_loads(con, N, con.h.g, p.r, exact_negatives)
    g_mass = pos * g_pos / n + neg * g_neg / neg_count
    z_copies = np.array([p.z_copies(i) for i in range(p.r)], dtype=np.float64)
    z_bound = float(np.max(g_mass / z_copies))

    # Group masses.
    grp_pos = con.group_loads.astype(np.float64)
    if exact_negatives:
        bucket_neg = _negative_loads(con, N, con.h, p.s, True)
        grp_neg = np.bincount(
            np.arange(p.s) % p.m, weights=bucket_neg, minlength=p.m
        )
    else:
        grp_neg = np.full(p.m, 2.0 * neg_count / p.m)
    grp_mass = pos * grp_pos / n + neg * grp_neg / neg_count
    grp_bound = float(np.max(grp_mass / p.group_size))

    # Bucket masses over perfect-hash spans.
    bucket_pos = con.loads.astype(np.float64)
    if exact_negatives:
        bucket_neg_exact = bucket_neg
    else:
        bucket_neg_exact = np.full(p.s, 2.0 * neg_count / p.s)
    bucket_mass = pos * bucket_pos / n + neg * bucket_neg_exact / neg_count
    span = np.maximum(con.loads.astype(np.float64) ** 2, 1.0)
    nonempty = con.loads > 0
    phf_bound = (
        float(np.max(bucket_mass[nonempty] / span[nonempty]))
        if nonempty.any()
        else 0.0
    )

    # Data row: a key's cell gets its own query mass p/n plus the
    # negative mass whose inner hash lands exactly there; bound the
    # latter by the bucket's negative mass (conservative).
    data_bound = pos / n + float(
        np.max(neg * bucket_neg_exact[nonempty] / neg_count / span[nonempty])
        if nonempty.any()
        else 0.0
    )

    return StepContentionBounds(
        coefficient=1.0 / p.s,
        z=z_bound,
        gbas=grp_bound,
        histogram=grp_bound,
        phf=phf_bound,
        data=data_bound,
    )


def optimal_contention(con: ConstructionResult) -> float:
    """The information-theoretic floor 1/s (paper: 1/s <= max Phi_t)."""
    return 1.0 / con.params.s


def contention_ratio(measured_max: float, con: ConstructionResult) -> float:
    """measured / optimal — Theorem 3 predicts O(1) * (s/n) = O(1)."""
    return measured_max / optimal_contention(con)
