"""Construction of the low-contention dictionary (paper Section 2.2).

Repeatedly sample f in H^d_s, g in H^d_r and z in [s]^r, forming
h = (f + z_g) mod s in R^d_{r,s} and h' = h mod m in R^d_{r,m}, until
property P(S) holds:

1. every coarse g-bucket load  <= c n / r          (Lemma 9(1));
2. every group load            <= ceil(c n / m)    (Lemma 9(2) — also
   guarantees the group histogram fits its rho words);
3. sum of squared bucket loads <= s                (Lemma 9(3), FKS).

By Lemma 9 the acceptance probability is >= 1/2 - o(1), so the expected
number of trials is O(1) and total construction time O(n) — E4 measures
both.  The accepted functions define the table layout:

====================  =========================================================
rows [0, d)           f coefficients, each replicated across the whole row
rows [d, 2d)          g coefficients, likewise
row 2d                z vector: T(2d, j) = z[j mod r]
row 2d+1              GBAS:     T(2d+1, j) = GBAS(j mod m)
rows [2d+2, 2d+2+rho) group histograms: word i of group (j mod m)
row 2d+2+rho          per-bucket perfect-hash words (replicated in-span)
row 2d+3+rho          data: key x at span_start(bucket) + h*(x)
====================  =========================================================

Bucket b (in [s]) belongs to group b mod m as its (b // m)-th member;
its owned span has length load(b)**2 and starts at
GBAS(b mod m) + sum of squared loads of earlier members of its group —
the paper's lexicographic arrangement.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cellprobe.table import EMPTY_CELL, Table
from repro.core.params import SchemeParameters
from repro.errors import ConstructionError
from repro.hashing.dm import DMHashFunction
from repro.hashing.perfect import PerfectHashFunction, find_perfect_hash
from repro.hashing.polynomial import PolynomialFamily
from repro.utils.bits import encode_unary_histogram
from repro.utils.primes import field_prime_for_universe
from repro.utils.rng import as_generator


@dataclasses.dataclass
class ConstructionResult:
    """Everything the query algorithm's *analysis* needs (private state).

    The honest query algorithm never touches this object beyond the
    table and the public scheme parameters; the contention engine and
    the plan validator use it for the closed-form probe distributions.
    """

    params: SchemeParameters
    prime: int
    table: Table
    h: DMHashFunction  # level hash with range s
    loads: np.ndarray  # per-bucket loads, len s
    group_loads: np.ndarray  # per-group loads, len m
    gbas: np.ndarray  # group base addresses, len m
    span_starts: np.ndarray  # per-bucket owned-span start, len s
    inner: list  # per-bucket PerfectHashFunction | None, len s
    trials: int  # rejection-sampling trials used
    hist_words: np.ndarray  # (m, rho) uint64 histogram words

    @property
    def g(self):
        return self.h.g

    @property
    def f(self):
        return self.h.f


def _check_property_p(
    params: SchemeParameters, keys: np.ndarray, h: DMHashFunction
) -> tuple[bool, np.ndarray, np.ndarray]:
    """Evaluate property P(S); returns (ok, bucket_loads, group_loads)."""
    g_loads = np.bincount(h.g.eval_batch(keys), minlength=params.r)
    if int(g_loads.max(initial=0)) > params.max_g_load:
        return False, None, None
    hv = h.eval_batch(keys)
    loads = np.bincount(hv, minlength=params.s).astype(np.int64)
    group_loads = np.bincount(hv % params.m, minlength=params.m).astype(np.int64)
    if int(group_loads.max(initial=0)) > params.max_group_load:
        return False, None, None
    if int(np.sum(loads**2)) > params.fks_budget:
        return False, None, None
    return True, loads, group_loads


def sample_until_property_p(
    params: SchemeParameters,
    keys: np.ndarray,
    prime: int,
    rng: np.random.Generator,
    max_trials: int = 500,
) -> tuple[DMHashFunction, np.ndarray, np.ndarray, int]:
    """Rejection-sample (f, g, z) until P(S) holds.

    Returns (h, bucket_loads, group_loads, trials).
    """
    f_family = PolynomialFamily(prime, params.s, params.degree)
    g_family = PolynomialFamily(prime, params.r, params.degree)
    for trial in range(1, max_trials + 1):
        f = f_family.sample(rng)
        g = g_family.sample(rng)
        z = rng.integers(0, params.s, size=params.r)
        h = DMHashFunction(f, g, z)
        ok, loads, group_loads = _check_property_p(params, keys, h)
        if ok:
            return h, loads, group_loads, trial
    raise ConstructionError(
        f"property P(S) not satisfied after {max_trials} trials "
        f"(n={params.n}, s={params.s}, m={params.m}, r={params.r})"
    )


def construct(
    keys,
    universe_size: int,
    params: SchemeParameters | None = None,
    rng=None,
    max_trials: int = 500,
) -> ConstructionResult:
    """Build the low-contention dictionary table for ``keys``.

    ``params`` defaults to :class:`SchemeParameters` with the paper's
    constants for ``n = len(keys)``.
    """
    rng = as_generator(rng)
    keys = np.asarray(sorted(int(k) for k in keys), dtype=np.int64)
    if keys.size < 2:
        raise ConstructionError("need at least 2 keys")
    if np.unique(keys).size != keys.size:
        raise ConstructionError("keys must be distinct")
    universe_size = int(universe_size)
    if int(keys[0]) < 0 or int(keys[-1]) >= universe_size:
        raise ConstructionError("keys must lie in [0, universe_size)")
    if params is None:
        params = SchemeParameters(n=int(keys.size))
    elif params.n != keys.size:
        raise ConstructionError(
            f"params.n={params.n} does not match {keys.size} keys"
        )
    prime = field_prime_for_universe(universe_size)

    h, loads, group_loads, trials = sample_until_property_p(
        params, keys, prime, rng, max_trials
    )
    s, m, r, rho = params.s, params.m, params.r, params.rho
    G = params.group_size

    # Group base addresses and per-bucket span starts (lexicographic:
    # all of group 0's buckets, then group 1's, ...; within a group,
    # member order k = bucket // m).
    sq = loads.astype(np.int64) ** 2
    bucket_ids = np.arange(s, dtype=np.int64)
    groups = bucket_ids % m
    members = bucket_ids // m
    group_sq_totals = np.bincount(groups, weights=sq, minlength=m).astype(np.int64)
    gbas = np.concatenate([[0], np.cumsum(group_sq_totals)[:-1]])
    # Within-group prefix of squared loads: order buckets by (group, member).
    order = np.lexsort((members, groups))
    sq_in_order = sq[order]
    prefix = np.concatenate([[0], np.cumsum(sq_in_order)[:-1]])
    group_of_ordered = groups[order]
    group_first = np.searchsorted(group_of_ordered, np.arange(m))
    within = prefix - prefix[group_first[group_of_ordered]]
    span_starts = np.empty(s, dtype=np.int64)
    span_starts[order] = gbas[group_of_ordered] + within

    table = Table(rows=params.num_rows, s=s)

    # Coefficient rows: word i of f then of g, replicated across the row.
    d = params.degree
    coeff_words = list(h.f.parameter_words()) + list(h.g.parameter_words())
    for i, word in enumerate(coeff_words):
        table.write_row(i, np.full(s, word, dtype=np.uint64))

    cols = np.arange(s, dtype=np.int64)
    table.write_row(params.z_row, h.z[cols % r].astype(np.uint64))
    table.write_row(params.gbas_row, gbas[cols % m].astype(np.uint64))

    # Group histograms: loads of members 0..G-1 of each group, unary.
    hist_words = np.zeros((m, rho), dtype=np.uint64)
    for j in range(m):
        member_loads = loads[j + m * np.arange(G, dtype=np.int64)]
        words = encode_unary_histogram(
            [int(v) for v in member_loads], params.word_bits
        )
        if len(words) > rho:
            raise ConstructionError(
                f"histogram of group {j} needs {len(words)} words > rho={rho}"
            )
        for i, w in enumerate(words):
            hist_words[j, i] = w
    for i, row in enumerate(params.histogram_rows):
        table.write_row(row, hist_words[cols % m, i])

    # Perfect-hash row and data row, span by span.
    inner: list = [None] * s
    nonempty = np.nonzero(loads)[0]
    # Group keys by bucket once (vectorized bucketing).
    hv = h.eval_batch(keys)
    key_order = np.argsort(hv, kind="stable")
    sorted_buckets = hv[key_order]
    boundaries = np.searchsorted(sorted_buckets, np.arange(s + 1))
    for b in nonempty:
        bucket_keys = keys[key_order[boundaries[b] : boundaries[b + 1]]]
        load = int(loads[b])
        h_star, _ = find_perfect_hash(bucket_keys, prime, load * load, rng)
        inner[b] = h_star
        start = int(span_starts[b])
        word = h_star.packed_word()
        for j in range(load * load):
            table.write(params.phf_row, start + j, word)
        for key in bucket_keys:
            table.write(params.data_row, start + h_star(int(key)), int(key))

    return ConstructionResult(
        params=params,
        prime=prime,
        table=table,
        h=h,
        loads=loads,
        group_loads=group_loads,
        gbas=gbas.astype(np.int64),
        span_starts=span_starts,
        inner=inner,
        trials=trials,
        hist_words=hist_words,
    )
