"""The low-contention dictionary facade and its query algorithm (§2.3).

The query for x proceeds in four phases, every random choice uniform
over its replica range:

1. **Hash recovery** — for each of the 2d coefficient rows, read one
   uniformly random cell (the whole row stores the same word); then read
   one random replica of z[g(x)] from the z row (columns ≡ g(x) mod r).
   Now h(x) = (f(x) + z_{g(x)}) mod s and h'(x) = h(x) mod m are known.
2. **Group metadata** — read one random replica of GBAS(h'(x)) (columns
   ≡ h'(x) mod m of the GBAS row) and one random replica of each of the
   rho histogram words of group h'(x); decode all bucket loads of the
   group.
3. **Bucket location** — the span of bucket h(x) starts at
   GBAS(h'(x)) + sum of squared loads of the group's earlier members
   and has length load**2; an empty bucket answers 0 immediately.
4. **Perfect hashing** — read the perfect-hash word at a uniformly
   random cell of the span, evaluate h*(x), and compare the key at
   span_start + h*(x).

Probes: one per row = 2d + rho + 4 total (2 fewer for empty buckets);
every step's distribution is uniform over a replica set of size
Ω(s / log n) or over a perfect-hash span, which is what drives the
O(1/n) contention of Theorem 3.
"""

from __future__ import annotations

import numpy as np

from repro.cellprobe.steps import BatchStridedStep, FixedCell, ProbeStep, UniformStrided
from repro.core.construction import ConstructionResult, construct
from repro.core.params import SchemeParameters
from repro.dictionaries.base import StaticDictionary
from repro.hashing.perfect import PerfectHashFunction
from repro.hashing.polynomial import PolynomialHashFunction, horner_eval_batch
from repro.utils.bits import (
    decode_unary_histogram,
    decode_unary_histogram_batch,
    unpack_pair_batch,
)
from repro.utils.rng import as_generator


class LowContentionDictionary(StaticDictionary):
    """Theorem 3's (O(n), b, O(1), O(1/n))-balanced cell-probing scheme."""

    name = "low-contention"

    def __init__(
        self,
        keys,
        universe_size: int,
        rng=None,
        params: SchemeParameters | None = None,
        max_trials: int = 500,
    ):
        rng = as_generator(rng)
        self.universe_size = int(universe_size)
        self.keys = self._sorted_keys(keys, self.universe_size)
        if params is None:
            params = SchemeParameters(n=self.n)
        self.construction: ConstructionResult = construct(
            self.keys, self.universe_size, params, rng, max_trials
        )
        self.params = self.construction.params
        self.table = self.construction.table
        self.prime = self.construction.prime
        # Vectorized per-bucket inner-hash parameters for batch plans.
        inner = self.construction.inner
        self._inner_a = np.array(
            [h.a if h else 0 for h in inner], dtype=np.uint64
        )
        self._inner_c = np.array(
            [h.c if h else 0 for h in inner], dtype=np.uint64
        )

    # -- honest query (reads only) -----------------------------------------------

    def query(self, x: int, rng=None) -> bool:
        x = self.check_key(x)
        rng = as_generator(rng)
        p = self.params
        table = self.table
        d = p.degree

        # Phase 1: recover f, g from random cells of the coefficient rows.
        words = [
            table.read(i, int(rng.integers(0, p.s)), i)
            for i in range(2 * d)
        ]
        f = PolynomialHashFunction(self.prime, p.s, words[:d])
        g = PolynomialHashFunction(self.prime, p.r, words[d:])
        gx = g(x)
        k = int(rng.integers(0, p.z_copies(gx)))
        z_val = table.read(p.z_row, gx + k * p.r, 2 * d)
        hx = (f(x) + z_val) % p.s
        group = hx % p.m
        member = hx // p.m

        # Phase 2: GBAS and the group histogram.
        k = int(rng.integers(0, p.group_size))
        gbas = table.read(p.gbas_row, group + k * p.m, 2 * d + 1)
        hist_words = []
        for i, row in enumerate(p.histogram_rows):
            k = int(rng.integers(0, p.group_size))
            hist_words.append(table.read(row, group + k * p.m, 2 * d + 2 + i))
        member_loads = decode_unary_histogram(
            hist_words, p.group_size, p.word_bits
        )

        # Phase 3: locate the bucket's span.
        load = member_loads[member]
        if load == 0:
            return False
        span_start = gbas + sum(v * v for v in member_loads[:member])
        span_len = load * load

        # Phase 4: perfect hash and the final comparison.
        j = int(rng.integers(0, span_len))
        phf_word = table.read(p.phf_row, span_start + j, 2 * d + 2 + p.rho)
        h_star = PerfectHashFunction.from_packed_word(
            phf_word, self.prime, span_len
        )
        probe = span_start + h_star(x)
        return table.read(p.data_row, probe, 2 * d + 3 + p.rho) == x

    def query_batch(self, xs: np.ndarray, rng=None) -> np.ndarray:
        """Vectorized honest query: same four phases, whole batch at once."""
        xs = self.check_keys_batch(xs)
        rng = as_generator(rng)
        batch = xs.shape[0]
        p = self.params
        table = self.table
        d = p.degree

        # Phase 1: recover f, g from random cells of the coefficient rows.
        words = [
            table.read_batch(i, rng.integers(0, p.s, size=batch), i)
            for i in range(2 * d)
        ]
        fx = horner_eval_batch(words[:d], xs, self.prime, p.s)
        gx = horner_eval_batch(words[d:], xs, self.prime, p.r)
        z_copies = (p.s - gx + p.r - 1) // p.r
        k = np.minimum(
            (rng.random(batch) * z_copies).astype(np.int64), z_copies - 1
        )
        z_val = table.read_batch(p.z_row, gx + k * p.r, 2 * d).astype(np.int64)
        hx = (fx + z_val) % p.s
        group = hx % p.m
        member = hx // p.m

        # Phase 2: GBAS and the group histogram.
        k = rng.integers(0, p.group_size, size=batch)
        gbas = table.read_batch(
            p.gbas_row, group + k * p.m, 2 * d + 1
        ).astype(np.int64)
        hist_words = np.stack(
            [
                table.read_batch(
                    row,
                    group + rng.integers(0, p.group_size, size=batch) * p.m,
                    2 * d + 2 + i,
                )
                for i, row in enumerate(p.histogram_rows)
            ],
            axis=1,
        )
        member_loads = decode_unary_histogram_batch(
            hist_words, p.group_size, p.word_bits
        )

        # Phase 3: locate the bucket's span.
        rows_idx = np.arange(batch)
        load = member_loads[rows_idx, member]
        nonempty = load > 0
        sq = member_loads * member_loads
        span_start = gbas + np.cumsum(sq, axis=1)[rows_idx, member] - sq[
            rows_idx, member
        ]
        span_len = load * load

        # Phase 4: perfect hash and the final comparison.
        sl = np.maximum(span_len, 1)
        j = np.minimum((rng.random(batch) * sl).astype(np.int64), sl - 1)
        phf_word = table.read_batch(
            p.phf_row,
            np.where(nonempty, span_start + j, -1),
            2 * d + 2 + p.rho,
        )
        a, c = unpack_pair_batch(phf_word)
        pf = np.uint64(self.prime)
        v = (a * (xs.astype(np.uint64) % pf) + c) % pf
        probe = span_start + (v % sl.astype(np.uint64)).astype(np.int64)
        data = table.read_batch(
            p.data_row, np.where(nonempty, probe, -1), 2 * d + 3 + p.rho
        )
        return nonempty & (data == xs.astype(np.uint64))

    # -- analytic probe plans ---------------------------------------------------------

    def probe_plan(self, x: int) -> list[ProbeStep]:
        x = self.check_key(x)
        p = self.params
        con = self.construction
        plan: list[ProbeStep] = [
            UniformStrided(row=i, start=0, stride=1, count=p.s)
            for i in range(2 * p.degree)
        ]
        gx = con.h.g(x)
        plan.append(
            UniformStrided(
                row=p.z_row, start=gx, stride=p.r, count=p.z_copies(gx)
            )
        )
        hx = con.h(x)
        group = hx % p.m
        plan.append(
            UniformStrided(
                row=p.gbas_row, start=group, stride=p.m, count=p.group_size
            )
        )
        for row in p.histogram_rows:
            plan.append(
                UniformStrided(
                    row=row, start=group, stride=p.m, count=p.group_size
                )
            )
        load = int(con.loads[hx])
        if load == 0:
            return plan
        start = int(con.span_starts[hx])
        plan.append(
            UniformStrided(
                row=p.phf_row, start=start, stride=1, count=load * load
            )
        )
        plan.append(FixedCell(p.data_row, start + con.inner[hx](x)))
        return plan

    def probe_plan_batch(self, xs: np.ndarray) -> list[BatchStridedStep]:
        xs = np.asarray(xs, dtype=np.int64)
        batch = xs.shape[0]
        p = self.params
        con = self.construction
        zeros = np.zeros(batch, dtype=np.int64)
        ones = np.ones(batch, dtype=np.int64)
        steps: list[BatchStridedStep] = [
            BatchStridedStep(
                row=i,
                starts=zeros,
                strides=ones,
                counts=np.full(batch, p.s, dtype=np.int64),
                shared=True,
            )
            for i in range(2 * p.degree)
        ]
        gx = con.h.g.eval_batch(xs)
        z_counts = (p.s - gx + p.r - 1) // p.r
        steps.append(
            BatchStridedStep(
                row=p.z_row,
                starts=gx,
                strides=np.full(batch, p.r, dtype=np.int64),
                counts=z_counts,
            )
        )
        hx = con.h.eval_batch(xs)
        group = hx % p.m
        group_counts = np.full(batch, p.group_size, dtype=np.int64)
        m_strides = np.full(batch, p.m, dtype=np.int64)
        steps.append(
            BatchStridedStep(
                row=p.gbas_row, starts=group, strides=m_strides,
                counts=group_counts,
            )
        )
        for row in p.histogram_rows:
            steps.append(
                BatchStridedStep(
                    row=row, starts=group, strides=m_strides,
                    counts=group_counts,
                )
            )
        load = con.loads[hx]
        nonempty = load > 0
        span_len = load.astype(np.int64) ** 2
        start = con.span_starts[hx]
        steps.append(
            BatchStridedStep(
                row=p.phf_row,
                starts=np.where(nonempty, start, 0),
                strides=ones,
                counts=np.where(nonempty, span_len, 0),
            )
        )
        pf = np.uint64(self.prime)
        xv = xs.astype(np.uint64) % pf
        v = (self._inner_a[hx] * xv + self._inner_c[hx]) % pf
        inner_pos = (v % np.maximum(span_len.astype(np.uint64), 1)).astype(np.int64)
        steps.append(
            BatchStridedStep(
                row=p.data_row,
                starts=np.where(nonempty, start + inner_pos, 0),
                strides=ones,
                counts=nonempty.astype(np.int64),
            )
        )
        return steps

    # -- metadata ---------------------------------------------------------------------

    def row_labels(self) -> list[str]:
        """Semantic name of each table row (for contention breakdowns)."""
        p = self.params
        labels = [f"f-coefficient-{i}" for i in range(p.degree)]
        labels += [f"g-coefficient-{i}" for i in range(p.degree)]
        labels += ["z-vector", "GBAS"]
        labels += [f"group-histogram-{i}" for i in range(p.rho)]
        labels += ["perfect-hash-spans", "data"]
        return labels

    @property
    def max_probes(self) -> int:
        return self.params.max_probes

    @property
    def construction_trials(self) -> int:
        """Rejection-sampling trials used to satisfy property P(S)."""
        return self.construction.trials
