"""Scheme parameters for the Section 2 construction.

The paper fixes c = 2e and asks for constants d > 2,
delta in (2/(d+2), 1 - 1/d), alpha > d / (c (ln c - 1)) and beta >= 2,
then derives

- r = n^(1-delta)          (coarse g-buckets),
- m = n / (alpha ln n)     (groups), adjusted so that m | s,
- s = beta n               (buckets / row width), rounded up to a
  multiple of m,
- group size G = s/m = Theta(log n) buckets per group,
- rho = ceil((G + ceil(c n / m)) / b) histogram words per group —
  O(1) because both terms are Theta(log n) = Theta(b).

:class:`SchemeParameters` validates the constraints and freezes the
derived integers; experiments sweep the constants through it (E13).
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ParameterError
from repro.utils.bits import WORD_BITS


@dataclasses.dataclass(frozen=True)
class SchemeParameters:
    """Validated parameters of the low-contention scheme for a given n.

    Parameters
    ----------
    n:
        Number of stored keys.
    degree:
        Independence degree d > 2 of the polynomial families.
    c:
        The load-slack constant; the paper uses c = 2e.
    delta:
        Exponent for r = n^(1-delta); ``None`` picks the midpoint of the
        legal interval (2/(d+2), 1 - 1/d).
    alpha:
        Group-count constant, m ~ n/(alpha ln n); must exceed
        d / (c (ln c - 1)).
    beta:
        Space factor, s ~ beta n; must be >= 2.
    word_bits:
        Cell width b (default 64).
    """

    n: int
    degree: int = 3
    c: float = 2.0 * math.e
    delta: float | None = None
    alpha: float = 1.25
    beta: float = 2.0
    word_bits: int = WORD_BITS

    # Derived (filled in __post_init__ via object.__setattr__).
    r: int = dataclasses.field(init=False)
    m: int = dataclasses.field(init=False)
    s: int = dataclasses.field(init=False)
    group_size: int = dataclasses.field(init=False)
    rho: int = dataclasses.field(init=False)
    max_group_load: int = dataclasses.field(init=False)

    def __post_init__(self):
        if self.n < 2:
            raise ParameterError("n must be >= 2")
        if self.degree <= 2:
            raise ParameterError("degree d must be > 2 (Lemma 9)")
        if self.c <= math.e:
            raise ParameterError("c must exceed e (Theorem 7)")
        lo, hi = 2.0 / (self.degree + 2.0), 1.0 - 1.0 / self.degree
        delta = (lo + hi) / 2.0 if self.delta is None else float(self.delta)
        if not lo < delta < hi:
            raise ParameterError(
                f"delta must lie in ({lo:.4f}, {hi:.4f}), got {delta}"
            )
        object.__setattr__(self, "delta", delta)
        alpha_min = self.degree / (self.c * (math.log(self.c) - 1.0))
        if self.alpha <= alpha_min:
            raise ParameterError(
                f"alpha must exceed d/(c(ln c - 1)) = {alpha_min:.4f}, "
                f"got {self.alpha}"
            )
        if self.beta < 2.0:
            raise ParameterError("beta must be >= 2")
        if self.word_bits < 8:
            raise ParameterError("word_bits must be >= 8")

        n = self.n
        r = max(2, round(n ** (1.0 - delta)))
        log_n = max(math.log(n), 1.0)
        m = max(1, min(n, round(n / (self.alpha * log_n))))
        # s: smallest multiple of m that is >= beta*n.
        target = int(math.ceil(self.beta * n))
        s = ((target + m - 1) // m) * m
        group_size = s // m
        max_group_load = int(math.ceil(self.c * n / m))
        hist_bits = group_size + max_group_load
        rho = max(1, (hist_bits + self.word_bits - 1) // self.word_bits)
        object.__setattr__(self, "r", r)
        object.__setattr__(self, "m", m)
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "group_size", group_size)
        object.__setattr__(self, "rho", rho)
        object.__setattr__(self, "max_group_load", max_group_load)

    # -- row layout ---------------------------------------------------------------

    @property
    def coefficient_rows(self) -> int:
        """Rows [0, 2d): the f and g coefficient words, one per row."""
        return 2 * self.degree

    @property
    def z_row(self) -> int:
        return 2 * self.degree

    @property
    def gbas_row(self) -> int:
        return 2 * self.degree + 1

    @property
    def histogram_rows(self) -> range:
        start = 2 * self.degree + 2
        return range(start, start + self.rho)

    @property
    def phf_row(self) -> int:
        return 2 * self.degree + 2 + self.rho

    @property
    def data_row(self) -> int:
        return 2 * self.degree + 3 + self.rho

    @property
    def num_rows(self) -> int:
        """Total rows = 2d + rho + 4 = O(1)."""
        return 2 * self.degree + self.rho + 4

    @property
    def max_probes(self) -> int:
        """One probe per row: 2d + rho + 4 (empty buckets stop 2 early)."""
        return self.num_rows

    @property
    def space_words(self) -> int:
        """Total table cells: num_rows * s = O(n)."""
        return self.num_rows * self.s

    # -- load-condition thresholds (property P(S)) -----------------------------------

    @property
    def max_g_load(self) -> float:
        """Lemma 9(1) threshold: every g-bucket load <= c*n/r."""
        return self.c * self.n / self.r

    @property
    def max_group_load_threshold(self) -> float:
        """Lemma 9(2) threshold: every group load <= c*n/m."""
        return self.c * self.n / self.m

    @property
    def fks_budget(self) -> int:
        """Lemma 9(3) threshold: sum of squared bucket loads <= s."""
        return self.s

    def z_copies(self, g_value: int) -> int:
        """Replicas of z[g_value] in the z row: |{j < s : j ≡ g_value (mod r)}|."""
        if not 0 <= g_value < self.r:
            raise ParameterError(f"g_value {g_value} outside [0, {self.r})")
        return (self.s - g_value + self.r - 1) // self.r
