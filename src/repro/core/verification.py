"""Independent verification of a built low-contention table.

Deployment scenario: a table arrives from elsewhere (deserialized,
mmap'd, built by another process) and must be trusted to answer
membership correctly with the advertised contention profile.  The
verifier checks the *cells alone* (plus the public scheme parameters)
against every structural invariant of Section 2.2 — it never consults
construction-private state, so it would catch a corrupted or forged
table that the builder-side analytics cannot see:

1. the coefficient rows are constant and encode valid field elements;
2. the z row is r-periodic with entries in [s];
3. the GBAS row is m-periodic, non-decreasing across groups, bounded
   by s, and consistent with the histogram loads;
4. every group histogram decodes to exactly group_size loads whose
   squared sums reproduce the GBAS increments, with total load = n;
5. every perfect-hash span is constantly filled with a word whose
   function is injective on the span's keys;
6. the data row contains each stored key exactly once, at its
   perfect-hash position, with EMPTY everywhere unowned;
7. (optional, given the intended key set) the stored keys equal it.

``verify_table`` returns a list of human-readable violation strings —
empty means the table is valid.
"""

from __future__ import annotations

import numpy as np

from repro.cellprobe.table import EMPTY_CELL, Table
from repro.core.params import SchemeParameters
from repro.hashing.perfect import PerfectHashFunction
from repro.hashing.polynomial import PolynomialHashFunction
from repro.utils.bits import decode_unary_histogram


def verify_table(
    table: Table,
    params: SchemeParameters,
    prime: int,
    expected_keys=None,
    max_violations: int = 20,
) -> list[str]:
    """Check all Section 2.2 invariants; returns violations (empty = ok)."""
    problems: list[str] = []

    def report(msg: str) -> bool:
        problems.append(msg)
        return len(problems) >= max_violations

    p = params
    s = p.s
    if table.rows != p.num_rows or table.s != s:
        return [
            f"table shape ({table.rows}, {table.s}) does not match params "
            f"({p.num_rows}, {s})"
        ]
    cells = table._cells

    # 1. Coefficient rows constant + valid residues.
    for row in range(2 * p.degree):
        word = int(cells[row, 0])
        if not (cells[row] == np.uint64(word)).all():
            if report(f"coefficient row {row} is not constant"):
                return problems
        if word >= prime:
            if report(f"coefficient row {row} holds {word} >= prime"):
                return problems

    # Recover f, g, h', h from the cells (what an honest reader gets).
    f = PolynomialHashFunction(
        prime, s, [int(cells[i, 0]) for i in range(p.degree)]
    )
    g = PolynomialHashFunction(
        prime, p.r, [int(cells[p.degree + i, 0]) for i in range(p.degree)]
    )

    # 2. z row periodicity and range.
    z_row = cells[p.z_row].astype(np.int64)
    base_z = z_row[: p.r]
    if np.any(base_z < 0) or np.any(base_z >= s):
        if report("z entries out of [0, s)"):
            return problems
    cols = np.arange(s)
    if not np.array_equal(z_row, base_z[cols % p.r]):
        if report("z row is not r-periodic"):
            return problems

    # 3/4. GBAS + histograms.
    gbas = cells[p.gbas_row].astype(np.int64)
    base_gbas = gbas[: p.m]
    if not np.array_equal(gbas, base_gbas[cols % p.m]):
        if report("GBAS row is not m-periodic"):
            return problems
    loads = np.zeros(s, dtype=np.int64)
    running = 0
    for group in range(p.m):
        if int(base_gbas[group]) != running:
            if report(
                f"GBAS({group}) = {int(base_gbas[group])}, expected {running}"
            ):
                return problems
        words = [int(cells[row, group]) for row in p.histogram_rows]
        # Histogram rows must be m-periodic too.
        for row in p.histogram_rows:
            hist_row = cells[row].astype(np.uint64)
            if not np.array_equal(hist_row, hist_row[cols % p.m]):
                if report(f"histogram row {row} is not m-periodic"):
                    return problems
        try:
            member_loads = decode_unary_histogram(
                words, p.group_size, p.word_bits
            )
        except Exception as exc:  # malformed histogram
            if report(f"group {group} histogram does not decode: {exc}"):
                return problems
            continue
        for k, load in enumerate(member_loads):
            loads[k * p.m + group] = load
            running += load * load
        if running > s:
            if report(f"group {group} pushes span space past s"):
                return problems
    total_load = int(loads.sum())
    if total_load != p.n:
        if report(f"histogram loads sum to {total_load}, expected n = {p.n}"):
            return problems

    # 5/6. Spans: constant perfect-hash words, keys at h* positions.
    span_starts = np.zeros(s, dtype=np.int64)
    order = np.lexsort((np.arange(s) // p.m, np.arange(s) % p.m))
    pos = 0
    for b in order:
        span_starts[b] = pos
        pos += int(loads[b]) ** 2
    data = cells[p.data_row]
    phf = cells[p.phf_row]
    owned = np.zeros(s, dtype=bool)
    seen_keys: list[int] = []
    for b in np.nonzero(loads)[0]:
        start = int(span_starts[b])
        span = int(loads[b]) ** 2
        owned[start : start + span] = True
        words = phf[start : start + span]
        if not (words == words[0]).all():
            if report(f"bucket {b}: perfect-hash span not constant"):
                return problems
        h_star = PerfectHashFunction.from_packed_word(
            int(words[0]), prime, span
        )
        span_keys = data[start : start + span]
        present = span_keys != np.uint64(EMPTY_CELL)
        if int(present.sum()) != int(loads[b]):
            if report(
                f"bucket {b}: {int(present.sum())} keys stored, "
                f"histogram says {int(loads[b])}"
            ):
                return problems
            continue
        for offset in np.nonzero(present)[0]:
            key = int(span_keys[offset])
            seen_keys.append(key)
            if h_star(key) != int(offset):
                if report(f"bucket {b}: key {key} at wrong h* position"):
                    return problems
            # The key must genuinely belong to bucket b under (f, g, z).
            h_val = (f(key) + int(base_z[g(key)])) % s
            if h_val != int(b):
                if report(f"key {key} stored in bucket {b}, hashes to {h_val}"):
                    return problems

    # Unowned data cells must be EMPTY.
    stray = (~owned) & (data != np.uint64(EMPTY_CELL))
    if stray.any():
        if report(f"{int(stray.sum())} unowned data cells are non-empty"):
            return problems

    # 7. Key-set match.
    if expected_keys is not None:
        expected = sorted(int(k) for k in expected_keys)
        if sorted(seen_keys) != expected:
            report("stored key set differs from the expected key set")
    elif len(set(seen_keys)) != len(seen_keys):
        report("a key is stored more than once")

    return problems


def verify_dictionary(dictionary, expected_keys=None) -> list[str]:
    """Convenience wrapper: verify a LowContentionDictionary's own table."""
    return verify_table(
        dictionary.table,
        dictionary.params,
        dictionary.prime,
        expected_keys=(
            dictionary.keys if expected_keys is None else expected_keys
        ),
    )
