"""Static membership dictionaries on the instrumented cell-probe table.

Baselines from the paper's Section 1 / 1.3 discussion:

- :class:`~repro.dictionaries.sorted_array.SortedArrayDictionary` —
  binary search ("the entry in the middle of the table is accessed on
  every query");
- :class:`~repro.dictionaries.linear_probing.LinearProbingDictionary` —
  open addressing, a practical non-constant-probe baseline;
- :class:`~repro.dictionaries.fks.FKSDictionary` — two-level perfect
  hashing [FKS84], whose bucket-header cells have contention
  proportional to bucket loads (Θ(√n)×optimal worst case for a
  2-universal level-1 family);
- :class:`~repro.dictionaries.dm_dict.DMDictionary` — FKS with the
  Dietzfelbinger–Meyer auf der Heide level-1 family R^d_{r,m};
- :class:`~repro.dictionaries.cuckoo.CuckooDictionary` — static cuckoo
  hashing [PR04], contention Θ(max bucket multiplicity / n) =
  Θ(ln n / ln ln n)×optimal.

All of them store their hash-function parameters *in table cells* and
read them with charged probes — the query algorithms are honest uniform
algorithms in the paper's sense.  The ``param_replication`` knob
reproduces §1.3's "storing the hash function redundantly" comparison
(``"row"`` = one word interleaved over a full row, the default; an int
gives partial replication; 1 is the classic single-copy layout with
contention 1 on the parameter cells).

The paper's own construction lives in :mod:`repro.core`.
"""

from repro.dictionaries.base import StaticDictionary
from repro.dictionaries.cuckoo import CuckooDictionary
from repro.dictionaries.dm_dict import DMDictionary
from repro.dictionaries.fks import FKSDictionary
from repro.dictionaries.linear_probing import LinearProbingDictionary
from repro.dictionaries.replicated import ReplicatedDictionary
from repro.dictionaries.sorted_array import SortedArrayDictionary

__all__ = [
    "StaticDictionary",
    "SortedArrayDictionary",
    "LinearProbingDictionary",
    "FKSDictionary",
    "DMDictionary",
    "CuckooDictionary",
    "ReplicatedDictionary",
]
