"""The ``StaticDictionary`` protocol and shared layout helpers.

Every dictionary in this library satisfies the same contract:

- ``query(x, rng)`` — the honest uniform query algorithm: computes its
  probe addresses *only* from the query, its own randomness, and values
  already read from the table (the paper's model: A may depend on f but
  not on S or q).
- ``probe_plan(x)`` — the analytic per-step probe distributions for
  query ``x``, computed from the builder's private state; used by the
  exact contention engine and validated against executions by
  :class:`~repro.cellprobe.machine.CellProbeMachine`.
- ``probe_plan_batch(xs)`` — the vectorized plan for a query batch.

Parameter words are laid out *interleaved* in a parameter row: word ``j``
of ``W`` is replicated at columns ``{j + k*W}``; a query reads each word
once at a uniformly random replica, giving per-word contention
``~W/s`` — the §1.3 "store the hash function redundantly" scheme.  With
``param_replication=1`` each word is stored once (columns ``j`` only),
recovering the classic high-contention layout.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.cellprobe.steps import BatchStridedStep, ProbeStep, UniformStrided
from repro.cellprobe.table import Table
from repro.errors import ParameterError, QueryError
from repro.utils.rng import as_generator


def resolve_replication(param_replication, s: int, words: int) -> int:
    """Number of replicas of each parameter word.

    ``"row"`` (default) spreads copies over the whole row: ``floor(s/W)``
    replicas of each of the ``W`` interleaved words.  An integer requests
    that many replicas (clipped to the row capacity).
    """
    capacity = s // words
    if capacity < 1:
        raise ParameterError(
            f"table width {s} cannot hold {words} interleaved parameter words"
        )
    if param_replication == "row":
        return capacity
    replication = int(param_replication)
    if replication < 1:
        raise ParameterError("param_replication must be >= 1 or 'row'")
    return min(replication, capacity)


def write_interleaved_params(
    table: Table, row: int, words: Sequence[int], replication: int
) -> None:
    """Store ``words[j]`` at columns ``j + k*W`` for ``k < replication``."""
    W = len(words)
    for j, word in enumerate(words):
        for k in range(replication):
            table.write(row, j + k * W, int(word))


def param_read_step(row: int, j: int, words: int, replication: int) -> UniformStrided:
    """The probe step reading parameter word ``j`` of ``words``."""
    return UniformStrided(row=row, start=j, stride=words, count=replication)


def param_read_steps(
    row: int, words: int, replication: int
) -> list[UniformStrided]:
    """One probe step per parameter word (each a uniform replica choice)."""
    return [param_read_step(row, j, words, replication) for j in range(words)]


def batch_from_step(step: ProbeStep, batch: int) -> BatchStridedStep:
    """Broadcast a single shared step over a batch (``shared=True``)."""
    if isinstance(step, UniformStrided):
        start, stride, count = step.start, step.stride, step.count
    else:
        support = step.support()
        if support.size != 1:
            raise ParameterError("only strided/fixed steps can be broadcast")
        start, stride, count = int(support[0]), 1, 1
    return BatchStridedStep(
        row=step.row,
        starts=np.full(batch, start, dtype=np.int64),
        strides=np.full(batch, stride, dtype=np.int64),
        counts=np.full(batch, count, dtype=np.int64),
        shared=True,
    )


def read_interleaved_params_batch(
    table: Table,
    row: int,
    words: int,
    replication: int,
    batch: int,
    rng: np.random.Generator,
    first_step: int = 0,
) -> list[np.ndarray]:
    """Read each interleaved parameter word once per query in a batch.

    Word ``j`` is probed at a uniformly random replica column
    ``j + k*words`` for every query (step ``first_step + j``), exactly as
    the scalar query algorithms do.  Returns one uint64 value array per
    word.
    """
    values = []
    for j in range(words):
        k = rng.integers(0, replication, size=batch)
        values.append(table.read_batch(row, j + k * words, first_step + j))
    return values


class StaticDictionary(abc.ABC):
    """A static membership dictionary over ``[universe_size]``.

    Subclasses set ``table``, ``keys`` (sorted int64 array) and
    ``universe_size`` during construction.
    """

    table: Table
    keys: np.ndarray
    universe_size: int

    #: Human-readable scheme name (used in experiment tables).
    name: str = "static"

    # -- queries -----------------------------------------------------------------

    @abc.abstractmethod
    def query(self, x: int, rng=None) -> bool:
        """Honest membership query; every table read is a charged probe."""

    @abc.abstractmethod
    def probe_plan(self, x: int) -> list[ProbeStep]:
        """Exact per-step probe distributions for query ``x``."""

    @abc.abstractmethod
    def probe_plan_batch(self, xs: np.ndarray) -> list[BatchStridedStep]:
        """Vectorized probe plans for a batch of queries."""

    def query_batch(self, xs: np.ndarray, rng=None) -> np.ndarray:
        """Honest membership queries for a whole batch.

        Semantically equivalent to ``[self.query(x, rng) for x in xs]``
        (same probes charged, same per-step accounting); subclasses
        override with vectorized implementations.  This base fallback
        runs the scalar algorithm per key.
        """
        rng = as_generator(rng)
        xs = np.asarray(xs, dtype=np.int64)
        out = np.empty(xs.shape, dtype=bool)
        for i, x in enumerate(xs.ravel()):
            out.ravel()[i] = self.query(int(x), rng)
        return out

    # -- shared helpers -------------------------------------------------------------

    def check_keys_batch(self, xs: np.ndarray) -> np.ndarray:
        """Validate a batch of queries against the universe; returns int64."""
        xs = np.asarray(xs, dtype=np.int64)
        if xs.size and (
            int(xs.min()) < 0 or int(xs.max()) >= self.universe_size
        ):
            bad = xs[(xs < 0) | (xs >= self.universe_size)][0]
            raise QueryError(
                f"query {int(bad)} outside universe [0, {self.universe_size})"
            )
        return xs

    def contains(self, x: int) -> bool:
        """Ground-truth membership (no probes; used for verification)."""
        x = int(x)
        i = int(np.searchsorted(self.keys, x))
        return i < self.keys.size and int(self.keys[i]) == x

    def contains_batch(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized ground-truth membership."""
        xs = np.asarray(xs, dtype=np.int64)
        idx = np.searchsorted(self.keys, xs)
        idx_c = np.minimum(idx, self.keys.size - 1)
        return (idx < self.keys.size) & (self.keys[idx_c] == xs)

    @property
    def n(self) -> int:
        """Number of stored keys."""
        return int(self.keys.size)

    @property
    def space_words(self) -> int:
        """Total space in b-bit words (the paper's s, times rows)."""
        return self.table.num_cells

    @property
    @abc.abstractmethod
    def max_probes(self) -> int:
        """Worst-case probes per query (the paper's t)."""

    def row_labels(self) -> list[str]:
        """Semantic name of each table row (for contention breakdowns)."""
        return [f"row{r}" for r in range(self.table.rows)]

    def check_key(self, x: int) -> int:
        """Validate that a query lies in the universe; returns it as int."""
        x = int(x)
        if not 0 <= x < self.universe_size:
            raise QueryError(
                f"query {x} outside universe [0, {self.universe_size})"
            )
        return x

    @staticmethod
    def _sorted_keys(keys, universe_size: int) -> np.ndarray:
        arr = np.asarray(sorted(int(k) for k in keys), dtype=np.int64)
        if arr.size == 0:
            raise ParameterError("key set must be non-empty")
        if np.unique(arr).size != arr.size:
            raise ParameterError("keys must be distinct")
        if int(arr[0]) < 0 or int(arr[-1]) >= universe_size:
            raise ParameterError("keys must lie in [0, universe_size)")
        return arr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.n}, N={self.universe_size}, "
            f"space={self.space_words}w, t<={self.max_probes})"
        )
