"""Static cuckoo hashing [Pagh–Rodler 2004].

Two tables T1, T2 of size ``(1+eps) n`` each; key x lives at T1[h1(x)]
or T2[h2(x)].  Queries always probe T1[h1(x)] first, then T2[h2(x)] if
needed, so the contention of a T1 cell is the query mass of its h1
preimage within the support — Θ(max bucket multiplicity / n) =
Θ(ln n / ln ln n) × optimal for near-random hashing under uniform
positive queries (§1.3), again independent of parameter replication.

Layout: row 0 — parameter words (h1 and h2 packed, 2 words) interleaved
and replicated; row 1 — T1; row 2 — T2.  Probes <= 4.

Construction uses the standard eviction walk with full rehash on
failure; with 2-universal packed hashes and eps = 0.3 random instances
build in expected O(n).
"""

from __future__ import annotations

import numpy as np

from repro.cellprobe.steps import BatchStridedStep, FixedCell, ProbeStep
from repro.cellprobe.table import EMPTY_CELL, Table
from repro.dictionaries.base import (
    StaticDictionary,
    batch_from_step,
    param_read_steps,
    read_interleaved_params_batch,
    resolve_replication,
    write_interleaved_params,
)
from repro.errors import ConstructionError
from repro.hashing.perfect import PerfectHashFunction
from repro.hashing.polynomial import horner_eval_batch
from repro.utils.bits import unpack_pair_batch
from repro.utils.primes import field_prime_for_universe
from repro.utils.rng import as_generator

_PARAM_ROW, _T1_ROW, _T2_ROW = 0, 1, 2
_NO_KEY = -1


class CuckooDictionary(StaticDictionary):
    """Static two-table cuckoo hashing with <= 4 probes."""

    name = "cuckoo"

    def __init__(
        self,
        keys,
        universe_size: int,
        rng=None,
        epsilon: float = 0.3,
        param_replication="row",
        max_rehashes: int = 100,
    ):
        if epsilon <= 0:
            raise ConstructionError("epsilon must be positive")
        rng = as_generator(rng)
        self.universe_size = int(universe_size)
        self.keys = self._sorted_keys(keys, self.universe_size)
        self.prime = field_prime_for_universe(self.universe_size)
        n = self.n
        self.side_size = max(int(np.ceil((1.0 + float(epsilon)) * n)), 2)

        self.rehashes = 0
        for _ in range(max_rehashes):
            h1 = self._sample_hash(rng)
            h2 = self._sample_hash(rng)
            slots1, slots2 = self._try_build(h1, h2, rng)
            if slots1 is not None:
                break
            self.rehashes += 1
        else:
            raise ConstructionError(
                f"cuckoo build failed after {max_rehashes} rehashes"
            )
        self.h1, self.h2 = h1, h2
        self._slots1, self._slots2 = slots1, slots2

        s = self.side_size
        self.replication = resolve_replication(param_replication, s, 2)
        self.table = Table(rows=3, s=s)
        write_interleaved_params(
            self.table,
            _PARAM_ROW,
            [self.h1.packed_word(), self.h2.packed_word()],
            self.replication,
        )
        for row, slots in ((_T1_ROW, slots1), (_T2_ROW, slots2)):
            occupied = slots != _NO_KEY
            vals = np.where(occupied, slots, np.int64(0)).astype(np.uint64)
            vals[~occupied] = np.uint64(EMPTY_CELL)
            self.table.write_row(row, vals)

    def _sample_hash(self, rng: np.random.Generator) -> PerfectHashFunction:
        a = int(rng.integers(0, self.prime))
        c = int(rng.integers(0, self.prime))
        return PerfectHashFunction(self.prime, a, c, self.side_size)

    def _try_build(self, h1, h2, rng):
        """Eviction-walk insertion; returns (slots1, slots2) or (None, None)."""
        slots1 = np.full(self.side_size, _NO_KEY, dtype=np.int64)
        slots2 = np.full(self.side_size, _NO_KEY, dtype=np.int64)
        max_walk = max(32, 8 * int(np.ceil(np.log2(self.n + 1))))
        for key in self.keys:
            cur = int(key)
            side = 0
            for _ in range(max_walk):
                if side == 0:
                    pos = h1(cur)
                    cur, slots1[pos] = int(slots1[pos]), cur
                else:
                    pos = h2(cur)
                    cur, slots2[pos] = int(slots2[pos]), cur
                if cur == _NO_KEY:
                    break
                side ^= 1
            else:
                return None, None
        return slots1, slots2

    # -- queries -----------------------------------------------------------------

    def query(self, x: int, rng=None) -> bool:
        x = self.check_key(x)
        rng = as_generator(rng)
        words = []
        for j in range(2):
            replica = int(rng.integers(0, self.replication))
            words.append(self.table.read(_PARAM_ROW, j + replica * 2, j))
        h1 = PerfectHashFunction.from_packed_word(words[0], self.prime, self.side_size)
        h2 = PerfectHashFunction.from_packed_word(words[1], self.prime, self.side_size)
        if self.table.read(_T1_ROW, h1(x), 2) == x:
            return True
        return self.table.read(_T2_ROW, h2(x), 3) == x

    def query_batch(self, xs: np.ndarray, rng=None) -> np.ndarray:
        xs = self.check_keys_batch(xs)
        rng = as_generator(rng)
        batch = xs.shape[0]
        w1, w2 = read_interleaved_params_batch(
            self.table, _PARAM_ROW, 2, self.replication, batch, rng
        )
        a1, c1 = unpack_pair_batch(w1)
        a2, c2 = unpack_pair_batch(w2)
        pos1 = horner_eval_batch([c1, a1], xs, self.prime, self.side_size)
        xs_u = xs.astype(np.uint64)
        hit1 = self.table.read_batch(_T1_ROW, pos1, 2) == xs_u
        pos2 = horner_eval_batch([c2, a2], xs, self.prime, self.side_size)
        hit2 = (
            self.table.read_batch(_T2_ROW, np.where(hit1, -1, pos2), 3) == xs_u
        )
        return hit1 | hit2

    def probe_plan(self, x: int) -> list[ProbeStep]:
        x = self.check_key(x)
        plan: list[ProbeStep] = list(
            param_read_steps(_PARAM_ROW, 2, self.replication)
        )
        pos1 = self.h1(x)
        plan.append(FixedCell(_T1_ROW, pos1))
        if int(self._slots1[pos1]) != x:
            plan.append(FixedCell(_T2_ROW, self.h2(x)))
        return plan

    def probe_plan_batch(self, xs: np.ndarray) -> list[BatchStridedStep]:
        xs = np.asarray(xs, dtype=np.int64)
        batch = xs.shape[0]
        steps = [
            batch_from_step(step, batch)
            for step in param_read_steps(_PARAM_ROW, 2, self.replication)
        ]
        ones = np.ones(batch, dtype=np.int64)
        pos1 = self.h1.eval_batch(xs)
        steps.append(
            BatchStridedStep(row=_T1_ROW, starts=pos1, strides=ones, counts=ones)
        )
        miss1 = self._slots1[pos1] != xs
        pos2 = self.h2.eval_batch(xs)
        steps.append(
            BatchStridedStep(
                row=_T2_ROW,
                starts=np.where(miss1, pos2, 0),
                strides=ones,
                counts=miss1.astype(np.int64),
            )
        )
        return steps

    def row_labels(self) -> list[str]:
        """Semantic name of each table row (for contention breakdowns)."""
        return ["hash-params", "table-T1", "table-T2"]

    @property
    def max_probes(self) -> int:
        return 4
