"""FKS with the Dietzfelbinger–Meyer auf der Heide level-1 family (DM).

Identical two-level structure to :class:`~repro.dictionaries.fks.FKSDictionary`
but the level-1 function is drawn from R^d_{r,n} (Definition 4), giving
much tighter bucket loads (Lemma 9(2): max load O(log n) buckets —
and for fully random behaviour, Θ(ln n / ln ln n)); §1.3 credits the
replicated variant with contention Θ(ln n / ln ln n) × optimal versus
FKS's Θ(√n) × optimal.

Layout:

- row 0 — f and g coefficients (2d words) interleaved, replicated;
- row 1 — z vector: T(1, j) = z[j mod r] (the paper's replication scheme
  for z inside the Section 2 construction);
- row 2 / row 3 — bucket headers A (offset, load) and B (perfect hash);
- row 4 — data.

Probes: 2d parameter reads + 1 z read + headers + data = 2d + 4.
"""

from __future__ import annotations

import numpy as np

from repro.cellprobe.steps import BatchStridedStep, FixedCell, ProbeStep, UniformStrided
from repro.cellprobe.table import Table
from repro.dictionaries.base import (
    StaticDictionary,
    batch_from_step,
    param_read_steps,
    read_interleaved_params_batch,
    resolve_replication,
    write_interleaved_params,
)
from repro.errors import ConstructionError
from repro.hashing.dm import DMFamily, DMHashFunction
from repro.hashing.perfect import PerfectHashFunction, find_perfect_hash
from repro.hashing.polynomial import horner_eval_batch
from repro.utils.bits import pack_pair, unpack_pair, unpack_pair_batch
from repro.utils.primes import field_prime_for_universe
from repro.utils.rng import as_generator

_PARAM_ROW, _Z_ROW, _HEADER_A_ROW, _HEADER_B_ROW, _DATA_ROW = 0, 1, 2, 3, 4


def default_r(n: int, degree: int) -> int:
    """The paper's r = n^(1-delta) with delta in (2/(d+2), 1-1/d).

    We take delta at the midpoint of its legal interval for the given
    degree, so r is valid for any d > 2.
    """
    lo, hi = 2.0 / (degree + 2.0), 1.0 - 1.0 / degree
    delta = (lo + hi) / 2.0
    return max(2, int(round(n ** (1.0 - delta))))


class DMDictionary(StaticDictionary):
    """Two-level dictionary with a DM-family level-1 hash."""

    name = "dm"

    def __init__(
        self,
        keys,
        universe_size: int,
        rng=None,
        degree: int = 3,
        r: int | None = None,
        space_factor: float = 4.0,
        param_replication="row",
        max_level1_trials: int = 200,
    ):
        if degree < 2:
            raise ConstructionError("degree must be >= 2")
        if space_factor < 2.0:
            raise ConstructionError("space_factor must be >= 2")
        rng = as_generator(rng)
        self.universe_size = int(universe_size)
        self.keys = self._sorted_keys(keys, self.universe_size)
        self.prime = field_prime_for_universe(self.universe_size)
        n = self.n
        self.num_buckets = n
        self.degree = degree
        self.r = default_r(n, degree) if r is None else int(r)
        if self.r < 1:
            raise ConstructionError("r must be >= 1")
        self.family = DMFamily(self.prime, self.num_buckets, self.r, degree)

        budget = int(space_factor * n)
        self.level1_trials = 0
        for _ in range(max_level1_trials):
            self.level1_trials += 1
            level1 = self.family.sample(rng)
            loads = level1.loads(self.keys)
            if int(np.sum(loads.astype(np.int64) ** 2)) <= budget:
                break
        else:
            raise ConstructionError(
                f"FKS condition failed in {max_level1_trials} trials"
            )
        self.level1: DMHashFunction = level1
        self.loads = loads
        self.offsets = np.concatenate(
            [[0], np.cumsum(loads.astype(np.int64) ** 2)[:-1]]
        )
        data_width = int(np.sum(loads.astype(np.int64) ** 2))

        self.param_words = (
            level1.f.parameter_words() + level1.g.parameter_words()
        )
        W = len(self.param_words)  # 2d coefficient words
        s = max(self.num_buckets, data_width, self.r, W)
        self.replication = resolve_replication(param_replication, s, W)
        self.table = Table(rows=5, s=s)
        write_interleaved_params(
            self.table, _PARAM_ROW, self.param_words, self.replication
        )
        # z row: T(1, j) = z[j mod r] over the whole row.
        cols = np.arange(s, dtype=np.int64)
        self.table.write_row(_Z_ROW, level1.z[cols % self.r].astype(np.uint64))

        self.inner: list[PerfectHashFunction | None] = [None] * self.num_buckets
        buckets = level1.buckets(self.keys)
        for i in range(self.num_buckets):
            load = int(self.loads[i])
            self.table.write(
                _HEADER_A_ROW, i, pack_pair(int(self.offsets[i]), load)
            )
            if load == 0:
                continue
            h_star, _ = find_perfect_hash(buckets[i], self.prime, load * load, rng)
            self.inner[i] = h_star
            self.table.write(_HEADER_B_ROW, i, h_star.packed_word())
            base = int(self.offsets[i])
            for key in buckets[i]:
                self.table.write(_DATA_ROW, base + h_star(int(key)), int(key))

        self._inner_a = np.array(
            [h.a if h else 0 for h in self.inner], dtype=np.uint64
        )
        self._inner_c = np.array(
            [h.c if h else 0 for h in self.inner], dtype=np.uint64
        )

    # -- z replication geometry ---------------------------------------------------

    def _z_copies(self, g_value: int) -> int:
        """Number of columns j < s with j ≡ g_value (mod r)."""
        s = self.table.s
        return (s - g_value + self.r - 1) // self.r

    def _z_step(self, g_value: int) -> UniformStrided:
        return UniformStrided(
            row=_Z_ROW, start=g_value, stride=self.r, count=self._z_copies(g_value)
        )

    # -- queries ---------------------------------------------------------------------

    def query(self, x: int, rng=None) -> bool:
        x = self.check_key(x)
        rng = as_generator(rng)
        W = len(self.param_words)
        words = []
        for j in range(W):
            replica = int(rng.integers(0, self.replication))
            words.append(self.table.read(_PARAM_ROW, j + replica * W, j))
        d = self.degree
        f = self.family.f_family.from_parameter_words(words[:d])
        g = self.family.g_family.from_parameter_words(words[d:])
        gx = g(x)
        z_step = self._z_step(gx)
        z_col = z_step.sample(rng)
        z_val = self.table.read(_Z_ROW, z_col, W)
        i = (f(x) + z_val) % self.num_buckets
        offset, load = unpack_pair(self.table.read(_HEADER_A_ROW, i, W + 1))
        if load == 0:
            return False
        inner_word = self.table.read(_HEADER_B_ROW, i, W + 2)
        h_star = PerfectHashFunction.from_packed_word(
            inner_word, self.prime, load * load
        )
        return self.table.read(_DATA_ROW, offset + h_star(x), W + 3) == x

    def query_batch(self, xs: np.ndarray, rng=None) -> np.ndarray:
        xs = self.check_keys_batch(xs)
        rng = as_generator(rng)
        batch = xs.shape[0]
        W = len(self.param_words)
        d = self.degree
        words = read_interleaved_params_batch(
            self.table, _PARAM_ROW, W, self.replication, batch, rng
        )
        fx = horner_eval_batch(words[:d], xs, self.prime, self.num_buckets)
        gx = horner_eval_batch(words[d:], xs, self.prime, self.r)
        # One uniformly random replica of z[gx] (columns ≡ gx mod r).
        copies = (self.table.s - gx + self.r - 1) // self.r
        k = np.minimum(
            (rng.random(batch) * copies).astype(np.int64), copies - 1
        )
        z_val = self.table.read_batch(_Z_ROW, gx + self.r * k, W)
        i = ((fx.astype(np.uint64) + z_val) % np.uint64(self.num_buckets)).astype(
            np.int64
        )
        offset, load = unpack_pair_batch(
            self.table.read_batch(_HEADER_A_ROW, i, W + 1)
        )
        nonempty = load > 0
        ia, ic = unpack_pair_batch(
            self.table.read_batch(
                _HEADER_B_ROW, np.where(nonempty, i, -1), W + 2
            )
        )
        p = np.uint64(self.prime)
        v = (ia * (xs.astype(np.uint64) % p) + ic) % p
        pos = (offset + v % np.maximum(load * load, np.uint64(1))).astype(
            np.int64
        )
        data = self.table.read_batch(
            _DATA_ROW, np.where(nonempty, pos, -1), W + 3
        )
        return nonempty & (data == xs.astype(np.uint64))

    def probe_plan(self, x: int) -> list[ProbeStep]:
        x = self.check_key(x)
        W = len(self.param_words)
        plan: list[ProbeStep] = list(
            param_read_steps(_PARAM_ROW, W, self.replication)
        )
        plan.append(self._z_step(self.level1.g(x)))
        i = self.level1(x)
        plan.append(FixedCell(_HEADER_A_ROW, i))
        load = int(self.loads[i])
        if load == 0:
            return plan
        plan.append(FixedCell(_HEADER_B_ROW, i))
        pos = int(self.offsets[i]) + self.inner[i](x)
        plan.append(FixedCell(_DATA_ROW, pos))
        return plan

    def probe_plan_batch(self, xs: np.ndarray) -> list[BatchStridedStep]:
        xs = np.asarray(xs, dtype=np.int64)
        batch = xs.shape[0]
        W = len(self.param_words)
        steps = [
            batch_from_step(step, batch)
            for step in param_read_steps(_PARAM_ROW, W, self.replication)
        ]
        gx = self.level1.g.eval_batch(xs)
        s = self.table.s
        counts = (s - gx + self.r - 1) // self.r
        steps.append(
            BatchStridedStep(
                row=_Z_ROW,
                starts=gx,
                strides=np.full(batch, self.r, dtype=np.int64),
                counts=counts,
            )
        )
        i = self.level1.eval_batch(xs)
        ones = np.ones(batch, dtype=np.int64)
        steps.append(
            BatchStridedStep(row=_HEADER_A_ROW, starts=i, strides=ones, counts=ones)
        )
        load = self.loads[i]
        nonempty = load > 0
        steps.append(
            BatchStridedStep(
                row=_HEADER_B_ROW,
                starts=np.where(nonempty, i, 0),
                strides=ones,
                counts=nonempty.astype(np.int64),
            )
        )
        p = np.uint64(self.prime)
        xv = xs.astype(np.uint64) % p
        v = (self._inner_a[i] * xv + self._inner_c[i]) % p
        range_sq = np.maximum(load.astype(np.uint64) ** 2, 1)
        inner_pos = (v % range_sq).astype(np.int64)
        steps.append(
            BatchStridedStep(
                row=_DATA_ROW,
                starts=np.where(nonempty, self.offsets[i] + inner_pos, 0),
                strides=ones,
                counts=nonempty.astype(np.int64),
            )
        )
        return steps

    def row_labels(self) -> list[str]:
        """Semantic name of each table row (for contention breakdowns)."""
        return [
            "hash-params", "z-vector", "bucket-header-A",
            "bucket-header-B", "data",
        ]

    @property
    def max_probes(self) -> int:
        return 2 * self.degree + 4
