"""FKS two-level perfect hashing [Fredman–Komlós–Szemerédi 1984].

Layout (rows × s cells, s = max(n, sum of squared bucket loads)):

- row 0 — level-1 parameters: the 2-universal ``(a, c)`` packed into one
  word, replicated (``param_replication``);
- row 1 — bucket header A: ``(offset_i, load_i)`` packed, one cell per
  bucket at column i;
- row 2 — bucket header B: the bucket's perfect-hash parameters packed,
  one cell per bucket;
- row 3 — data: bucket i owns ``load_i**2`` cells starting at
  ``offset_i``; key x sits at ``offset_i + h*_i(x)``.

Queries make at most 4 probes (params, header A, header B, data); empty
buckets stop after header A.  The header cells are the contention hot
spots the paper discusses: header cell i is probed by every query
hashing to bucket i, so its contention is the bucket's query mass —
up to Θ(√n)·(1/n) for a 2-universal level-1 family under uniform
positive queries (§1.3), no matter how much the *parameters* are
replicated.

Construction retries the level-1 hash until the FKS condition
``sum_i load_i**2 <= space_factor * n`` holds (expected O(1) trials by
Markov; Lemma 9(3) is the analogous statement for the DM family).
"""

from __future__ import annotations

import numpy as np

from repro.cellprobe.steps import BatchStridedStep, FixedCell, ProbeStep
from repro.cellprobe.table import EMPTY_CELL, Table
from repro.dictionaries.base import (
    StaticDictionary,
    batch_from_step,
    param_read_steps,
    read_interleaved_params_batch,
    resolve_replication,
    write_interleaved_params,
)
from repro.errors import ConstructionError
from repro.hashing.perfect import PerfectHashFunction, find_perfect_hash
from repro.hashing.polynomial import horner_eval_batch
from repro.utils.bits import pack_pair, unpack_pair, unpack_pair_batch
from repro.utils.primes import field_prime_for_universe
from repro.utils.rng import as_generator

_PARAM_ROW, _HEADER_A_ROW, _HEADER_B_ROW, _DATA_ROW = 0, 1, 2, 3


class FKSDictionary(StaticDictionary):
    """Static FKS dictionary: O(n) space, <= 4 probes."""

    name = "fks"

    def __init__(
        self,
        keys,
        universe_size: int,
        rng=None,
        space_factor: float = 4.0,
        param_replication="row",
        max_level1_trials: int = 200,
        level1=None,
    ):
        if space_factor < 2.0:
            raise ConstructionError("space_factor must be >= 2")
        rng = as_generator(rng)
        self.universe_size = int(universe_size)
        self.keys = self._sorted_keys(keys, self.universe_size)
        self.prime = field_prime_for_universe(self.universe_size)
        n = self.n
        self.num_buckets = n

        # Level-1: retry a 2-universal hash until the FKS condition holds.
        # An explicit `level1` (any HashFunction into [n]) bypasses the
        # sampling — used by E16 to study adversarial/planted families —
        # but the FKS acceptance condition is still enforced.
        budget = int(space_factor * n)
        self.level1_trials = 0
        if level1 is not None:
            if level1.range_size != self.num_buckets:
                raise ConstructionError(
                    f"level1 range {level1.range_size} != n = {self.num_buckets}"
                )
            loads = level1.loads(self.keys)
            if int(np.sum(loads.astype(np.int64) ** 2)) > budget:
                raise ConstructionError(
                    "provided level1 hash violates the FKS condition"
                )
            self.level1_trials = 1
        else:
            for _ in range(max_level1_trials):
                self.level1_trials += 1
                a = int(rng.integers(0, self.prime))
                c = int(rng.integers(0, self.prime))
                level1 = PerfectHashFunction(self.prime, a, c, self.num_buckets)
                loads = level1.loads(self.keys)
                if int(np.sum(loads**2)) <= budget:
                    break
            else:
                raise ConstructionError(
                    f"FKS condition failed in {max_level1_trials} trials"
                )
        self.level1 = level1
        self._custom_level1 = level1 is not None and not isinstance(
            level1, PerfectHashFunction
        )
        self.param_words = [int(w) for w in level1.parameter_words()]
        self.loads = loads
        self.offsets = np.concatenate(
            [[0], np.cumsum(loads.astype(np.int64) ** 2)[:-1]]
        )
        data_width = int(np.sum(loads.astype(np.int64) ** 2))

        s = max(self.num_buckets, data_width, len(self.param_words))
        self.replication = resolve_replication(
            param_replication, s, len(self.param_words)
        )
        self.table = Table(rows=4, s=s)
        write_interleaved_params(
            self.table, _PARAM_ROW, self.param_words, self.replication
        )

        # Level-2: perfect hash per non-empty bucket; fill headers + data.
        self.inner: list[PerfectHashFunction | None] = [None] * self.num_buckets
        buckets = self.level1.buckets(self.keys)
        for i in range(self.num_buckets):
            load = int(self.loads[i])
            self.table.write(
                _HEADER_A_ROW, i, pack_pair(int(self.offsets[i]), load)
            )
            if load == 0:
                continue
            h_star, _ = find_perfect_hash(
                buckets[i], self.prime, load * load, rng
            )
            self.inner[i] = h_star
            self.table.write(_HEADER_B_ROW, i, h_star.packed_word())
            base = int(self.offsets[i])
            for key in buckets[i]:
                self.table.write(_DATA_ROW, base + h_star(int(key)), int(key))

        # Vectorized inner-hash parameter arrays for batch plans.
        self._inner_a = np.array(
            [h.a if h else 0 for h in self.inner], dtype=np.uint64
        )
        self._inner_c = np.array(
            [h.c if h else 0 for h in self.inner], dtype=np.uint64
        )

    # -- queries -----------------------------------------------------------------

    def query(self, x: int, rng=None) -> bool:
        x = self.check_key(x)
        rng = as_generator(rng)
        W = len(self.param_words)
        words = []
        for j in range(W):
            replica = int(rng.integers(0, self.replication))
            words.append(self.table.read(_PARAM_ROW, j + replica * W, j))
        if self._custom_level1:
            # Custom families (e.g. the planted adversarial family of
            # E16) are not reconstructible from their stored words alone;
            # the probes are charged identically, and the extra state a
            # real deployment would have to store-and-read would only
            # RAISE contention, so measurements stay conservative.
            level1 = self.level1
        else:
            level1 = PerfectHashFunction.from_packed_word(
                words[0], self.prime, self.num_buckets
            )
        i = level1(x)
        offset, load = unpack_pair(self.table.read(_HEADER_A_ROW, i, W))
        if load == 0:
            return False
        inner_word = self.table.read(_HEADER_B_ROW, i, W + 1)
        h_star = PerfectHashFunction.from_packed_word(
            inner_word, self.prime, load * load
        )
        return self.table.read(_DATA_ROW, offset + h_star(x), W + 2) == x

    def query_batch(self, xs: np.ndarray, rng=None) -> np.ndarray:
        xs = self.check_keys_batch(xs)
        rng = as_generator(rng)
        batch = xs.shape[0]
        W = len(self.param_words)
        words = read_interleaved_params_batch(
            self.table, _PARAM_ROW, W, self.replication, batch, rng
        )
        if self._custom_level1:
            # Same conservative convention as the scalar path: custom
            # families evaluate directly, probes charged identically.
            i = self.level1.eval_batch(xs)
        else:
            a, c = unpack_pair_batch(words[0])
            i = horner_eval_batch([c, a], xs, self.prime, self.num_buckets)
        offset, load = unpack_pair_batch(
            self.table.read_batch(_HEADER_A_ROW, i, W)
        )
        nonempty = load > 0
        ia, ic = unpack_pair_batch(
            self.table.read_batch(_HEADER_B_ROW, np.where(nonempty, i, -1), W + 1)
        )
        # Unpacked halves are < 2**31, so the inner-hash products fit
        # uint64 even for the garbage halves of skipped (empty) buckets.
        p = np.uint64(self.prime)
        v = (ia * (xs.astype(np.uint64) % p) + ic) % p
        pos = (offset + v % np.maximum(load * load, np.uint64(1))).astype(
            np.int64
        )
        data = self.table.read_batch(
            _DATA_ROW, np.where(nonempty, pos, -1), W + 2
        )
        return nonempty & (data == xs.astype(np.uint64))

    def probe_plan(self, x: int) -> list[ProbeStep]:
        x = self.check_key(x)
        plan: list[ProbeStep] = list(
            param_read_steps(
                _PARAM_ROW, len(self.param_words), self.replication
            )
        )
        i = self.level1(x)
        plan.append(FixedCell(_HEADER_A_ROW, i))
        load = int(self.loads[i])
        if load == 0:
            return plan
        plan.append(FixedCell(_HEADER_B_ROW, i))
        pos = int(self.offsets[i]) + self.inner[i](x)
        plan.append(FixedCell(_DATA_ROW, pos))
        return plan

    def probe_plan_batch(self, xs: np.ndarray) -> list[BatchStridedStep]:
        xs = np.asarray(xs, dtype=np.int64)
        batch = xs.shape[0]
        steps = [
            batch_from_step(step, batch)
            for step in param_read_steps(
                _PARAM_ROW, len(self.param_words), self.replication
            )
        ]
        i = self.level1.eval_batch(xs)
        ones = np.ones(batch, dtype=np.int64)
        steps.append(
            BatchStridedStep(
                row=_HEADER_A_ROW, starts=i, strides=ones, counts=ones
            )
        )
        load = self.loads[i]
        nonempty = load > 0
        steps.append(
            BatchStridedStep(
                row=_HEADER_B_ROW,
                starts=np.where(nonempty, i, 0),
                strides=ones,
                counts=nonempty.astype(np.int64),
            )
        )
        # Vectorized per-bucket perfect hash: ((a*x + c) mod p) mod load**2.
        p = np.uint64(self.prime)
        xv = xs.astype(np.uint64) % p
        v = (self._inner_a[i] * xv + self._inner_c[i]) % p
        range_sq = np.maximum(load.astype(np.uint64) ** 2, 1)
        inner_pos = (v % range_sq).astype(np.int64)
        steps.append(
            BatchStridedStep(
                row=_DATA_ROW,
                starts=np.where(nonempty, self.offsets[i] + inner_pos, 0),
                strides=ones,
                counts=nonempty.astype(np.int64),
            )
        )
        return steps

    def row_labels(self) -> list[str]:
        """Semantic name of each table row (for contention breakdowns)."""
        return ["hash-params", "bucket-header-A", "bucket-header-B", "data"]

    @property
    def max_probes(self) -> int:
        return len(self.param_words) + 3
