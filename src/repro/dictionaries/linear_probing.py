"""Linear probing — a practical open-addressing baseline.

Not discussed by name in the paper, but the natural "what a systems
person would deploy" comparator: one parameter word plus a slot row at
load factor 1/2.  Probes are adaptive and unbounded in the worst case
(longest occupied run + 1); the contention profile concentrates on the
slots of large clusters *and* on the parameter cell(s), both measured in
E5/E6.
"""

from __future__ import annotations

import numpy as np

from repro.cellprobe.steps import BatchStridedStep, FixedCell, ProbeStep
from repro.cellprobe.table import Table
from repro.dictionaries.base import (
    StaticDictionary,
    param_read_steps,
    resolve_replication,
    write_interleaved_params,
)
from repro.errors import ConstructionError
from repro.hashing.perfect import PerfectHashFunction
from repro.hashing.polynomial import horner_eval_batch
from repro.utils.bits import unpack_pair_batch
from repro.utils.primes import field_prime_for_universe
from repro.utils.rng import as_generator

_PARAM_ROW = 0
_SLOT_ROW = 1
_EMPTY = -1


class LinearProbingDictionary(StaticDictionary):
    """Open addressing with linear probing at a configurable load factor."""

    name = "linear-probing"

    def __init__(
        self,
        keys,
        universe_size: int,
        rng=None,
        load_factor: float = 0.5,
        param_replication="row",
    ):
        if not 0.0 < float(load_factor) < 1.0:
            raise ConstructionError("load_factor must be in (0, 1)")
        rng = as_generator(rng)
        self.universe_size = int(universe_size)
        self.keys = self._sorted_keys(keys, self.universe_size)
        self.prime = field_prime_for_universe(self.universe_size)
        num_slots = max(int(np.ceil(self.n / float(load_factor))), self.n + 1)
        self.num_slots = num_slots
        self.replication = resolve_replication(param_replication, num_slots, 1)

        # Sample the hash function; the (a, c) pair packs into one word.
        a = int(rng.integers(0, self.prime))
        c = int(rng.integers(0, self.prime))
        self.hash = PerfectHashFunction(self.prime, a, c, num_slots)

        self._slots = np.full(num_slots, _EMPTY, dtype=np.int64)
        for key in self.keys:
            pos = self.hash(int(key))
            while self._slots[pos] != _EMPTY:
                pos = (pos + 1) % num_slots
            self._slots[pos] = int(key)

        self.table = Table(rows=2, s=num_slots)
        write_interleaved_params(
            self.table, _PARAM_ROW, [self.hash.packed_word()], self.replication
        )
        occupied = self._slots != _EMPTY
        row = np.where(occupied, self._slots, np.int64(0)).astype(np.uint64)
        row[~occupied] = np.uint64((1 << 64) - 1)  # EMPTY_CELL
        self.table.write_row(_SLOT_ROW, row)

        self._max_run = self._longest_probe_run()

    def _longest_probe_run(self) -> int:
        """Longest probe sequence any query can make (run to next empty + 1)."""
        occupied = self._slots != _EMPTY
        if not occupied.any():
            return 1
        # Distance from each slot to the next empty slot, cyclically.
        doubled = np.concatenate([occupied, occupied])
        best = 0
        run = 0
        for v in doubled[::-1]:
            run = run + 1 if v else 0
            best = max(best, run)
        return min(best, self.num_slots - 1) + 1

    # -- queries ---------------------------------------------------------------

    def query(self, x: int, rng=None) -> bool:
        x = self.check_key(x)
        rng = as_generator(rng)
        replica = int(rng.integers(0, self.replication))
        word = self.table.read(_PARAM_ROW, replica, 0)
        h = PerfectHashFunction.from_packed_word(word, self.prime, self.num_slots)
        pos = h(x)
        step = 1
        for _ in range(self.num_slots):
            v = self.table.read(_SLOT_ROW, pos, step)
            step += 1
            if v == (1 << 64) - 1:
                return False
            if v == x:
                return True
            pos = (pos + 1) % self.num_slots
        return False

    def query_batch(self, xs: np.ndarray, rng=None) -> np.ndarray:
        xs = self.check_keys_batch(xs)
        rng = as_generator(rng)
        batch = xs.shape[0]
        words = self.table.read_batch(
            _PARAM_ROW, rng.integers(0, self.replication, size=batch), 0
        )
        a, c = unpack_pair_batch(words)
        pos = horner_eval_batch([c, a], xs, self.prime, self.num_slots)
        found = np.zeros(batch, dtype=bool)
        active = np.ones(batch, dtype=bool)
        empty = np.uint64((1 << 64) - 1)
        xs_u = xs.astype(np.uint64)
        step = 1
        while np.any(active):
            v = self.table.read_batch(_SLOT_ROW, np.where(active, pos, -1), step)
            step += 1
            hit = active & (v == xs_u)
            found |= hit
            active &= ~hit & (v != empty)
            pos = (pos + 1) % self.num_slots
        return found

    def _probe_positions(self, x: int) -> list[int]:
        positions = []
        pos = self.hash(x)
        for _ in range(self.num_slots):
            positions.append(pos)
            if self._slots[pos] == _EMPTY or self._slots[pos] == x:
                break
            pos = (pos + 1) % self.num_slots
        return positions

    def probe_plan(self, x: int) -> list[ProbeStep]:
        x = self.check_key(x)
        plan: list[ProbeStep] = list(
            param_read_steps(_PARAM_ROW, 1, self.replication)
        )
        plan.extend(FixedCell(_SLOT_ROW, p) for p in self._probe_positions(x))
        return plan

    def probe_plan_batch(self, xs: np.ndarray) -> list[BatchStridedStep]:
        xs = np.asarray(xs, dtype=np.int64)
        batch = xs.shape[0]
        steps: list[BatchStridedStep] = [
            BatchStridedStep(
                row=_PARAM_ROW,
                starts=np.zeros(batch, dtype=np.int64),
                strides=np.ones(batch, dtype=np.int64),
                counts=np.full(batch, self.replication, dtype=np.int64),
                shared=True,
            )
        ]
        pos = self.hash.eval_batch(xs)
        active = np.ones(batch, dtype=bool)
        for _ in range(self._max_run):
            if not np.any(active):
                break
            steps.append(
                BatchStridedStep(
                    row=_SLOT_ROW,
                    starts=np.where(active, pos, 0),
                    strides=np.ones(batch, dtype=np.int64),
                    counts=active.astype(np.int64),
                )
            )
            slot_vals = self._slots[pos]
            stop = (slot_vals == _EMPTY) | (slot_vals == xs)
            active = active & ~stop
            pos = (pos + 1) % self.num_slots
        return steps

    def row_labels(self) -> list[str]:
        """Semantic name of each table row (for contention breakdowns)."""
        return ["hash-params", "slots"]

    @property
    def max_probes(self) -> int:
        return 1 + self._max_run
