"""Whole-structure replication: the naive low-contention construction.

Section 1.3 observes that contention "can be decreased by storing the
hash function redundantly"; the limiting case is replicating the
*entire* data structure R times and sending each query to a uniformly
random replica — every cell's contention divides by R, at R times the
space.  This wrapper applies that transformation to any
:class:`~repro.dictionaries.base.StaticDictionary`:

- a *replica-oblivious* inner structure is built once;
- its table rows are copied R times (replica r occupies rows
  [r * inner_rows, (r+1) * inner_rows));
- a query samples a replica and runs the inner algorithm against that
  replica's rows (honestly: the inner algorithm's reads are redirected
  to the replica, every probe charged).

The point of experiment E15: to force max contention down to c/n this
way, binary search needs R = Theta(n) replicas (Theta(n**2) space) and
FKS R = Theta(max bucket load) (superlinear space), whereas Theorem 3's
construction does it in O(n) space — replication of *critical cells
only*, sized by the load structure, is what the paper's design buys.
"""

from __future__ import annotations

import numpy as np

from repro.cellprobe.steps import BatchStridedStep, FixedCell, ProbeStep, UniformSet, UniformStrided
from repro.cellprobe.table import Table
from repro.dictionaries.base import StaticDictionary
from repro.errors import (
    CorruptQueryError,
    FaultExhaustedError,
    HealError,
    ParameterError,
    ReplicaUnavailableError,
    ReproError,
)
from repro.faults import FaultConfig, FaultInjector, FaultStats, FaultyTable
from repro.utils.rng import as_generator

#: Exceptions treated as a *detected* per-replica failure by the
#: fault-tolerant query paths: corrupted words can drive an honest query
#: algorithm to an out-of-range probe (``TableError``), an impossible
#: decode (``ValueError``/``OverflowError``/``IndexError``), or an
#: explicit crash (``ReplicaUnavailableError`` is a ``ReproError``).
_REPLICA_FAILURES = (ReproError, OverflowError, IndexError, ValueError)

#: Query-routing modes of :class:`ReplicatedDictionary`.
QUERY_MODES = ("random", "majority", "failover")


class _ReplicaView:
    """A Table facade redirecting an inner dictionary's accesses.

    Reads/writes at (row, col) go to (offset + row, col) of the outer
    table, so the inner query algorithm runs unchanged against one
    replica with honest probe accounting on the outer counter.
    """

    def __init__(self, outer: Table, inner_rows: int, replica: int):
        self._outer = outer
        self._offset = replica * inner_rows
        self.rows = inner_rows
        self.s = outer.s
        self.counter = outer.counter

    def read(self, row: int, column: int, step: int) -> int:
        return self._outer.read(self._offset + row, column, step)

    def read_batch(self, rows, columns, step: int):
        rows = np.asarray(rows, dtype=np.int64) + self._offset
        return self._outer.read_batch(rows, columns, step)

    def peek(self, row: int, column: int) -> int:
        return self._outer.peek(self._offset + row, column)

    @property
    def num_cells(self) -> int:
        return self.rows * self.s


class ReplicatedDictionary(StaticDictionary):
    """R copies of an inner static dictionary; queries pick one uniformly.

    Fault tolerance (opt-in, zero overhead by default): attach a
    :class:`~repro.faults.FaultConfig` and pick a query-routing ``mode``:

    - ``"random"`` (default) — the paper's scheme: one uniformly random
      replica per query.  Under faults it is the fragile baseline:
      corrupt cells silently flip answers and a crashed replica raises
      :class:`~repro.errors.ReplicaUnavailableError`.
    - ``"majority"`` — query every live replica (all probes charged) and
      return the majority vote; replicas whose execution detectably
      fails (crash, out-of-range probe from a corrupt word) abstain.
      Correct whenever a strict majority of replicas is healthy.
    - ``"failover"`` — one replica at a time with bounded retries: a
      *detected* failure triggers failover to a fresh random replica
      after exponential backoff (``2**attempt`` probe-equivalents,
      recorded in :attr:`fault_stats`); retries exhausted raises
      :class:`~repro.errors.FaultExhaustedError`.  Silent corruption is
      not detected — failover buys availability, not integrity.

    With ``faults=None`` (or a config with every rate zero) and
    ``mode="random"`` every RNG draw, probe, and answer is byte-identical
    to the pre-fault-layer implementation (property-tested).
    """

    def __init__(
        self,
        inner: StaticDictionary,
        replicas: int,
        rng=None,
        mode: str = "random",
        faults: FaultConfig | None = None,
        max_retries: int = 3,
    ):
        if replicas < 1:
            raise ParameterError("replicas must be >= 1")
        if mode not in QUERY_MODES:
            raise ParameterError(
                f"unknown query mode {mode!r}; options: {QUERY_MODES}"
            )
        if max_retries < 0:
            raise ParameterError("max_retries must be >= 0")
        self.inner = inner
        self.replicas = int(replicas)
        self.mode = mode
        self.max_retries = int(max_retries)
        self.universe_size = inner.universe_size
        self.keys = inner.keys
        self.name = f"replicated({inner.name}, R={replicas})"
        if mode != "random":
            self.name += f"[{mode}]"
        inner_table = inner.table
        self._inner_rows = inner_table.rows
        self.table = Table(
            rows=self._inner_rows * self.replicas, s=inner_table.s
        )
        for r in range(self.replicas):
            for row in range(self._inner_rows):
                self.table.write_row(
                    r * self._inner_rows + row, inner_table._cells[row]
                )
        self.fault_stats = FaultStats()
        if faults is not None and faults.enabled:
            self.faults = faults
            self._injector = FaultInjector(
                faults, self.table.rows, self.table.s, self.replicas
            )
            self._read_table = FaultyTable(self.table, self._injector)
        else:
            self.faults = None
            self._injector = None
            self._read_table = self.table

    # -- geometry ----------------------------------------------------------------

    @property
    def inner_rows(self) -> int:
        """Rows per replica (the inner structure's table height)."""
        return self._inner_rows

    def replica_row(self, replica: int, inner_row: int) -> int:
        """The outer table row holding ``inner_row`` of ``replica``."""
        return int(replica) * self._inner_rows + int(inner_row)

    # -- dynamic faults (chaos schedules / healing) ------------------------------

    def _require_injector(self) -> FaultInjector:
        if self._injector is None:
            raise HealError(
                f"{self.name} carries no fault layer; build it with an "
                "armed FaultConfig to crash/corrupt replicas dynamically"
            )
        return self._injector

    def crash_replica(self, replica: int) -> None:
        """Crash ``replica`` now, losing its memory (chaos event).

        The replica's rows are wiped to :data:`~repro.cellprobe.table.EMPTY_CELL`
        (a crash loses state — rebuild must reconstruct it from the
        survivors) and queries routed to it raise
        :class:`~repro.errors.ReplicaUnavailableError` until a rebuild
        revives it.
        """
        from repro.cellprobe.table import EMPTY_CELL

        injector = self._require_injector()
        r = int(replica)
        if not 0 <= r < self.replicas:
            raise ParameterError(
                f"replica {r} out of range [0, {self.replicas})"
            )
        injector.crash(r)
        lo = r * self._inner_rows
        self.table._cells[lo:lo + self._inner_rows, :] = EMPTY_CELL

    def revive_replica(self, replica: int) -> None:
        """Mark a rebuilt ``replica`` available again."""
        self._require_injector().revive(int(replica))

    def corrupt_cell(self, replica: int, inner_flat: int, mask: int) -> None:
        """XOR ``mask`` into one physical cell of ``replica`` (bit flip).

        Chaos-level silent corruption: the damage is persistent and
        physical (visible to ``peek``/scrub), but it is *not* a
        construction write — ``table.writes`` stays untouched, exactly
        as a radiation upset would leave it.
        """
        self._require_injector()
        row, col = divmod(int(inner_flat), self.table.s)
        if not (0 <= int(replica) < self.replicas
                and 0 <= row < self._inner_rows):
            raise ParameterError(
                f"cell {inner_flat} of replica {replica} out of range"
            )
        outer = self.replica_row(replica, row)
        self.table._cells[outer, col] ^= np.uint64(mask)

    def stick_cells(
        self, replica: int, inner_flats: np.ndarray, values: np.ndarray
    ) -> None:
        """Make cells of ``replica`` stuck-at ``values`` (chaos event)."""
        injector = self._require_injector()
        inner_flats = np.asarray(inner_flats, dtype=np.int64)
        outer_flats = (
            int(replica) * self._inner_rows * self.table.s + inner_flats
        )
        injector.stick(outer_flats, np.asarray(values, dtype=np.uint64))

    # -- queries -----------------------------------------------------------------

    def live_replicas(self) -> list[int]:
        """Replica indices that are not crashed."""
        if self._injector is None:
            return list(range(self.replicas))
        return [
            r for r in range(self.replicas) if self._injector.available(r)
        ]

    def _query_on(self, x: int, replica: int, rng) -> bool:
        """Run the inner query against one replica's rows (probes charged)."""
        view = _ReplicaView(self._read_table, self._inner_rows, replica)
        original = self.inner.table
        self.inner.table = view
        try:
            return self.inner.query(x, rng)
        finally:
            self.inner.table = original

    def query(self, x: int, rng=None) -> bool:
        x = self.check_key(x)
        rng = as_generator(rng)
        if self.mode == "majority":
            return self._query_majority(x, rng)
        if self.mode == "failover":
            return self._query_failover(x, rng)
        replica = int(rng.integers(0, self.replicas))
        if self._injector is None:
            return self._query_on(x, replica, rng)
        if not self._injector.available(replica):
            self.fault_stats.crash_hits += 1
            raise ReplicaUnavailableError(replica)
        try:
            return self._query_on(x, replica, rng)
        except _REPLICA_FAILURES as exc:
            self.fault_stats.corrupted_reads += 1
            raise CorruptQueryError(
                f"query({x}) on replica {replica} detectably corrupted"
            ) from exc

    def _query_majority(self, x: int, rng) -> bool:
        """All live replicas vote; detected failures abstain.

        Ties (possible only when at least half the voting replicas
        answered corruptly, i.e. outside the strict-majority-healthy
        guarantee) resolve to ``False``.
        """
        votes_true = votes_false = 0
        for replica in range(self.replicas):
            if self._injector is not None and not self._injector.available(
                replica
            ):
                self.fault_stats.crash_hits += 1
                continue
            try:
                answer = self._query_on(x, replica, rng)
            except _REPLICA_FAILURES:
                self.fault_stats.corrupted_reads += 1
                continue
            if answer:
                votes_true += 1
            else:
                votes_false += 1
        if votes_true == 0 and votes_false == 0:
            self.fault_stats.exhausted += 1
            raise FaultExhaustedError(self.replicas)
        return votes_true > votes_false

    def _query_failover(self, x: int, rng) -> bool:
        """Random replica with bounded retry-on-detected-failure."""
        attempts = 0
        backoff_spent = 0
        while True:
            replica = int(rng.integers(0, self.replicas))
            if self._injector is None or self._injector.available(replica):
                try:
                    return self._query_on(x, replica, rng)
                except _REPLICA_FAILURES:
                    self.fault_stats.corrupted_reads += 1
            else:
                self.fault_stats.crash_hits += 1
            if attempts >= self.max_retries:
                self.fault_stats.exhausted += 1
                raise FaultExhaustedError(attempts + 1, backoff_spent)
            # Exponential backoff, denominated in probe-equivalents: the
            # model has no wall clock, so waiting 2**k "slots" is charged
            # as 2**k probes a real system would have had time to make.
            cost = 2**attempts
            self.fault_stats.retries += 1
            self.fault_stats.backoff_probes += cost
            backoff_spent += cost
            attempts += 1

    def query_batch_on(
        self, xs: np.ndarray, replica: int, rng=None
    ) -> np.ndarray:
        """Run the inner batch algorithm against one *chosen* replica.

        The replica-addressed dispatch primitive of :mod:`repro.serve`:
        a router picks ``replica`` and the whole batch executes against
        that replica's rows — every probe charged to the shared counter
        at the replica's cells, and reads passing through the fault
        layer when one is attached.  Raises
        :class:`~repro.errors.ReplicaUnavailableError` when the chosen
        replica is crashed, so dispatchers can fail over and reweight.
        """
        xs = self.check_keys_batch(xs)
        rng = as_generator(rng)
        replica = int(replica)
        if not 0 <= replica < self.replicas:
            raise ParameterError(
                f"replica {replica} out of range [0, {self.replicas})"
            )
        if self._injector is not None and not self._injector.available(
            replica
        ):
            self.fault_stats.crash_hits += 1
            raise ReplicaUnavailableError(replica)
        original = self.inner.table
        self.inner.table = _ReplicaView(
            self._read_table, self._inner_rows, replica
        )
        try:
            return self.inner.query_batch(xs, rng)
        finally:
            self.inner.table = original

    def replica_probe_loads(self) -> np.ndarray:
        """Probes charged so far to each replica's rows, shape ``(R,)``.

        The live per-replica load signal contention-aware routers
        balance on; derived from the shared per-cell probe counter, so
        it reflects every probe ever charged (including failed or
        fault-corrupted executions).
        """
        totals = self.table.counter.total_counts()
        return totals.reshape(
            self.replicas, self._inner_rows * self.table.s
        ).sum(axis=1)

    def query_batch(self, xs: np.ndarray, rng=None) -> np.ndarray:
        """Batch queries grouped by sampled replica.

        Each query draws its replica uniformly (as in the scalar path),
        then the inner batch algorithm runs once per distinct replica on
        that replica's rows — probes are charged identically, only the
        order of RNG draws differs.  Fault-tolerant modes fall back to
        the scalar path per key (their control flow is data-dependent).
        """
        if self.mode != "random" or self._injector is not None:
            return super().query_batch(xs, rng)
        xs = self.check_keys_batch(xs)
        rng = as_generator(rng)
        replica = rng.integers(0, self.replicas, size=xs.shape[0])
        out = np.empty(xs.shape[0], dtype=bool)
        original = self.inner.table
        try:
            for r in np.unique(replica):
                sel = replica == r
                self.inner.table = _ReplicaView(
                    self.table, self._inner_rows, int(r)
                )
                out[sel] = self.inner.query_batch(xs[sel], rng)
        finally:
            self.inner.table = original
        return out

    def _lift_step(self, step: ProbeStep) -> ProbeStep:
        """Spread an inner step's support across all replicas.

        For the *marginal* probe distribution (replica chosen uniformly),
        each inner support cell appears once per replica with its
        probability divided by R; since inner rows repeat every
        ``inner_rows`` rows, the replicated support of a strided step is
        expressible per replica — we return a UniformSet over the union.
        """
        columns_rows = []
        for r in range(self.replicas):
            row = r * self._inner_rows + step.row
            columns_rows.append((row, step.support()))
        return _MultiRowUniform(columns_rows)

    def probe_plan(self, x: int) -> list[ProbeStep]:
        return [self._lift_step(s) for s in self.inner.probe_plan(x)]

    def probe_plan_batch(self, xs: np.ndarray) -> list[BatchStridedStep]:
        # The exact engine accumulates per (row, strided set); replicas
        # multiply rows.  We return one BatchStridedStep per (inner step,
        # replica) pair with counts scaled so each query's total step mass
        # stays 1: probability 1/(R * inner_count) per support cell is
        # encoded by repeating the step per replica with weight 1/R — the
        # engine's accumulate() divides by count, so we inflate counts by
        # handling the 1/R factor via `scaled_counts` trick: we cannot
        # scale weights per-step, so instead we expose R separate steps
        # each claiming count = inner_count * R.  (support per replica is
        # inner_count cells; probability per cell = 1/(inner_count * R).)
        out: list[BatchStridedStep] = []
        for t, st in enumerate(self.inner.probe_plan_batch(xs)):
            for r in range(self.replicas):
                step = _ScaledBatchStep(
                    row=r * self._inner_rows + st.row,
                    starts=st.starts,
                    strides=st.strides,
                    counts=st.counts,
                    shared=st.shared,
                    scale=self.replicas,
                )
                # All replicas realize the same logical query step; the
                # contention engine accumulates them into one Phi_t row
                # (otherwise the matrix would blow up to R*t rows).
                step.step_index = t
                out.append(step)
        return out

    def row_labels(self) -> list[str]:
        """Inner labels prefixed per replica."""
        inner = self.inner.row_labels()
        return [
            f"replica{r}/{label}"
            for r in range(self.replicas)
            for label in inner
        ]

    @property
    def max_probes(self) -> int:
        return self.inner.max_probes


class _MultiRowUniform(ProbeStep):
    """Uniform over the union of identical supports on several rows."""

    def __init__(self, columns_rows):
        self._parts = columns_rows  # list of (row, np.ndarray columns)
        self.row = columns_rows[0][0]
        self._sizes = [cols.size for _, cols in columns_rows]
        self._total = int(sum(self._sizes))

    def sample(self, rng: np.random.Generator) -> int:
        # Row choice is implicit in the replicated layout; sampling is
        # used only by generic tooling, which treats row separately —
        # return a column from a uniformly chosen part.
        part = int(rng.integers(0, len(self._parts)))
        row, cols = self._parts[part]
        self.row = row
        return int(cols[int(rng.integers(0, cols.size))])

    def support(self) -> np.ndarray:
        return np.concatenate([cols for _, cols in self._parts])

    def probability(self) -> float:
        return 1.0 / self._total

    def contains(self, column: int) -> bool:
        return any(int(column) in set(cols.tolist()) for _, cols in self._parts)

    def contains_cell(self, row: int, column: int) -> bool:
        return any(
            r == row and int(column) in set(cols.tolist())
            for r, cols in self._parts
        )

    @property
    def size(self) -> int:
        return self._total


class _ScaledBatchStep(BatchStridedStep):
    """A BatchStridedStep whose per-cell mass is divided by ``scale``.

    Encodes one replica's share (1/scale) of an inner step: support and
    sampling are per-replica, but accumulated mass per cell is
    weight / (count * scale).
    """

    def __init__(self, row, starts, strides, counts, shared, scale):
        super().__init__(
            row=row, starts=starts, strides=strides, counts=counts,
            shared=shared,
        )
        self.scale = int(scale)

    def accumulate(self, flat, weights, s):
        super().accumulate(flat, np.asarray(weights) / self.scale, s)
