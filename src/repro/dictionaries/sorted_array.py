"""Binary search over a sorted array — the paper's opening example.

"With binary search ... the entry in the middle of the table is accessed
on every query" (Section 1): the root cell has contention exactly 1, the
two depth-1 cells roughly 1/2 each, and so on — the contention profile is
geometric regardless of the query distribution.  Space is exactly n
cells and probes are <= ceil(log2 n) + 1; this is the maximally
space-efficient, maximally contended baseline.
"""

from __future__ import annotations

import numpy as np

from repro.cellprobe.steps import BatchStridedStep, FixedCell, ProbeStep
from repro.cellprobe.table import Table
from repro.dictionaries.base import StaticDictionary
from repro.utils.rng import as_generator


class SortedArrayDictionary(StaticDictionary):
    """Sorted keys in one row; queries binary-search with charged probes."""

    name = "binary-search"

    def __init__(self, keys, universe_size: int, rng=None):
        self.universe_size = int(universe_size)
        self.keys = self._sorted_keys(keys, self.universe_size)
        self.table = Table(rows=1, s=self.n)
        self.table.write_row(0, self.keys.astype(np.uint64))

    def query(self, x: int, rng=None) -> bool:
        x = self.check_key(x)
        lo, hi = 0, self.n
        step = 0
        while lo < hi:
            mid = (lo + hi) // 2
            v = self.table.read(0, mid, step)
            step += 1
            if v == x:
                return True
            if v < x:
                lo = mid + 1
            else:
                hi = mid
        return False

    def query_batch(self, xs: np.ndarray, rng=None) -> np.ndarray:
        xs = self.check_keys_batch(xs)
        batch = xs.shape[0]
        lo = np.zeros(batch, dtype=np.int64)
        hi = np.full(batch, self.n, dtype=np.int64)
        found = np.zeros(batch, dtype=bool)
        step = 0
        while True:
            active = ~found & (lo < hi)
            if not np.any(active):
                break
            mid = (lo + hi) // 2
            # Skipped entries (column -1) surface EMPTY_CELL, which casts
            # to -1 and is masked out by `active` below.
            v = self.table.read_batch(0, np.where(active, mid, -1), step).astype(
                np.int64
            )
            step += 1
            hit = active & (v == xs)
            found |= hit
            lo = np.where(active & ~hit & (v < xs), mid + 1, lo)
            hi = np.where(active & ~hit & (v > xs), mid, hi)
        return found

    def probe_plan(self, x: int) -> list[ProbeStep]:
        x = self.check_key(x)
        plan: list[ProbeStep] = []
        lo, hi = 0, self.n
        while lo < hi:
            mid = (lo + hi) // 2
            plan.append(FixedCell(0, mid))
            v = int(self.keys[mid])
            if v == x:
                break
            if v < x:
                lo = mid + 1
            else:
                hi = mid
        return plan

    def probe_plan_batch(self, xs: np.ndarray) -> list[BatchStridedStep]:
        xs = np.asarray(xs, dtype=np.int64)
        batch = xs.shape[0]
        lo = np.zeros(batch, dtype=np.int64)
        hi = np.full(batch, self.n, dtype=np.int64)
        done = np.zeros(batch, dtype=bool)
        steps: list[BatchStridedStep] = []
        while True:
            active = ~done & (lo < hi)
            if not np.any(active):
                break
            mid = (lo + hi) // 2
            counts = np.where(active, 1, 0).astype(np.int64)
            steps.append(
                BatchStridedStep(
                    row=0,
                    starts=np.where(active, mid, 0),
                    strides=np.ones(batch, dtype=np.int64),
                    counts=counts,
                )
            )
            v = self.keys[np.minimum(mid, self.n - 1)]
            hit = active & (v == xs)
            done |= hit
            go_right = active & ~hit & (v < xs)
            go_left = active & ~hit & (v > xs)
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(go_left, mid, hi)
        return steps

    def row_labels(self) -> list[str]:
        """Semantic name of each table row (for contention breakdowns)."""
        return ["sorted-keys"]

    @property
    def max_probes(self) -> int:
        return int(np.ceil(np.log2(max(self.n, 2)))) + 1
