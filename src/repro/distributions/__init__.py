"""Query distributions q over Q (paper Section 1.1).

The paper's positive results assume the distribution is *uniform within
the positive queries and uniform within the negative queries*
(:class:`UniformPositiveNegative`); its lower bound and the "arbitrarily
bad" remarks of Section 1.3 concern general q — represented here by Zipf,
point-mass, explicit-support and mixture distributions, plus an
empirically-adversarial construction in :mod:`repro.contention.adversarial`.

Every distribution exposes exact pmf evaluation, sampling, and chunked
support enumeration ``(queries, masses)`` used by the exact contention
engine (the uniform-negative support is the whole co-universe, hence the
chunking).
"""

from repro.distributions.base import QueryDistribution
from repro.distributions.explicit import ExplicitDistribution, PointMass
from repro.distributions.mixture import MixtureDistribution
from repro.distributions.uniform import (
    UniformOverSet,
    UniformPositiveNegative,
    UniformQueries,
)
from repro.distributions.zipf import ZipfDistribution

__all__ = [
    "QueryDistribution",
    "UniformPositiveNegative",
    "UniformQueries",
    "UniformOverSet",
    "ZipfDistribution",
    "PointMass",
    "ExplicitDistribution",
    "MixtureDistribution",
]
