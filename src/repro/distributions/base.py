"""Abstract query distribution."""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np


class QueryDistribution(abc.ABC):
    """A probability distribution q over the query set Q = [universe_size].

    Contract used by the contention engine:

    - :meth:`enumerate_mass` yields ``(queries, masses)`` chunks covering
      the support exactly once, with masses summing to 1 over all chunks;
    - :meth:`sample` draws i.i.d. queries;
    - :meth:`pmf_batch` evaluates q(x) exactly.
    """

    #: Size of the query universe [N].
    universe_size: int

    @abc.abstractmethod
    def pmf_batch(self, xs: np.ndarray) -> np.ndarray:
        """Exact q(x) for each query in ``xs`` (float64)."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` i.i.d. queries (int64)."""

    @abc.abstractmethod
    def enumerate_mass(
        self, chunk_size: int = 1 << 18
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(queries, masses)`` chunks covering the support."""

    @property
    @abc.abstractmethod
    def support_size(self) -> int:
        """Number of queries with positive mass."""

    def pmf(self, x: int) -> float:
        """Exact q(x) for a single query."""
        return float(self.pmf_batch(np.asarray([x], dtype=np.int64))[0])

    def total_mass(self) -> float:
        """Sum of masses over the enumerated support (should be 1.0)."""
        return float(
            sum(float(masses.sum()) for _, masses in self.enumerate_mass())
        )
