"""Explicit-support distributions: arbitrary pmf vectors and point masses.

These model the "arbitrary query distribution" regime of Sections 1.3 and
3: a point mass on one positive query is the extreme adversarial case —
every cell on that query's probe path inherits the query's full mass, so
any scheme whose path has a low-replication cell shows contention Θ(1).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.distributions.base import QueryDistribution
from repro.errors import DistributionError
from repro.utils.validation import check_probability_vector


class ExplicitDistribution(QueryDistribution):
    """q given by explicit (queries, masses) arrays."""

    def __init__(self, universe_size: int, queries, masses):
        self.universe_size = int(universe_size)
        queries = np.asarray(queries, dtype=np.int64)
        masses = check_probability_vector("masses", masses)
        if queries.shape != masses.shape:
            raise DistributionError("queries and masses must align")
        if queries.size == 0:
            raise DistributionError("support must be non-empty")
        if np.unique(queries).size != queries.size:
            raise DistributionError("queries must be distinct")
        if int(queries.min()) < 0 or int(queries.max()) >= self.universe_size:
            raise DistributionError("queries must lie in [0, universe_size)")
        order = np.argsort(queries)
        keep = masses[order] > 0
        self.queries = queries[order][keep]
        self.masses = masses[order][keep]
        if self.queries.size == 0:
            raise DistributionError("support must have positive mass")

    @property
    def support_size(self) -> int:
        return self.queries.size

    def pmf_batch(self, xs: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=np.int64)
        idx = np.searchsorted(self.queries, xs)
        idx_c = np.minimum(idx, self.queries.size - 1)
        hit = (idx < self.queries.size) & (self.queries[idx_c] == xs)
        out = np.zeros(xs.shape, dtype=np.float64)
        out[hit] = self.masses[idx_c[hit]]
        return out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        idx = rng.choice(self.queries.size, size=size, p=self.masses)
        return self.queries[idx]

    def enumerate_mass(
        self, chunk_size: int = 1 << 18
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        for lo in range(0, self.queries.size, chunk_size):
            yield (
                self.queries[lo : lo + chunk_size],
                self.masses[lo : lo + chunk_size],
            )


class PointMass(ExplicitDistribution):
    """All query mass on a single query x0."""

    def __init__(self, universe_size: int, query: int):
        super().__init__(universe_size, [int(query)], [1.0])
        self.query = int(query)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PointMass(N={self.universe_size}, x={self.query})"
