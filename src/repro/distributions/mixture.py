"""Finite mixtures of query distributions.

Lets experiments interpolate between the paper's uniform-within-class
regime and adversarial skew, e.g. ``0.9 * UniformPositiveNegative +
0.1 * PointMass(hot_key)`` — a "mostly uniform with one hot key" workload.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.distributions.base import QueryDistribution
from repro.errors import DistributionError
from repro.utils.validation import check_probability_vector


class MixtureDistribution(QueryDistribution):
    """sum_i weights[i] * components[i]."""

    def __init__(
        self, components: Sequence[QueryDistribution], weights: Sequence[float]
    ):
        if not components:
            raise DistributionError("mixture needs at least one component")
        sizes = {c.universe_size for c in components}
        if len(sizes) != 1:
            raise DistributionError(
                "all components must share a universe size"
            )
        self.universe_size = sizes.pop()
        self.components = list(components)
        self.weights = check_probability_vector("weights", weights)
        if self.weights.size != len(self.components):
            raise DistributionError("one weight per component required")

    @property
    def support_size(self) -> int:
        # Upper bound (supports may overlap); exact size would require
        # materializing the union, which enumerate_mass avoids.
        return int(sum(c.support_size for c in self.components))

    def pmf_batch(self, xs: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=np.int64)
        out = np.zeros(xs.shape, dtype=np.float64)
        for w, comp in zip(self.weights, self.components):
            if w > 0:
                out += w * comp.pmf_batch(xs)
        return out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        choice = rng.choice(len(self.components), size=size, p=self.weights)
        out = np.empty(size, dtype=np.int64)
        for i, comp in enumerate(self.components):
            mask = choice == i
            k = int(mask.sum())
            if k:
                out[mask] = comp.sample(rng, k)
        return out

    def enumerate_mass(
        self, chunk_size: int = 1 << 18
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        # Chunks from different components may repeat a query; the
        # contention engine accumulates additively, so overlapping
        # supports are handled correctly without deduplication.
        for w, comp in zip(self.weights, self.components):
            if w == 0:
                continue
            for xs, masses in comp.enumerate_mass(chunk_size):
                yield xs, w * masses
