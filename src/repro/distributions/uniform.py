"""Uniform-style query distributions, including the paper's central class.

:class:`UniformPositiveNegative` is the distribution class of Theorem 3:
"the query is uniformly distributed within both positive queries and
negative queries" — a mixture of uniform-over-S (total mass
``positive_mass``) and uniform-over-complement (the rest).  Note this is
*not* uniform over Q unless ``positive_mass = n/N``; when the positive
mass is constant (e.g. 1/2) each individual positive query is ~N/(2n)
times more likely than a negative one, which is exactly why index cells
for large buckets become hot spots in FKS-style schemes.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.distributions.base import QueryDistribution
from repro.errors import DistributionError
from repro.utils.validation import check_probability


def _as_sorted_keys(keys, universe_size: int) -> np.ndarray:
    arr = np.asarray(sorted(int(k) for k in keys), dtype=np.int64)
    if arr.size == 0:
        raise DistributionError("key set must be non-empty")
    if np.unique(arr).size != arr.size:
        raise DistributionError("keys must be distinct")
    if int(arr[0]) < 0 or int(arr[-1]) >= universe_size:
        raise DistributionError("keys must lie in [0, universe_size)")
    return arr


class UniformPositiveNegative(QueryDistribution):
    """Uniform over S with mass p, uniform over U \\ S with mass 1 − p.

    Parameters
    ----------
    universe_size:
        |U| = N.
    keys:
        The data set S (the positive queries).
    positive_mass:
        Total probability of drawing a positive query (default 0.5).
        ``1.0`` / ``0.0`` give the pure uniform-positive / uniform-negative
        cases analyzed separately in Section 2.3.
    """

    def __init__(self, universe_size: int, keys, positive_mass: float = 0.5):
        self.universe_size = int(universe_size)
        self.keys = _as_sorted_keys(keys, self.universe_size)
        self.positive_mass = check_probability("positive_mass", positive_mass)
        self.negative_count = self.universe_size - self.keys.size
        if self.negative_count == 0 and self.positive_mass < 1.0:
            raise DistributionError(
                "no negative queries exist but positive_mass < 1"
            )

    @property
    def support_size(self) -> int:
        pos = self.keys.size if self.positive_mass > 0 else 0
        neg = self.negative_count if self.positive_mass < 1 else 0
        return pos + neg

    def _membership(self, xs: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=np.int64)
        idx = np.searchsorted(self.keys, xs)
        idx_c = np.minimum(idx, self.keys.size - 1)
        return (idx < self.keys.size) & (self.keys[idx_c] == xs)

    def pmf_batch(self, xs: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=np.int64)
        pos = self._membership(xs)
        out = np.zeros(xs.shape, dtype=np.float64)
        out[pos] = self.positive_mass / self.keys.size
        if self.negative_count:
            out[~pos] = (1.0 - self.positive_mass) / self.negative_count
        in_range = (xs >= 0) & (xs < self.universe_size)
        out[~in_range] = 0.0
        return out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        take_pos = rng.random(size) < self.positive_mass
        out = np.empty(size, dtype=np.int64)
        n_pos = int(take_pos.sum())
        if n_pos:
            out[take_pos] = self.keys[rng.integers(0, self.keys.size, size=n_pos)]
        n_neg = size - n_pos
        if n_neg:
            out[~take_pos] = self._sample_negatives(rng, n_neg)
        return out

    def _sample_negatives(self, rng: np.random.Generator, size: int) -> np.ndarray:
        # Rank-based exact sampling: the j-th smallest non-key is
        # j + (#keys <= that value); invert with searchsorted over
        # keys adjusted by their own ranks.
        ranks = rng.integers(0, self.negative_count, size=size)
        # keys[i] - i = number of non-keys strictly below keys[i]
        shifted = self.keys - np.arange(self.keys.size, dtype=np.int64)
        offset = np.searchsorted(shifted, ranks, side="right")
        return ranks + offset

    def enumerate_mass(
        self, chunk_size: int = 1 << 18
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if self.positive_mass > 0:
            w = self.positive_mass / self.keys.size
            for lo in range(0, self.keys.size, chunk_size):
                chunk = self.keys[lo : lo + chunk_size]
                yield chunk, np.full(chunk.size, w)
        if self.positive_mass < 1 and self.negative_count:
            w = (1.0 - self.positive_mass) / self.negative_count
            for lo in range(0, self.universe_size, chunk_size):
                hi = min(lo + chunk_size, self.universe_size)
                xs = np.arange(lo, hi, dtype=np.int64)
                neg = xs[~self._membership(xs)]
                if neg.size:
                    yield neg, np.full(neg.size, w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UniformPositiveNegative(N={self.universe_size}, "
            f"n={self.keys.size}, p={self.positive_mass})"
        )


class UniformQueries(UniformPositiveNegative):
    """Uniform over all of Q = [N] (positive_mass = n/N)."""

    def __init__(self, universe_size: int, keys):
        keys = _as_sorted_keys(keys, int(universe_size))
        super().__init__(
            int(universe_size), keys, positive_mass=keys.size / int(universe_size)
        )


class UniformOverSet(QueryDistribution):
    """Uniform over an arbitrary explicit query set (not necessarily S)."""

    def __init__(self, universe_size: int, queries):
        self.universe_size = int(universe_size)
        self.queries = _as_sorted_keys(queries, self.universe_size)

    @property
    def support_size(self) -> int:
        return self.queries.size

    def pmf_batch(self, xs: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=np.int64)
        idx = np.searchsorted(self.queries, xs)
        idx_c = np.minimum(idx, self.queries.size - 1)
        hit = (idx < self.queries.size) & (self.queries[idx_c] == xs)
        return np.where(hit, 1.0 / self.queries.size, 0.0)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self.queries[rng.integers(0, self.queries.size, size=size)]

    def enumerate_mass(
        self, chunk_size: int = 1 << 18
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        w = 1.0 / self.queries.size
        for lo in range(0, self.queries.size, chunk_size):
            chunk = self.queries[lo : lo + chunk_size]
            yield chunk, np.full(chunk.size, w)
