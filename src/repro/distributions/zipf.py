"""Zipf-distributed queries over an explicit candidate set.

A realistic skewed workload: mass of the rank-k candidate proportional to
``1/k**exponent``.  Used by E6 to show how skew degrades every scheme's
contention (the paper: "for arbitrary query distributions, the contentions
can be arbitrarily bad") and how the low-contention dictionary's
*uniform-within-class* guarantee fails gracefully relative to the
index-cell blowups of FKS/cuckoo.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.distributions.explicit import ExplicitDistribution
from repro.errors import DistributionError
from repro.utils.rng import as_generator


class ZipfDistribution(ExplicitDistribution):
    """Zipf(exponent) over ``candidates``; rank order optionally shuffled.

    Parameters
    ----------
    universe_size:
        |U| = N.
    candidates:
        The support (e.g. the data set S, or S plus sampled negatives).
    exponent:
        Zipf exponent a > 0; a -> 0 recovers uniform.
    shuffle_ranks:
        When a Generator/seed is given, candidate-to-rank assignment is
        randomized (otherwise candidates are ranked in the given order).
    """

    def __init__(
        self,
        universe_size: int,
        candidates,
        exponent: float = 1.0,
        shuffle_ranks=None,
    ):
        candidates = np.asarray(list(candidates), dtype=np.int64)
        if candidates.size == 0:
            raise DistributionError("candidates must be non-empty")
        if float(exponent) < 0:
            raise DistributionError("exponent must be non-negative")
        if shuffle_ranks is not None:
            rng = as_generator(shuffle_ranks)
            candidates = candidates.copy()
            rng.shuffle(candidates)
        ranks = np.arange(1, candidates.size + 1, dtype=np.float64)
        weights = ranks ** (-float(exponent))
        weights /= weights.sum()
        super().__init__(universe_size, candidates, weights)
        self.exponent = float(exponent)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ZipfDistribution(N={self.universe_size}, "
            f"support={self.support_size}, a={self.exponent})"
        )
