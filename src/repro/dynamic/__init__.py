"""Dynamic low-contention dictionaries (the paper's future work).

The paper closes with: "Another interesting and perhaps more realistic
future direction is to study the contention caused by the updates in
dynamic data structures."  This subpackage is our extension in that
direction:

- :class:`~repro.dynamic.dictionary.DynamicLowContentionDictionary` —
  a dynamization of the Section 2 scheme via the Bentley–Saxe
  logarithmic method: operations (inserts *and* deletes, encoded as
  signed entries) accumulate in geometrically growing levels, each
  level a static low-contention dictionary; a query consults every
  level, newest first, so its per-step contention inherits each level's
  O(1/level_size) profile.
- :mod:`~repro.dynamic.accounting` — update-contention accounting: the
  static model charges only reads, but updates *write*; we count the
  cells written per rebuild and report per-cell write contention over
  an operation sequence (the quantity the paper proposes studying).
- :mod:`~repro.dynamic.epoch` — epoch-based reclamation: every applied
  update group advances an epoch; :class:`EpochPin` captures a
  (epoch, snapshot) cut, makes arbitrary multi-key reads linearizable
  at that cut, and holds retired levels alive until released (with no
  pins open, retirement reclaims eagerly).
- :mod:`~repro.dynamic.replicated` — state-machine replication:
  :class:`ReplicatedDynamicDictionary` runs R replicas in
  deterministic lockstep on spawned rng streams (same key set,
  independent cells), serves majority-vote reads, and rebuilds a
  crashed replica by full-log replay into byte-identical state; all
  rebuild/verification probes are charged to separate rebuild
  counters via :func:`repro.heal.charged_to`.

Key measured trade-off (experiment E14): query contention is dominated
by the *smallest* non-empty level (O(1/B) for buffer capacity B), while
amortized update cost grows with the number of levels — the classic
static-to-dynamic tension, now visible in contention units. E24 serves
this stack live (``serve --dynamic``) and gates zero wrong answers
under churn + chaos, exact pinned reads, and rebuild-accounting
digest byte-identity.
"""

from repro.dynamic.accounting import RebuildRecord, UpdateCostAccount
from repro.dynamic.dictionary import DynamicLowContentionDictionary
from repro.dynamic.epoch import EpochManager, EpochPin
from repro.dynamic.levels import Level, LevelStructure
from repro.dynamic.replicated import (
    DynamicFaultStats,
    ReplicatedDynamicDictionary,
)

__all__ = [
    "DynamicLowContentionDictionary",
    "LevelStructure",
    "Level",
    "UpdateCostAccount",
    "RebuildRecord",
    "EpochManager",
    "EpochPin",
    "ReplicatedDynamicDictionary",
    "DynamicFaultStats",
]
