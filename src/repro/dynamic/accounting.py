"""Update-cost and write-contention accounting.

The static cell-probe model charges only query reads; a dynamic
structure also *writes* cells on every rebuild.  Analogously to
Definition 1, we define the **write contention** of a cell over an
operation sequence as (number of writes to that cell) / (number of
update operations) — the expected number of writes to the cell caused
by one update drawn uniformly from the sequence.  Rebuild-based
dynamization concentrates writes in time (a rebuild touches a whole
level) but spreads them across cells; the accounting here makes both
dimensions measurable (E14).

A rebuild writes each cell of the rebuilt level's table (at most) once,
so per-cell write counts within a level equal that level's rebuild
count; the accounting therefore tracks rebuild counts per level plus
any explicit point writes, which keeps it O(1) per rebuild.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict


@dataclasses.dataclass(frozen=True)
class RebuildRecord:
    """One level rebuild: which level, how many entries and cell writes.

    ``probes`` counts verification reads charged to the level's
    *rebuild* counter (never the query counter) — 0 when rebuild
    verification is off.
    """

    operation_index: int
    level: int
    entries: int
    cells_written: int
    probes: int = 0


@dataclasses.dataclass
class UpdateCostAccount:
    """Aggregates rebuild work and write counts over an op sequence."""

    updates: int = 0
    queries: int = 0
    rebuilds: list = dataclasses.field(default_factory=list)
    # Full-table writes per level (each rebuild writes each cell once).
    _full_writes: dict = dataclasses.field(
        default_factory=lambda: defaultdict(int)
    )
    # Explicit point writes keyed by (level, flat_cell).
    _point_writes: dict = dataclasses.field(
        default_factory=lambda: defaultdict(int)
    )

    def record_update(self) -> None:
        """Count one insert/delete operation."""
        self.updates += 1

    def record_query(self) -> None:
        """Count one membership query."""
        self.queries += 1

    def record_rebuild(
        self, level: int, entries: int, cells_written: int, probes: int = 0
    ) -> None:
        """Record one level rebuild (writes every cell of the level once)."""
        self.rebuilds.append(
            RebuildRecord(
                operation_index=self.updates,
                level=level,
                entries=entries,
                cells_written=cells_written,
                probes=int(probes),
            )
        )
        self._full_writes[level] += 1

    def record_point_write(self, level: int, flat_cell: int) -> None:
        """Record a single-cell write outside a full rebuild."""
        self._point_writes[(level, int(flat_cell))] += 1

    # -- summaries ---------------------------------------------------------------

    @property
    def total_cells_written(self) -> int:
        return sum(r.cells_written for r in self.rebuilds)

    @property
    def rebuild_probes(self) -> int:
        """Total verification probes charged to rebuild counters."""
        return sum(r.probes for r in self.rebuilds)

    def amortized_write_cost(self) -> float:
        """Cells written per update — the classic amortized rebuild cost."""
        return self.total_cells_written / self.updates if self.updates else 0.0

    def max_write_contention(self) -> float:
        """max over cells of writes/updates — the write analogue of phi.

        A cell of level L is written once per rebuild of L, plus any
        point writes it received.
        """
        if not self.updates:
            return 0.0
        best = max(self._full_writes.values(), default=0)
        for (level, _), count in self._point_writes.items():
            best = max(best, count + self._full_writes.get(level, 0))
        return best / self.updates

    def rebuild_count_by_level(self) -> dict[int, int]:
        """How many times each level was rebuilt."""
        return dict(self._full_writes)

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        return {
            "updates": self.updates,
            "queries": self.queries,
            "rebuilds": len(self.rebuilds),
            "amortized_cells_written": round(self.amortized_write_cost(), 2),
            "max_write_contention": round(self.max_write_contention(), 4),
            "rebuild_probes": self.rebuild_probes,
        }
