"""The dynamic low-contention dictionary facade.

Queries walk levels newest-first and ask each level's *static*
low-contention dictionary two honest membership questions — "is there
an insert entry for x?" then "a delete entry?" — stopping at the first
level that pins the key's state.  Probe cost is thus at most
``2 * levels * t_static``; query contention is dominated by the
smallest non-empty level (its table is the smallest s, so its floor
1/s is the highest).  Updates pay amortized O(log U) static rebuilds
(binary-counter carries) plus occasional flattening; all rebuild work
and write contention is recorded in an
:class:`~repro.dynamic.accounting.UpdateCostAccount`.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.distributions.base import QueryDistribution
from repro.dynamic.accounting import UpdateCostAccount
from repro.dynamic.levels import LevelStructure, encode_delete, encode_insert
from repro.errors import ParameterError, QueryError
from repro.utils.rng import as_generator


class DynamicLowContentionDictionary:
    """Insert/delete/query membership with low-contention lookups."""

    name = "dynamic-low-contention"

    def __init__(
        self,
        universe_size: int,
        rng=None,
        max_trials: int = 500,
        min_level_width: int = 0,
        verify_rebuilds: bool = False,
        verify_seed: int = 0,
        on_retire=None,
    ):
        self.universe_size = int(universe_size)
        self.rng = as_generator(rng)
        self.account = UpdateCostAccount()
        self._levels = LevelStructure(
            self.universe_size, self.rng, self.account, max_trials,
            min_level_width=min_level_width,
            verify_rebuilds=verify_rebuilds,
            verify_seed=verify_seed,
            on_retire=on_retire,
        )

    # -- updates ---------------------------------------------------------------------

    def _check_update_key(self, key: int) -> int:
        key = int(key)
        if not 0 <= key < self.universe_size:
            raise ParameterError(
                f"key {key} outside universe [0, {self.universe_size})"
            )
        return key

    def insert(self, key: int) -> None:
        """Insert ``key`` (idempotent)."""
        key = self._check_update_key(key)
        self.account.record_update()
        if not self._levels.state_of(key):
            self._levels.apply(key, True)

    def delete(self, key: int) -> None:
        """Delete ``key`` (no-op when absent)."""
        key = self._check_update_key(key)
        self.account.record_update()
        if self._levels.state_of(key):
            self._levels.apply(key, False)

    # -- queries ---------------------------------------------------------------------

    def _check_key(self, x: int) -> int:
        x = int(x)
        if not 0 <= x < self.universe_size:
            raise QueryError(
                f"query {x} outside universe [0, {self.universe_size})"
            )
        return x

    def _check_keys_batch(self, xs) -> np.ndarray:
        xs = np.asarray(xs, dtype=np.int64)
        if xs.size and (
            int(xs.min()) < 0 or int(xs.max()) >= self.universe_size
        ):
            bad = xs[(xs < 0) | (xs >= self.universe_size)][0]
            raise QueryError(
                f"query {int(bad)} outside universe [0, {self.universe_size})"
            )
        return xs

    def query(self, x: int, rng=None) -> bool:
        """Honest membership query: charged probes on every level visited."""
        x = self._check_key(x)
        rng = as_generator(rng)
        self.account.record_query()
        for level in self._levels.levels:
            if level is None:
                continue
            if level.contains_encoded(encode_insert(x), rng):
                return True
            if level.contains_encoded(encode_delete(x), rng):
                return False
        return False

    def query_batch(self, xs, rng=None) -> np.ndarray:
        """Honest membership queries for a whole batch, vectorized.

        Walks levels newest-first like :meth:`query`, but asks each
        level its two encoded questions for *all still-undecided* keys
        at once through the static structures' ``query_batch``
        machinery.  The short-circuit discipline is preserved exactly:
        a key decided at a newer level is never probed at an older one,
        so per-level probe **totals** match the scalar path (per-cell
        placement differs only by rng draw order).
        """
        xs = self._check_keys_batch(xs)
        rng = as_generator(rng)
        flat = xs.ravel()
        for _ in range(flat.size):
            self.account.record_query()
        answers = np.zeros(flat.shape, dtype=bool)
        undecided = np.ones(flat.shape, dtype=bool)
        for level in self._levels.levels:
            if level is None:
                continue
            idx = np.nonzero(undecided)[0]
            if idx.size == 0:
                break
            pending = flat[idx]
            ins_hit = level.structure.query_batch(
                2 * pending + 1, rng
            )
            hit_idx = idx[ins_hit]
            answers[hit_idx] = True
            undecided[hit_idx] = False
            miss_idx = idx[~ins_hit]
            if miss_idx.size:
                del_hit = level.structure.query_batch(
                    2 * flat[miss_idx], rng
                )
                # A delete entry pins the key's state to False.
                undecided[miss_idx[del_hit]] = False
        return answers.reshape(xs.shape)

    def contains(self, x: int) -> bool:
        """Ground truth (no probes)."""
        return self._levels.state_of(self._check_key(x))

    def contains_batch(self, xs) -> np.ndarray:
        """Vectorized ground-truth membership (no probes)."""
        xs = self._check_keys_batch(xs)
        return np.isin(xs, self.live_keys())

    # -- structure introspection --------------------------------------------------------

    @property
    def live_count(self) -> int:
        return len(self._levels.live_keys())

    def live_keys(self) -> np.ndarray:
        """The current key set, sorted (ground truth; no probes)."""
        return np.asarray(self._levels.live_keys(), dtype=np.int64)

    @property
    def level_sizes(self) -> list[int]:
        return [
            (lv.size if lv is not None else 0) for lv in self._levels.levels
        ]

    @property
    def space_words(self) -> int:
        return sum(
            lv.structure.table.num_cells
            for lv in self._levels.nonempty_levels
        )

    @property
    def max_probes(self) -> int:
        return sum(
            2 * lv.structure.max_probes for lv in self._levels.nonempty_levels
        )

    @property
    def rebuild_probes(self) -> int:
        """Verification probes charged to rebuild counters (never queries)."""
        return self.account.rebuild_probes

    def query_counter_digest(self) -> str:
        """SHA-256 over the query counters of all non-empty levels, in order.

        Rebuild-verification probes are charged to separate rebuild
        counters, so this digest is byte-identical between a
        ``verify_rebuilds=True`` run and a plain run of the same seeded
        stream — the accounting-isolation check E24 gates on.
        """
        h = hashlib.sha256()
        for lv in self._levels.nonempty_levels:
            h.update(lv.index.to_bytes(4, "little"))
            h.update(lv.structure.table.counter.digest().encode("ascii"))
        return h.hexdigest()

    # -- contention measurement -----------------------------------------------------------

    def empirical_query_contention(
        self,
        distribution: QueryDistribution,
        num_queries: int,
        rng=None,
    ) -> dict:
        """Run ``num_queries`` honest queries; report read contention.

        Returns per-level and global maxima of (probes to a cell) /
        (number of queries) — the dynamic analogue of E1's measurement —
        plus the observed mean probe count.
        """
        rng = as_generator(rng)
        levels = self._levels.nonempty_levels
        for lv in levels:
            lv.structure.table.counter.reset()
        xs = np.asarray(distribution.sample(rng, num_queries), dtype=np.int64)
        answers = self.query_batch(xs, rng)
        truth = np.isin(xs, self.live_keys())
        if np.any(answers != truth):
            bad = int(xs[answers != truth][0])
            raise QueryError(
                f"dynamic query({bad}) = {bool(answers[answers != truth][0])}, "
                f"ground truth {bool(truth[xs == bad][0])}"
            )
        per_level = []
        total_probes = 0
        global_max = 0.0
        for lv in levels:
            counter = lv.structure.table.counter
            counts = counter.total_counts()
            total_probes += int(counts.sum())
            level_max = float(counts.max(initial=0)) / num_queries
            global_max = max(global_max, level_max)
            per_level.append(
                {
                    "level": lv.index,
                    "entries": lv.size,
                    "s": lv.structure.table.s,
                    "max_contention": level_max,
                    "floor_1_over_s": 1.0 / lv.structure.table.s,
                }
            )
            counter.reset()
        return {
            "global_max_contention": global_max,
            "mean_probes": total_probes / num_queries,
            "per_level": per_level,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicLowContentionDictionary(live={self.live_count}, "
            f"levels={self.level_sizes}, space={self.space_words}w)"
        )
