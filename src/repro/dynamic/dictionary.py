"""The dynamic low-contention dictionary facade.

Queries walk levels newest-first and ask each level's *static*
low-contention dictionary two honest membership questions — "is there
an insert entry for x?" then "a delete entry?" — stopping at the first
level that pins the key's state.  Probe cost is thus at most
``2 * levels * t_static``; query contention is dominated by the
smallest non-empty level (its table is the smallest s, so its floor
1/s is the highest).  Updates pay amortized O(log U) static rebuilds
(binary-counter carries) plus occasional flattening; all rebuild work
and write contention is recorded in an
:class:`~repro.dynamic.accounting.UpdateCostAccount`.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import QueryDistribution
from repro.dynamic.accounting import UpdateCostAccount
from repro.dynamic.levels import LevelStructure, encode_delete, encode_insert
from repro.errors import QueryError
from repro.utils.rng import as_generator


class DynamicLowContentionDictionary:
    """Insert/delete/query membership with low-contention lookups."""

    name = "dynamic-low-contention"

    def __init__(
        self,
        universe_size: int,
        rng=None,
        max_trials: int = 500,
        min_level_width: int = 0,
    ):
        self.universe_size = int(universe_size)
        self.rng = as_generator(rng)
        self.account = UpdateCostAccount()
        self._levels = LevelStructure(
            self.universe_size, self.rng, self.account, max_trials,
            min_level_width=min_level_width,
        )

    # -- updates ---------------------------------------------------------------------

    def insert(self, key: int) -> None:
        """Insert ``key`` (idempotent)."""
        self.account.record_update()
        if not self._levels.state_of(key):
            self._levels.apply(key, True)

    def delete(self, key: int) -> None:
        """Delete ``key`` (no-op when absent)."""
        self.account.record_update()
        if self._levels.state_of(key):
            self._levels.apply(key, False)

    # -- queries ---------------------------------------------------------------------

    def query(self, x: int, rng=None) -> bool:
        """Honest membership query: charged probes on every level visited."""
        x = int(x)
        if not 0 <= x < self.universe_size:
            raise QueryError(f"query {x} outside universe")
        rng = as_generator(rng)
        self.account.record_query()
        for level in self._levels.levels:
            if level is None:
                continue
            if level.contains_encoded(encode_insert(x), rng):
                return True
            if level.contains_encoded(encode_delete(x), rng):
                return False
        return False

    def contains(self, x: int) -> bool:
        """Ground truth (no probes)."""
        return self._levels.state_of(int(x))

    # -- structure introspection --------------------------------------------------------

    @property
    def live_count(self) -> int:
        return len(self._levels.live_keys())

    def live_keys(self) -> np.ndarray:
        """The current key set, sorted (ground truth; no probes)."""
        return np.asarray(self._levels.live_keys(), dtype=np.int64)

    @property
    def level_sizes(self) -> list[int]:
        return [
            (lv.size if lv is not None else 0) for lv in self._levels.levels
        ]

    @property
    def space_words(self) -> int:
        return sum(
            lv.structure.table.num_cells
            for lv in self._levels.nonempty_levels
        )

    @property
    def max_probes(self) -> int:
        return sum(
            2 * lv.structure.max_probes for lv in self._levels.nonempty_levels
        )

    # -- contention measurement -----------------------------------------------------------

    def empirical_query_contention(
        self,
        distribution: QueryDistribution,
        num_queries: int,
        rng=None,
    ) -> dict:
        """Run ``num_queries`` honest queries; report read contention.

        Returns per-level and global maxima of (probes to a cell) /
        (number of queries) — the dynamic analogue of E1's measurement —
        plus the observed mean probe count.
        """
        rng = as_generator(rng)
        levels = self._levels.nonempty_levels
        for lv in levels:
            lv.structure.table.counter.reset()
        xs = distribution.sample(rng, num_queries)
        for x in xs:
            answer = self.query(int(x), rng)
            if answer != self.contains(int(x)):
                raise QueryError(
                    f"dynamic query({int(x)}) = {answer}, "
                    f"ground truth {self.contains(int(x))}"
                )
        per_level = []
        total_probes = 0
        global_max = 0.0
        for lv in levels:
            counter = lv.structure.table.counter
            counts = counter.total_counts()
            total_probes += int(counts.sum())
            level_max = float(counts.max(initial=0)) / num_queries
            global_max = max(global_max, level_max)
            per_level.append(
                {
                    "level": lv.index,
                    "entries": lv.size,
                    "s": lv.structure.table.s,
                    "max_contention": level_max,
                    "floor_1_over_s": 1.0 / lv.structure.table.s,
                }
            )
            counter.reset()
        return {
            "global_max_contention": global_max,
            "mean_probes": total_probes / num_queries,
            "per_level": per_level,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicLowContentionDictionary(live={self.live_count}, "
            f"levels={self.level_sizes}, space={self.space_words}w)"
        )
