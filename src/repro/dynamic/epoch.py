"""Epoch-based versioning for the dynamic dictionary.

Every applied update (or micro-batched update group) advances a global
**epoch**.  Readers that need a consistent multi-key view *pin* the
current epoch, capturing a snapshot of the level structures as they
stood; level structures unlinked by later merges/flattens are
**retired** rather than dropped, and reclaimed only once no pin from
an epoch that could still reference them remains — epoch-based memory
reclamation in the style of Arbel-Raviv & Brown (DEBRA), adapted to
whole immutable level structures instead of individual nodes.

The invariant: a structure retired while the manager was at epoch ``e``
was part of the state some reader pinned at epoch ``p <= e`` may still
walk, so it is reclaimable iff ``min_pinned > e`` (or nothing is
pinned).  Because levels are immutable once installed, a pinned reader
needs no locks: the captured :class:`~repro.dynamic.levels.Level`
objects answer queries forever, and reclamation is just dropping the
last reference.

Pins are context managers::

    with replicated.pin() as pin:
        answers = replicated.query_pinned(pin, keys, rng)

Everything here is clockless and allocation-only — "reclaim" means
releasing Python references; what it buys is a *measured* bound on the
extra space a long-lived reader forces the structure to retain
(:meth:`EpochManager.stats`, gated in E24).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ServeError
from repro.telemetry.events import BUS, EpochEvent


@dataclasses.dataclass
class _Retired:
    """One retired structure: the epoch it was current through, its payload."""

    epoch: int
    payload: object
    words: int


class EpochPin:
    """A reader's claim on one epoch's state (context manager).

    ``snapshot`` is whatever the pinning structure captured (for the
    replicated dictionary: per-replica level lists plus the live key
    set at pin time); ``epoch`` is the pinned epoch number.
    """

    __slots__ = ("epoch", "snapshot", "_manager", "released")

    def __init__(self, epoch: int, snapshot, manager: "EpochManager"):
        self.epoch = int(epoch)
        self.snapshot = snapshot
        self._manager = manager
        self.released = False

    def release(self) -> None:
        """Drop the claim (idempotent); may trigger reclamation."""
        if not self.released:
            self.released = True
            self._manager._release(self)

    def __enter__(self) -> "EpochPin":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class EpochManager:
    """Epoch counter + pin refcounts + deferred reclamation of retirees."""

    def __init__(self) -> None:
        self.epoch = 0
        self._pins: dict[int, int] = {}
        self._retired: list[_Retired] = []
        self.retired_total = 0
        self.reclaimed_total = 0
        self.peak_retained = 0

    # -- pinning -----------------------------------------------------------------

    @property
    def min_pinned(self) -> int | None:
        """The oldest pinned epoch, or None when nothing is pinned."""
        return min(self._pins) if self._pins else None

    @property
    def pinned(self) -> int:
        """Number of live pins."""
        return sum(self._pins.values())

    def pin(self, snapshot=None) -> EpochPin:
        """Pin the current epoch; the caller supplies its snapshot."""
        self._pins[self.epoch] = self._pins.get(self.epoch, 0) + 1
        return EpochPin(self.epoch, snapshot, self)

    def _release(self, pin: EpochPin) -> None:
        count = self._pins.get(pin.epoch, 0)
        if count <= 0:
            raise ServeError(f"release of unpinned epoch {pin.epoch}")
        if count == 1:
            del self._pins[pin.epoch]
        else:
            self._pins[pin.epoch] = count - 1
        self._reclaim()

    # -- retirement --------------------------------------------------------------

    def retire(self, payload, words: int = 0) -> None:
        """Hold ``payload`` until no pin at or before the current epoch."""
        self._retired.append(_Retired(self.epoch, payload, int(words)))
        self.retired_total += 1
        self.peak_retained = max(self.peak_retained, len(self._retired))
        if not self._pins:
            self._reclaim()

    def _reclaim(self) -> int:
        floor = self.min_pinned
        if floor is None:
            freed = len(self._retired)
            self._retired.clear()
        else:
            keep = [r for r in self._retired if r.epoch >= floor]
            freed = len(self._retired) - len(keep)
            self._retired = keep
        self.reclaimed_total += freed
        return freed

    # -- advancing ---------------------------------------------------------------

    def advance(self) -> int:
        """Move to the next epoch (one applied update group); reclaim."""
        self.epoch += 1
        freed = self._reclaim()
        if BUS.active:
            BUS.emit(EpochEvent(
                epoch=self.epoch,
                retired=len(self._retired),
                reclaimed=freed,
                pinned=self.pinned,
            ))
        return self.epoch

    # -- introspection -----------------------------------------------------------

    @property
    def retained(self) -> int:
        """Retired structures currently held back by pins."""
        return len(self._retired)

    @property
    def retained_words(self) -> int:
        """Table words currently held back by pins."""
        return sum(r.words for r in self._retired)

    def stats(self) -> dict:
        """Flat dict for experiment tables and telemetry snapshots."""
        return {
            "epoch": self.epoch,
            "pinned": self.pinned,
            "retired_total": self.retired_total,
            "reclaimed_total": self.reclaimed_total,
            "retained": self.retained,
            "retained_words": self.retained_words,
            "peak_retained": self.peak_retained,
        }
