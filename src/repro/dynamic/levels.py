"""The logarithmic method (Bentley–Saxe) over signed entries.

A dynamic operation is an entry ``(key, is_insert)``; entries live in
levels of geometrically growing capacity, newest level first.  Each
non-empty level is backed by a *static* low-contention dictionary over
the encoded universe ``2N`` (``2k+1`` = "insert k", ``2k`` =
"delete k"), so the membership machinery — honest probes, plans, exact
contention — applies per level unchanged.

Level discipline (binary-counter carries):

- an operation is a one-entry unit; it merges with levels 0..j-1 where
  j is the first empty level, landing at level j;
- merges dedupe by key, newest entry winning;
- delete entries are dropped when the merge lands below every other
  non-empty level (nothing older remains for them to cancel);
- when accumulated dead weight makes total entries exceed twice the
  live count, everything is flattened into one level of pure inserts.

A key appears in at most one entry per level; the newest level
containing it determines its state.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cellprobe.counters import ProbeCounter
from repro.cellprobe.table import Table
from repro.core import LowContentionDictionary
from repro.dictionaries.base import StaticDictionary
from repro.errors import ParameterError, VerificationError
from repro.heal import charged_to
from repro.telemetry.events import BUS, RebuildEvent
from repro.utils.rng import as_generator


def encode_insert(key: int) -> int:
    """Encode an insert entry for key into the doubled universe."""
    return 2 * int(key) + 1


def encode_delete(key: int) -> int:
    """Encode a delete (tombstone) entry for key."""
    return 2 * int(key)


class SingletonDictionary(StaticDictionary):
    """A one-key static dictionary: the key replicated across a row.

    Queries probe one uniformly random cell — contention exactly 1/s,
    the flattest possible profile — so singleton levels never become
    hot spots.
    """

    name = "singleton"

    def __init__(self, keys, universe_size: int, rng=None, width: int = 64):
        self.universe_size = int(universe_size)
        self.keys = self._sorted_keys(keys, self.universe_size)
        if self.keys.size != 1:
            raise ParameterError("SingletonDictionary stores exactly one key")
        self.table = Table(rows=1, s=int(width))
        self.table.write_row(
            0, np.full(int(width), int(self.keys[0]), dtype=np.uint64)
        )

    def query(self, x: int, rng=None) -> bool:
        x = self.check_key(x)
        rng = as_generator(rng)
        return self.table.read(0, int(rng.integers(0, self.table.s)), 0) == x

    def probe_plan(self, x):
        from repro.cellprobe.steps import UniformStrided

        self.check_key(x)
        return [UniformStrided(row=0, start=0, stride=1, count=self.table.s)]

    def probe_plan_batch(self, xs):
        from repro.cellprobe.steps import BatchStridedStep

        xs = np.asarray(xs, dtype=np.int64)
        batch = xs.shape[0]
        return [
            BatchStridedStep(
                row=0,
                starts=np.zeros(batch, dtype=np.int64),
                strides=np.ones(batch, dtype=np.int64),
                counts=np.full(batch, self.table.s, dtype=np.int64),
                shared=True,
            )
        ]

    @property
    def max_probes(self) -> int:
        return 1


@dataclasses.dataclass
class Level:
    """One level: its entries (key -> is_insert) and static structure.

    ``rebuild_counter`` (set only when rebuild verification is on) holds
    the probes the post-build canary sweep charged — the same
    :class:`~repro.cellprobe.counters.ProbeCounter` substrate as the
    query counter, but a *separate* instance, so the query counter's
    Binomial(Q, Φ_t) envelope statements stay clean.
    """

    index: int
    entries: dict  # key -> bool (True = insert)
    structure: StaticDictionary
    rebuild_counter: ProbeCounter | None = None

    @property
    def size(self) -> int:
        return len(self.entries)

    def state_of(self, key: int) -> bool | None:
        """True/False if this level pins the key's state; None if absent."""
        return self.entries.get(int(key))

    def contains_encoded(self, encoded: int, rng) -> bool:
        """Honest probe-charged membership of an encoded entry."""
        return self.structure.query(encoded, rng)


class LevelStructure:
    """The level list plus merge/flatten logic (no probe accounting here;
    the structures inside levels do their own)."""

    def __init__(
        self,
        universe_size: int,
        rng=None,
        account=None,
        max_trials: int = 500,
        min_level_width: int = 0,
        verify_rebuilds: bool = False,
        verify_seed: int = 0,
        on_retire=None,
    ):
        self.universe_size = int(universe_size)
        self.encoded_universe = 2 * self.universe_size
        self.rng = as_generator(rng)
        self.levels: list[Level | None] = []
        self.account = account
        self.max_trials = max_trials
        # Pad every level's table to at least this many cells per row.
        # 0 = paper-pure sizing (s = beta * level size): small levels then
        # dominate query contention at ~1/level_size.  Setting this to
        # Theta(total live size) restores O(1/n) query contention at an
        # O(n log n) space cost — the dynamization trade-off E14 measures.
        self.min_level_width = int(min_level_width)
        # Canary-read every entry after each rebuild, charged to a
        # per-level rebuild counter (never the query counter).  The
        # sweep draws from its own seeded rng, so the construction rng
        # stream — and hence the built tables and the query counters —
        # are byte-identical whether verification is on or off.
        self.verify_rebuilds = bool(verify_rebuilds)
        self.verify_seed = int(verify_seed)
        self._installs = 0
        # Called with each Level just before it is unlinked (merge carry
        # or flatten) — the epoch manager's retirement hook.
        self.on_retire = on_retire
        # Telemetry labels, settable by the serving wrapper.
        self.shard = 0
        self.replica = 0

    # -- state queries (no probes; used for ground truth & merging) -----------------

    def state_of(self, key: int) -> bool:
        """Current membership of key: newest level containing it wins."""
        for level in self.levels:
            if level is not None:
                state = level.state_of(key)
                if state is not None:
                    return state
        return False

    def live_keys(self) -> list[int]:
        """All keys whose newest entry is an insert, sorted."""
        seen: dict[int, bool] = {}
        for level in self.levels:
            if level is None:
                continue
            for key, is_insert in level.entries.items():
                seen.setdefault(key, is_insert)
        return sorted(k for k, alive in seen.items() if alive)

    @property
    def total_entries(self) -> int:
        return sum(lv.size for lv in self.levels if lv is not None)

    @property
    def nonempty_levels(self) -> list[Level]:
        return [lv for lv in self.levels if lv is not None]

    # -- structure building ------------------------------------------------------------

    def _build_structure(self, entries: dict) -> StaticDictionary:
        encoded = [
            encode_insert(k) if ins else encode_delete(k)
            for k, ins in entries.items()
        ]
        if len(encoded) == 1:
            width = max(64, self.min_level_width)
            return SingletonDictionary(
                encoded, self.encoded_universe, self.rng, width=width
            )
        params = None
        if self.min_level_width > 2 * len(encoded):
            from repro.core import SchemeParameters

            params = SchemeParameters(
                n=len(encoded),
                beta=self.min_level_width / len(encoded),
            )
        return LowContentionDictionary(
            encoded, self.encoded_universe, rng=self.rng,
            params=params, max_trials=self.max_trials,
        )

    def _install(self, index: int, entries: dict) -> None:
        while len(self.levels) <= index:
            self.levels.append(None)
        structure = self._build_structure(entries)
        probes = 0
        rebuild_counter = None
        if self.verify_rebuilds:
            rebuild_counter = ProbeCounter(structure.table.num_cells)
            probes = self._verify_structure(structure, entries, rebuild_counter)
        self._installs += 1
        self.levels[index] = Level(
            index=index,
            entries=entries,
            structure=structure,
            rebuild_counter=rebuild_counter,
        )
        if self.account is not None:
            self.account.record_rebuild(
                level=index,
                entries=len(entries),
                cells_written=structure.table.num_cells,
                probes=probes,
            )
        if BUS.active:
            BUS.emit(RebuildEvent(
                shard=self.shard,
                replica=self.replica,
                level=index,
                entries=len(entries),
                cells=structure.table.num_cells,
                probes=probes,
            ))

    def _verify_structure(
        self, structure: StaticDictionary, entries: dict, counter: ProbeCounter
    ) -> int:
        """Canary-read every encoded entry through the real query path.

        All probes are rerouted to ``counter`` via
        :func:`repro.heal.charged_to`; the rng is seeded from
        ``(verify_seed, install_sequence)`` so the sweep is deterministic
        and independent of the construction stream.
        """
        verify_rng = np.random.default_rng((self.verify_seed, self._installs))
        with charged_to(structure.table, counter):
            for k, ins in entries.items():
                encoded = encode_insert(k) if ins else encode_delete(k)
                if not structure.query(encoded, verify_rng):
                    raise VerificationError(encoded, False, True)
        return counter.total_probes()

    def _retire(self, level: Level | None) -> None:
        """Hand a level being unlinked to the retirement hook, if any."""
        if level is not None and self.on_retire is not None:
            self.on_retire(level)

    # -- the update path ---------------------------------------------------------------

    def apply(self, key: int, is_insert: bool) -> None:
        """Apply one operation via binary-counter carrying."""
        key = int(key)
        if not 0 <= key < self.universe_size:
            raise ParameterError(f"key {key} outside universe")
        # Find the first empty level; merge everything newer into it.
        j = 0
        while j < len(self.levels) and self.levels[j] is not None:
            j += 1
        merged: dict[int, bool] = {key: is_insert}  # newest wins: seed first
        for i in range(j):
            for k, ins in self.levels[i].entries.items():
                merged.setdefault(k, ins)
            self._retire(self.levels[i])
            self.levels[i] = None
        # Drop deletes when nothing older remains.
        nothing_older = all(
            self.levels[i] is None for i in range(j + 1, len(self.levels))
        )
        if nothing_older:
            merged = {k: ins for k, ins in merged.items() if ins}
        if merged:
            self._install(j, merged)
        self._maybe_flatten()

    def _maybe_flatten(self) -> None:
        live = self.live_keys()
        total = self.total_entries
        if total >= 8 and total > 2 * max(len(live), 1):
            for i in range(len(self.levels)):
                self._retire(self.levels[i])
                self.levels[i] = None
            if live:
                # Land the flattened set at the level matching its size,
                # keeping the capacity discipline (level j holds ~2^j).
                index = max(0, int(np.ceil(np.log2(len(live)))))
                self._install(index, {k: True for k in live})
