"""Replicated dynamic dictionary: lockstep updates, voted reads, epochs.

The static :class:`~repro.dictionaries.replicated.ReplicatedDictionary`
copies one built table R times; a *dynamic* structure cannot, because
each replica owns a living level hierarchy that rebuilds as it goes.
Replication here is **state-machine replication**: R independent
:class:`~repro.dynamic.dictionary.DynamicLowContentionDictionary`
replicas (each with its own spawned rng stream, so their hash choices
differ — corruption of one replica's tables is uncorrelated with the
others') apply the same update log in deterministic lockstep.  A
crashed replica stops applying updates and loses its levels; rebuild
replays the full log against the replica's re-derived rng stream,
reconstructing *byte-identical* state to a replica that never crashed.

Reads are majority votes in the style of the static ``"majority"``
mode: every live replica executes the honest query against its own
tables (all probes charged to its own per-level counters), detected
failures abstain, ties resolve to ``False``, and an all-abstain round
raises :class:`~repro.errors.FaultExhaustedError`.  Because replicas
disagree only when damaged, a strict majority of healthy replicas
guarantees correct answers under silent cell corruption.

Every applied update (or micro-batched group via :meth:`apply_batch`)
advances an :class:`~repro.dynamic.epoch.EpochManager` epoch.  Levels
unlinked by merges/flattens are retired into the manager and reclaimed
only once no pinned reader remains; :meth:`pin` captures a consistent
snapshot (per-replica level lists + the live key set) against which
:meth:`query_pinned` serves linearizable multi-key reads.

Rebuild verification probes (``verify_rebuilds=True``) are charged via
:func:`repro.heal.charged_to` to per-level rebuild counters, so each
replica's *query*-counter digest stays byte-identical to an
unverified replay of the same stream.

**Log compaction & snapshots** (the durability substrate of
:mod:`repro.persist`): the update log is kept as *groups* (one per
applied batch — one epoch advance each, so replay is
epoch-faithful).  :meth:`compact_log` folds the retained groups into a
pickled **base snapshot** of every replica's full state (level
structures, install counter, cost account, and the shared rng stream's
``bit_generator.state``) and clears the log, so
:meth:`rebuild_replica` becomes *base restore + bounded suffix replay*
instead of unbounded full-log replay, and memory stops growing with
update volume.  :meth:`snapshot_payload` /
:meth:`from_snapshot` round-trip the whole structure through a plain
dict; restore is byte-identical (``table._cells``) to a never-crashed
twin because the snapshot carries the exact rng stream position, and
restore-time canary verification (:meth:`verify_state`) charges its
probes to throwaway recovery counters via
:func:`repro.heal.charged_to`, so query-counter digests stay
byte-identical whether or not recovery verification ran.
"""

from __future__ import annotations

import dataclasses
import pickle
from contextlib import ExitStack

import numpy as np

from repro.cellprobe.counters import ProbeCounter
from repro.dynamic.dictionary import DynamicLowContentionDictionary
from repro.dynamic.epoch import EpochManager, EpochPin
from repro.errors import (
    FaultExhaustedError,
    HealError,
    ParameterError,
    ReplicaUnavailableError,
    ReproError,
    VerificationError,
)
from repro.heal import charged_to
from repro.utils.rng import as_generator, spawn_generators

#: Exceptions treated as a *detected* per-replica failure (abstention)
#: by the voted read paths — same taxonomy as the static replicated
#: dictionary: corrupted words can drive the honest algorithm to an
#: out-of-range probe or an impossible decode, and a crash is explicit.
_REPLICA_FAILURES = (ReproError, OverflowError, IndexError, ValueError)


@dataclasses.dataclass
class DynamicFaultStats:
    """Counters for the fault paths of the replicated dynamic dictionary."""

    crash_hits: int = 0
    abstentions: int = 0
    crashes: int = 0
    rebuilds: int = 0
    corruptions: int = 0


def _query_batch_levels(levels, xs: np.ndarray, rng) -> np.ndarray:
    """Walk a (possibly snapshotted) level list newest-first, vectorized.

    The same short-circuit discipline as
    :meth:`DynamicLowContentionDictionary.query_batch`, but against an
    explicit level sequence — which is what lets an epoch-pinned read
    run against retired structures.
    """
    flat = np.asarray(xs, dtype=np.int64).ravel()
    answers = np.zeros(flat.shape, dtype=bool)
    undecided = np.ones(flat.shape, dtype=bool)
    for level in levels:
        if level is None:
            continue
        idx = np.nonzero(undecided)[0]
        if idx.size == 0:
            break
        ins_hit = level.structure.query_batch(2 * flat[idx] + 1, rng)
        answers[idx[ins_hit]] = True
        undecided[idx[ins_hit]] = False
        miss_idx = idx[~ins_hit]
        if miss_idx.size:
            del_hit = level.structure.query_batch(2 * flat[miss_idx], rng)
            undecided[miss_idx[del_hit]] = False
    return answers


class ReplicatedDynamicDictionary:
    """R lockstep dynamic replicas with voted reads and epoch versioning."""

    name = "replicated-dynamic"

    def __init__(
        self,
        universe_size: int,
        replicas: int,
        seed: int = 0,
        max_trials: int = 500,
        min_level_width: int = 0,
        verify_rebuilds: bool = False,
        armed: bool = False,
    ):
        if replicas < 1:
            raise ParameterError("replicas must be >= 1")
        self.universe_size = int(universe_size)
        self.replicas = int(replicas)
        self.seed = int(seed)
        self.max_trials = int(max_trials)
        self.min_level_width = int(min_level_width)
        self.verify_rebuilds = bool(verify_rebuilds)
        # Fault hooks are chaos-only: they must be armed explicitly,
        # mirroring FaultConfig.armed on the static stack.
        self.armed = bool(armed)
        self.epochs = EpochManager()
        self.fault_stats = DynamicFaultStats()
        self._crashed: set[int] = set()
        #: The retained update log: one tuple of ``(key, is_insert)``
        #: ops per applied group (one epoch advance each).
        self._log: list[tuple[tuple[int, bool], ...]] = []
        #: Updates folded into the base snapshot by compaction.
        self._log_base = 0
        #: Pickled per-replica base state (None until first compaction).
        self._base_state: bytes | None = None
        #: Epoch at the moment the base snapshot was captured.
        self._base_epoch = 0
        self.compactions = 0
        #: Probes charged to recovery counters by restore verification.
        self.recovery_probes = 0
        self._replicas = [
            self._fresh_replica(r) for r in range(self.replicas)
        ]

    def _fresh_replica(self, r: int) -> DynamicLowContentionDictionary:
        """Build replica ``r`` on its re-derivable spawned rng stream."""
        rng = spawn_generators(self.seed, self.replicas)[r]
        d = DynamicLowContentionDictionary(
            self.universe_size,
            rng=rng,
            max_trials=self.max_trials,
            min_level_width=self.min_level_width,
            verify_rebuilds=self.verify_rebuilds,
            verify_seed=r,
            on_retire=lambda level, _r=r: self.epochs.retire(
                (_r, level), words=level.structure.table.num_cells
            ),
        )
        d._levels.replica = r
        return d

    # -- updates (lockstep) ------------------------------------------------------

    def apply(self, key: int, is_insert: bool) -> int:
        """Apply one update to every live replica; advance the epoch."""
        return self.apply_batch([(key, bool(is_insert))])

    def insert(self, key: int) -> int:
        """Insert ``key`` on all live replicas (one epoch)."""
        return self.apply(key, True)

    def delete(self, key: int) -> int:
        """Delete ``key`` on all live replicas (one epoch)."""
        return self.apply(key, False)

    def apply_batch(self, ops) -> int:
        """Apply a micro-batched update group in replica-lockstep order.

        Every live replica applies the whole group, in replica index
        order, before the epoch advances **once** — the group is one
        atomic version step for pinned readers.
        """
        ops = [(int(k), bool(ins)) for k, ins in ops]
        for k, _ in ops:
            if not 0 <= k < self.universe_size:
                raise ParameterError(f"key {k} outside universe")
        for r, d in enumerate(self._replicas):
            if r in self._crashed:
                continue
            for k, ins in ops:
                if ins:
                    d.insert(k)
                else:
                    d.delete(k)
        self._log.append(tuple(ops))
        return self.epochs.advance()

    @property
    def epoch(self) -> int:
        return self.epochs.epoch

    @property
    def update_count(self) -> int:
        """Updates applied since construction (compacted + retained)."""
        return self._log_base + self.retained_log_entries

    @property
    def retained_log_entries(self) -> int:
        """Updates still held in the replay log (the recovery replay bound)."""
        return sum(len(g) for g in self._log)

    # -- fault hooks (chaos schedules / healing) ---------------------------------

    def _require_armed(self) -> None:
        if not self.armed:
            raise HealError(
                f"{self.name} fault hooks are not armed; construct with "
                "armed=True to crash/corrupt replicas dynamically"
            )

    def _check_replica(self, replica: int) -> int:
        r = int(replica)
        if not 0 <= r < self.replicas:
            raise ParameterError(
                f"replica {r} out of range [0, {self.replicas})"
            )
        return r

    def crash_replica(self, replica: int) -> None:
        """Crash ``replica`` now: it loses its levels and stops applying."""
        self._require_armed()
        r = self._check_replica(replica)
        d = self._replicas[r]
        for i in range(len(d._levels.levels)):
            d._levels.levels[i] = None
        self._crashed.add(r)
        self.fault_stats.crashes += 1

    def rebuild_replica(self, replica: int) -> None:
        """Rebuild ``replica`` from the base snapshot plus the log suffix.

        Before the first compaction the base is empty and this is the
        original full-log replay; after compaction the replacement
        restores the pickled base state (exact rng stream position
        included) and replays only the retained suffix — bounded
        recovery work.  Either way the replacement re-derives the
        replica's original spawned rng stream, so its level state is
        byte-identical to a replica that never crashed.
        """
        self._require_armed()
        r = self._check_replica(replica)
        if self._base_state is not None:
            base = pickle.loads(self._base_state)
            d = self._restore_replica_state(r, base["replicas"][r])
        else:
            d = self._fresh_replica(r)
        for group in self._log:
            for k, ins in group:
                if ins:
                    d.insert(k)
                else:
                    d.delete(k)
        self._replicas[r] = d
        self._crashed.discard(r)
        self.fault_stats.rebuilds += 1

    def corrupt_cell(
        self, replica: int, level_index: int, flat: int, mask: int
    ) -> None:
        """XOR ``mask`` into one cell of one level table of ``replica``.

        Chaos-level silent corruption: physical, persistent, and not a
        construction write (``table.writes`` untouched) — the voted
        read path is what has to survive it.
        """
        self._require_armed()
        r = self._check_replica(replica)
        levels = self._replicas[r]._levels.levels
        li = int(level_index)
        if not (0 <= li < len(levels)) or levels[li] is None:
            raise ParameterError(
                f"replica {r} has no level {li} to corrupt"
            )
        table = levels[li].structure.table
        row, col = divmod(int(flat) % table.num_cells, table.s)
        table._cells[row, col] ^= np.uint64(mask)
        self.fault_stats.corruptions += 1

    def live_replicas(self) -> list[int]:
        """Replica indices that are not crashed."""
        return [r for r in range(self.replicas) if r not in self._crashed]

    # -- log compaction & snapshots (the durability substrate) -------------------

    def _config(self) -> dict:
        """Constructor arguments, as a plain dict (snapshot metadata)."""
        return {
            "universe_size": self.universe_size,
            "replicas": self.replicas,
            "seed": self.seed,
            "max_trials": self.max_trials,
            "min_level_width": self.min_level_width,
            "verify_rebuilds": self.verify_rebuilds,
            "armed": self.armed,
        }

    @staticmethod
    def _capture_replica_state(d: DynamicLowContentionDictionary) -> dict:
        """One replica's full resumable state as plain picklable values.

        The rng state is the crux: dictionary and level structure share
        one spawned Generator, so capturing ``bit_generator.state`` once
        (and restoring it once) resumes *both* exactly where they were —
        every future level construction draws the same hash choices a
        never-crashed replica would.
        """
        return {
            "rng_state": d.rng.bit_generator.state,
            "installs": d._levels._installs,
            "levels": list(d._levels.levels),
            "account": d.account,
        }

    def _capture_base(self) -> bytes:
        """Serialize every replica's state *now* (immune to later mutation)."""
        state = {
            "replicas": [
                self._capture_replica_state(d) for d in self._replicas
            ],
            "epoch": self.epochs.epoch,
        }
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)

    def _restore_replica_state(
        self, r: int, state: dict
    ) -> DynamicLowContentionDictionary:
        """Rebuild replica ``r`` from a captured state dict.

        Starts from :meth:`_fresh_replica` (which rewires the
        ``on_retire`` hook into this instance's epoch manager), then
        overwrites the shared rng stream position, the level list, the
        install counter (future verify-sweep seeds must continue the
        sequence), and the cost account.
        """
        d = self._fresh_replica(r)
        d.rng.bit_generator.state = state["rng_state"]
        d._levels.levels = list(state["levels"])
        d._levels._installs = int(state["installs"])
        d.account = state["account"]
        d._levels.account = d.account
        return d

    def compact_log(self) -> int:
        """Fold the retained log into a fresh base snapshot; clear the log.

        Returns the number of updates folded.  Refuses (returns 0)
        while any replica is crashed: a crashed replica's state cannot
        be captured, and compacting would discard the very log its
        rebuild needs.  After compaction, :meth:`rebuild_replica` and
        snapshot restore replay only updates applied since this call.
        """
        if self._crashed:
            return 0
        folded = self.retained_log_entries
        if folded == 0 and self._base_state is not None:
            return 0
        self._base_state = self._capture_base()
        self._base_epoch = self.epochs.epoch
        self._log_base += folded
        self._log = []
        self.compactions += 1
        return folded

    def snapshot_payload(self) -> dict:
        """The durable representation: base snapshot + retained suffix.

        Everything :meth:`from_snapshot` needs to rebuild this structure
        byte-identically: the constructor config, the pickled base state
        from the last compaction (``None`` before the first — the suffix
        is then the *full* log and restore degrades to full-log replay),
        the retained log suffix, and recovery-point metadata (epoch,
        applied-update count, live key set) for inspection tools.
        """
        live = (
            [int(k) for k in self.live_keys()]
            if self.live_replicas() else []
        )
        return {
            "config": self._config(),
            "base": self._base_state,
            "base_updates": self._log_base,
            "base_epoch": self._base_epoch,
            "suffix": [tuple(g) for g in self._log],
            "epoch": self.epochs.epoch,
            "update_count": self.update_count,
            "live_keys": live,
            "compactions": self.compactions,
        }

    @classmethod
    def from_snapshot(
        cls, payload: dict, armed: bool | None = None
    ) -> tuple["ReplicatedDynamicDictionary", dict]:
        """Rebuild a structure from :meth:`snapshot_payload`; report how.

        Restores the base state (exact rng stream positions included)
        and replays the retained suffix — bounded recovery work — or
        replays the full log when the snapshot predates any compaction.
        A replica crashed at snapshot time comes back healthy: replay
        applies every group to every replica, which is exactly the
        lockstep rebuild it was owed.  Returns ``(instance, report)``
        with ``report["source"]`` in ``{"checkpoint", "log"}`` and
        ``report["replayed"]`` counting replayed updates.
        """
        cfg = dict(payload["config"])
        if armed is not None:
            cfg["armed"] = bool(armed)
        inst = cls(**cfg)
        if payload.get("base") is not None:
            base = pickle.loads(payload["base"])
            inst._base_state = payload["base"]
            inst._log_base = int(payload["base_updates"])
            inst._base_epoch = int(payload["base_epoch"])
            inst.epochs.epoch = int(payload["base_epoch"])
            for r in range(inst.replicas):
                inst._replicas[r] = inst._restore_replica_state(
                    r, base["replicas"][r]
                )
            source = "checkpoint"
        else:
            source = "log"
        replayed = 0
        for group in payload.get("suffix", []):
            ops = [(int(k), bool(ins)) for k, ins in group]
            for d in inst._replicas:
                for k, ins in ops:
                    if ins:
                        d.insert(k)
                    else:
                        d.delete(k)
            inst._log.append(tuple(ops))
            inst.epochs.advance()
            replayed += len(ops)
        report = {
            "source": source,
            "replayed": replayed,
            "epoch": inst.epoch,
            "update_count": inst.update_count,
        }
        return inst, report

    def verify_state(self, seed: int = 0, sample: int = 64) -> int:
        """Canary-read live keys on every replica; returns probes charged.

        The paranoid post-restore check: a sample of the ground-truth
        live key set must answer ``True`` on every live replica.  All
        probes are rerouted to throwaway recovery counters via
        :func:`repro.heal.charged_to` and tallied in
        ``recovery_probes`` — the query-counter digest is byte-identical
        whether or not this verification ran (the same isolation
        discipline as rebuild verification).  Raises
        :class:`~repro.errors.VerificationError` on any wrong answer.
        """
        keys = self.live_keys()
        if keys.size == 0:
            return 0
        rng = np.random.default_rng((int(seed), int(keys.size)))
        if keys.size > int(sample):
            keys = np.sort(rng.choice(keys, size=int(sample), replace=False))
        probes = 0
        for r in self.live_replicas():
            d = self._replicas[r]
            levels = tuple(d._levels.levels)
            counters = []
            with ExitStack() as stack:
                for lv in d._levels.nonempty_levels:
                    c = ProbeCounter(lv.structure.table.num_cells)
                    stack.enter_context(
                        charged_to(lv.structure.table, c)
                    )
                    counters.append(c)
                answers = _query_batch_levels(levels, keys, rng)
            if not bool(np.all(answers)):
                raise VerificationError(
                    int(keys[~answers][0]), False, True
                )
            probes += sum(int(c.total_probes()) for c in counters)
        self.recovery_probes += probes
        return probes

    # -- voted reads -------------------------------------------------------------

    def query(self, x: int, rng=None) -> bool:
        """Majority vote across live replicas (all probes charged)."""
        rng = as_generator(rng)
        votes_true = votes_false = 0
        for r in self.live_replicas():
            try:
                answer = self._replicas[r].query(x, rng)
            except _REPLICA_FAILURES:
                self.fault_stats.abstentions += 1
                continue
            if answer:
                votes_true += 1
            else:
                votes_false += 1
        if votes_true == 0 and votes_false == 0:
            raise FaultExhaustedError(self.replicas)
        return votes_true > votes_false

    def query_batch(self, xs, rng=None) -> np.ndarray:
        """Vectorized majority vote: each live replica votes on the batch."""
        rng = as_generator(rng)
        xs = np.asarray(xs, dtype=np.int64)
        votes_true = np.zeros(xs.shape, dtype=np.int64)
        voters = 0
        for r in self.live_replicas():
            try:
                answers = self._replicas[r].query_batch(xs, rng)
            except _REPLICA_FAILURES:
                self.fault_stats.abstentions += 1
                continue
            votes_true += answers
            voters += 1
        if voters == 0:
            raise FaultExhaustedError(self.replicas)
        return votes_true * 2 > voters

    def query_batch_on(self, xs, replica: int, rng=None) -> np.ndarray:
        """Run the batch against one *chosen* replica (serve dispatch).

        Raises :class:`~repro.errors.ReplicaUnavailableError` when the
        chosen replica is crashed, so dispatchers can fail over.
        """
        r = self._check_replica(replica)
        if r in self._crashed:
            self.fault_stats.crash_hits += 1
            raise ReplicaUnavailableError(r)
        return self._replicas[r].query_batch(xs, rng)

    # -- ground truth ------------------------------------------------------------

    def _reference_replica(self) -> DynamicLowContentionDictionary:
        live = self.live_replicas()
        if not live:
            raise FaultExhaustedError(self.replicas)
        return self._replicas[live[0]]

    def contains(self, x: int) -> bool:
        """Ground truth (no probes; entry dicts are corruption-immune)."""
        return self._reference_replica().contains(x)

    def live_keys(self) -> np.ndarray:
        """The current key set, sorted (ground truth; no probes)."""
        return self._reference_replica().live_keys()

    # -- epoch-pinned reads ------------------------------------------------------

    def pin(self) -> EpochPin:
        """Pin the current epoch for linearizable multi-key reads.

        The snapshot captures each live replica's level list (levels are
        immutable once installed, so the tuples stay valid forever) and
        the pinned epoch's ground-truth key set.
        """
        snapshot = {
            "levels": {
                r: tuple(self._replicas[r]._levels.levels)
                for r in self.live_replicas()
            },
            "live_keys": self.live_keys(),
        }
        return self.epochs.pin(snapshot)

    def query_pinned(self, pin: EpochPin, xs, rng=None) -> np.ndarray:
        """Majority-voted batch read against the pinned epoch's state.

        Linearizable by construction: every replica walks the level
        list captured at pin time, so updates applied after the pin are
        invisible and the answers match the pinned ground truth
        (``np.isin(xs, pin.snapshot["live_keys"])``) exactly when a
        majority of the captured replicas is healthy.
        """
        rng = as_generator(rng)
        xs = np.asarray(xs, dtype=np.int64)
        votes_true = np.zeros(xs.shape, dtype=np.int64)
        voters = 0
        for r, levels in pin.snapshot["levels"].items():
            if r in self._crashed:
                self.fault_stats.crash_hits += 1
                continue
            try:
                answers = _query_batch_levels(levels, xs, rng)
            except _REPLICA_FAILURES:
                self.fault_stats.abstentions += 1
                continue
            votes_true += answers
            voters += 1
        if voters == 0:
            raise FaultExhaustedError(self.replicas)
        return votes_true * 2 > voters

    # -- accounting / introspection ----------------------------------------------

    def replica_probe_loads(self) -> np.ndarray:
        """Query probes charged so far to each replica, shape ``(R,)``."""
        loads = np.zeros(self.replicas, dtype=np.int64)
        for r, d in enumerate(self._replicas):
            loads[r] = sum(
                int(lv.structure.table.counter.total_probes())
                for lv in d._levels.nonempty_levels
            )
        return loads

    def query_counter_digest(self, replica: int = 0) -> str:
        """One replica's query-counter digest (rebuild probes excluded)."""
        return self._replicas[self._check_replica(replica)].query_counter_digest()

    def rebuild_probes(self, replica: int = 0) -> int:
        """Verification probes charged to one replica's rebuild counters."""
        return self._replicas[self._check_replica(replica)].rebuild_probes

    def account(self, replica: int = 0):
        """One replica's :class:`~repro.dynamic.accounting.UpdateCostAccount`."""
        return self._replicas[self._check_replica(replica)].account

    def set_shard(self, shard: int) -> None:
        """Label every replica's telemetry events with ``shard``."""
        for d in self._replicas:
            d._levels.shard = int(shard)

    @property
    def space_words(self) -> int:
        """Total live table words across replicas (excludes retirees)."""
        return sum(d.space_words for d in self._replicas)

    def stats(self) -> dict:
        """Flat dict for experiments: epochs, faults, space, rebuild work."""
        out = {
            "replicas": self.replicas,
            "live_replicas": len(self.live_replicas()),
            "updates": self.update_count,
            "log_retained": self.retained_log_entries,
            "log_compacted": self._log_base,
            "compactions": self.compactions,
            "recovery_probes": self.recovery_probes,
            "space_words": self.space_words,
            **{f"epoch_{k}": v for k, v in self.epochs.stats().items()},
            **dataclasses.asdict(self.fault_stats),
        }
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicatedDynamicDictionary(R={self.replicas}, "
            f"live={len(self.live_replicas())}, epoch={self.epoch}, "
            f"updates={self.update_count})"
        )
