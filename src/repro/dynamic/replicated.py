"""Replicated dynamic dictionary: lockstep updates, voted reads, epochs.

The static :class:`~repro.dictionaries.replicated.ReplicatedDictionary`
copies one built table R times; a *dynamic* structure cannot, because
each replica owns a living level hierarchy that rebuilds as it goes.
Replication here is **state-machine replication**: R independent
:class:`~repro.dynamic.dictionary.DynamicLowContentionDictionary`
replicas (each with its own spawned rng stream, so their hash choices
differ — corruption of one replica's tables is uncorrelated with the
others') apply the same update log in deterministic lockstep.  A
crashed replica stops applying updates and loses its levels; rebuild
replays the full log against the replica's re-derived rng stream,
reconstructing *byte-identical* state to a replica that never crashed.

Reads are majority votes in the style of the static ``"majority"``
mode: every live replica executes the honest query against its own
tables (all probes charged to its own per-level counters), detected
failures abstain, ties resolve to ``False``, and an all-abstain round
raises :class:`~repro.errors.FaultExhaustedError`.  Because replicas
disagree only when damaged, a strict majority of healthy replicas
guarantees correct answers under silent cell corruption.

Every applied update (or micro-batched group via :meth:`apply_batch`)
advances an :class:`~repro.dynamic.epoch.EpochManager` epoch.  Levels
unlinked by merges/flattens are retired into the manager and reclaimed
only once no pinned reader remains; :meth:`pin` captures a consistent
snapshot (per-replica level lists + the live key set) against which
:meth:`query_pinned` serves linearizable multi-key reads.

Rebuild verification probes (``verify_rebuilds=True``) are charged via
:func:`repro.heal.charged_to` to per-level rebuild counters, so each
replica's *query*-counter digest stays byte-identical to an
unverified replay of the same stream.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.dynamic.dictionary import DynamicLowContentionDictionary
from repro.dynamic.epoch import EpochManager, EpochPin
from repro.errors import (
    FaultExhaustedError,
    HealError,
    ParameterError,
    ReplicaUnavailableError,
    ReproError,
)
from repro.utils.rng import as_generator, spawn_generators

#: Exceptions treated as a *detected* per-replica failure (abstention)
#: by the voted read paths — same taxonomy as the static replicated
#: dictionary: corrupted words can drive the honest algorithm to an
#: out-of-range probe or an impossible decode, and a crash is explicit.
_REPLICA_FAILURES = (ReproError, OverflowError, IndexError, ValueError)


@dataclasses.dataclass
class DynamicFaultStats:
    """Counters for the fault paths of the replicated dynamic dictionary."""

    crash_hits: int = 0
    abstentions: int = 0
    crashes: int = 0
    rebuilds: int = 0
    corruptions: int = 0


def _query_batch_levels(levels, xs: np.ndarray, rng) -> np.ndarray:
    """Walk a (possibly snapshotted) level list newest-first, vectorized.

    The same short-circuit discipline as
    :meth:`DynamicLowContentionDictionary.query_batch`, but against an
    explicit level sequence — which is what lets an epoch-pinned read
    run against retired structures.
    """
    flat = np.asarray(xs, dtype=np.int64).ravel()
    answers = np.zeros(flat.shape, dtype=bool)
    undecided = np.ones(flat.shape, dtype=bool)
    for level in levels:
        if level is None:
            continue
        idx = np.nonzero(undecided)[0]
        if idx.size == 0:
            break
        ins_hit = level.structure.query_batch(2 * flat[idx] + 1, rng)
        answers[idx[ins_hit]] = True
        undecided[idx[ins_hit]] = False
        miss_idx = idx[~ins_hit]
        if miss_idx.size:
            del_hit = level.structure.query_batch(2 * flat[miss_idx], rng)
            undecided[miss_idx[del_hit]] = False
    return answers


class ReplicatedDynamicDictionary:
    """R lockstep dynamic replicas with voted reads and epoch versioning."""

    name = "replicated-dynamic"

    def __init__(
        self,
        universe_size: int,
        replicas: int,
        seed: int = 0,
        max_trials: int = 500,
        min_level_width: int = 0,
        verify_rebuilds: bool = False,
        armed: bool = False,
    ):
        if replicas < 1:
            raise ParameterError("replicas must be >= 1")
        self.universe_size = int(universe_size)
        self.replicas = int(replicas)
        self.seed = int(seed)
        self.max_trials = int(max_trials)
        self.min_level_width = int(min_level_width)
        self.verify_rebuilds = bool(verify_rebuilds)
        # Fault hooks are chaos-only: they must be armed explicitly,
        # mirroring FaultConfig.armed on the static stack.
        self.armed = bool(armed)
        self.epochs = EpochManager()
        self.fault_stats = DynamicFaultStats()
        self._crashed: set[int] = set()
        self._log: list[tuple[int, bool]] = []
        self._replicas = [
            self._fresh_replica(r) for r in range(self.replicas)
        ]

    def _fresh_replica(self, r: int) -> DynamicLowContentionDictionary:
        """Build replica ``r`` on its re-derivable spawned rng stream."""
        rng = spawn_generators(self.seed, self.replicas)[r]
        d = DynamicLowContentionDictionary(
            self.universe_size,
            rng=rng,
            max_trials=self.max_trials,
            min_level_width=self.min_level_width,
            verify_rebuilds=self.verify_rebuilds,
            verify_seed=r,
            on_retire=lambda level, _r=r: self.epochs.retire(
                (_r, level), words=level.structure.table.num_cells
            ),
        )
        d._levels.replica = r
        return d

    # -- updates (lockstep) ------------------------------------------------------

    def apply(self, key: int, is_insert: bool) -> int:
        """Apply one update to every live replica; advance the epoch."""
        return self.apply_batch([(key, bool(is_insert))])

    def insert(self, key: int) -> int:
        """Insert ``key`` on all live replicas (one epoch)."""
        return self.apply(key, True)

    def delete(self, key: int) -> int:
        """Delete ``key`` on all live replicas (one epoch)."""
        return self.apply(key, False)

    def apply_batch(self, ops) -> int:
        """Apply a micro-batched update group in replica-lockstep order.

        Every live replica applies the whole group, in replica index
        order, before the epoch advances **once** — the group is one
        atomic version step for pinned readers.
        """
        ops = [(int(k), bool(ins)) for k, ins in ops]
        for k, _ in ops:
            if not 0 <= k < self.universe_size:
                raise ParameterError(f"key {k} outside universe")
        for r, d in enumerate(self._replicas):
            if r in self._crashed:
                continue
            for k, ins in ops:
                if ins:
                    d.insert(k)
                else:
                    d.delete(k)
        self._log.extend(ops)
        return self.epochs.advance()

    @property
    def epoch(self) -> int:
        return self.epochs.epoch

    @property
    def update_count(self) -> int:
        """Updates applied since construction (the log length)."""
        return len(self._log)

    # -- fault hooks (chaos schedules / healing) ---------------------------------

    def _require_armed(self) -> None:
        if not self.armed:
            raise HealError(
                f"{self.name} fault hooks are not armed; construct with "
                "armed=True to crash/corrupt replicas dynamically"
            )

    def _check_replica(self, replica: int) -> int:
        r = int(replica)
        if not 0 <= r < self.replicas:
            raise ParameterError(
                f"replica {r} out of range [0, {self.replicas})"
            )
        return r

    def crash_replica(self, replica: int) -> None:
        """Crash ``replica`` now: it loses its levels and stops applying."""
        self._require_armed()
        r = self._check_replica(replica)
        d = self._replicas[r]
        for i in range(len(d._levels.levels)):
            d._levels.levels[i] = None
        self._crashed.add(r)
        self.fault_stats.crashes += 1

    def rebuild_replica(self, replica: int) -> None:
        """Replay the full update log into a fresh replica ``replica``.

        The replacement re-derives the replica's original spawned rng
        stream, so its level state is byte-identical to a replica that
        never crashed — deterministic state-machine recovery.
        """
        self._require_armed()
        r = self._check_replica(replica)
        d = self._fresh_replica(r)
        for k, ins in self._log:
            if ins:
                d.insert(k)
            else:
                d.delete(k)
        self._replicas[r] = d
        self._crashed.discard(r)
        self.fault_stats.rebuilds += 1

    def corrupt_cell(
        self, replica: int, level_index: int, flat: int, mask: int
    ) -> None:
        """XOR ``mask`` into one cell of one level table of ``replica``.

        Chaos-level silent corruption: physical, persistent, and not a
        construction write (``table.writes`` untouched) — the voted
        read path is what has to survive it.
        """
        self._require_armed()
        r = self._check_replica(replica)
        levels = self._replicas[r]._levels.levels
        li = int(level_index)
        if not (0 <= li < len(levels)) or levels[li] is None:
            raise ParameterError(
                f"replica {r} has no level {li} to corrupt"
            )
        table = levels[li].structure.table
        row, col = divmod(int(flat) % table.num_cells, table.s)
        table._cells[row, col] ^= np.uint64(mask)
        self.fault_stats.corruptions += 1

    def live_replicas(self) -> list[int]:
        """Replica indices that are not crashed."""
        return [r for r in range(self.replicas) if r not in self._crashed]

    # -- voted reads -------------------------------------------------------------

    def query(self, x: int, rng=None) -> bool:
        """Majority vote across live replicas (all probes charged)."""
        rng = as_generator(rng)
        votes_true = votes_false = 0
        for r in self.live_replicas():
            try:
                answer = self._replicas[r].query(x, rng)
            except _REPLICA_FAILURES:
                self.fault_stats.abstentions += 1
                continue
            if answer:
                votes_true += 1
            else:
                votes_false += 1
        if votes_true == 0 and votes_false == 0:
            raise FaultExhaustedError(self.replicas)
        return votes_true > votes_false

    def query_batch(self, xs, rng=None) -> np.ndarray:
        """Vectorized majority vote: each live replica votes on the batch."""
        rng = as_generator(rng)
        xs = np.asarray(xs, dtype=np.int64)
        votes_true = np.zeros(xs.shape, dtype=np.int64)
        voters = 0
        for r in self.live_replicas():
            try:
                answers = self._replicas[r].query_batch(xs, rng)
            except _REPLICA_FAILURES:
                self.fault_stats.abstentions += 1
                continue
            votes_true += answers
            voters += 1
        if voters == 0:
            raise FaultExhaustedError(self.replicas)
        return votes_true * 2 > voters

    def query_batch_on(self, xs, replica: int, rng=None) -> np.ndarray:
        """Run the batch against one *chosen* replica (serve dispatch).

        Raises :class:`~repro.errors.ReplicaUnavailableError` when the
        chosen replica is crashed, so dispatchers can fail over.
        """
        r = self._check_replica(replica)
        if r in self._crashed:
            self.fault_stats.crash_hits += 1
            raise ReplicaUnavailableError(r)
        return self._replicas[r].query_batch(xs, rng)

    # -- ground truth ------------------------------------------------------------

    def _reference_replica(self) -> DynamicLowContentionDictionary:
        live = self.live_replicas()
        if not live:
            raise FaultExhaustedError(self.replicas)
        return self._replicas[live[0]]

    def contains(self, x: int) -> bool:
        """Ground truth (no probes; entry dicts are corruption-immune)."""
        return self._reference_replica().contains(x)

    def live_keys(self) -> np.ndarray:
        """The current key set, sorted (ground truth; no probes)."""
        return self._reference_replica().live_keys()

    # -- epoch-pinned reads ------------------------------------------------------

    def pin(self) -> EpochPin:
        """Pin the current epoch for linearizable multi-key reads.

        The snapshot captures each live replica's level list (levels are
        immutable once installed, so the tuples stay valid forever) and
        the pinned epoch's ground-truth key set.
        """
        snapshot = {
            "levels": {
                r: tuple(self._replicas[r]._levels.levels)
                for r in self.live_replicas()
            },
            "live_keys": self.live_keys(),
        }
        return self.epochs.pin(snapshot)

    def query_pinned(self, pin: EpochPin, xs, rng=None) -> np.ndarray:
        """Majority-voted batch read against the pinned epoch's state.

        Linearizable by construction: every replica walks the level
        list captured at pin time, so updates applied after the pin are
        invisible and the answers match the pinned ground truth
        (``np.isin(xs, pin.snapshot["live_keys"])``) exactly when a
        majority of the captured replicas is healthy.
        """
        rng = as_generator(rng)
        xs = np.asarray(xs, dtype=np.int64)
        votes_true = np.zeros(xs.shape, dtype=np.int64)
        voters = 0
        for r, levels in pin.snapshot["levels"].items():
            if r in self._crashed:
                self.fault_stats.crash_hits += 1
                continue
            try:
                answers = _query_batch_levels(levels, xs, rng)
            except _REPLICA_FAILURES:
                self.fault_stats.abstentions += 1
                continue
            votes_true += answers
            voters += 1
        if voters == 0:
            raise FaultExhaustedError(self.replicas)
        return votes_true * 2 > voters

    # -- accounting / introspection ----------------------------------------------

    def replica_probe_loads(self) -> np.ndarray:
        """Query probes charged so far to each replica, shape ``(R,)``."""
        loads = np.zeros(self.replicas, dtype=np.int64)
        for r, d in enumerate(self._replicas):
            loads[r] = sum(
                int(lv.structure.table.counter.total_probes())
                for lv in d._levels.nonempty_levels
            )
        return loads

    def query_counter_digest(self, replica: int = 0) -> str:
        """One replica's query-counter digest (rebuild probes excluded)."""
        return self._replicas[self._check_replica(replica)].query_counter_digest()

    def rebuild_probes(self, replica: int = 0) -> int:
        """Verification probes charged to one replica's rebuild counters."""
        return self._replicas[self._check_replica(replica)].rebuild_probes

    def account(self, replica: int = 0):
        """One replica's :class:`~repro.dynamic.accounting.UpdateCostAccount`."""
        return self._replicas[self._check_replica(replica)].account

    def set_shard(self, shard: int) -> None:
        """Label every replica's telemetry events with ``shard``."""
        for d in self._replicas:
            d._levels.shard = int(shard)

    @property
    def space_words(self) -> int:
        """Total live table words across replicas (excludes retirees)."""
        return sum(d.space_words for d in self._replicas)

    def stats(self) -> dict:
        """Flat dict for experiments: epochs, faults, space, rebuild work."""
        out = {
            "replicas": self.replicas,
            "live_replicas": len(self.live_replicas()),
            "updates": self.update_count,
            "space_words": self.space_words,
            **{f"epoch_{k}": v for k, v in self.epochs.stats().items()},
            **dataclasses.asdict(self.fault_stats),
        }
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicatedDynamicDictionary(R={self.replicas}, "
            f"live={len(self.live_replicas())}, epoch={self.epoch}, "
            f"updates={self.update_count})"
        )
