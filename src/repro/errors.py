"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures without masking programming errors
(``TypeError`` etc. are still raised directly for misuse of the API).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """A scheme or experiment parameter violates its validity constraints.

    Raised, e.g., when :class:`repro.core.params.SchemeParameters` receives a
    ``delta`` outside the Lemma 9 interval ``(2/(d+2), 1 - 1/d)``.
    """


class ConstructionError(ReproError, RuntimeError):
    """A data-structure construction failed.

    Raised when rejection sampling of hash functions exceeds its trial
    budget (property P(S) of Section 2.2, the FKS condition, or cuckoo
    insertion) — with a sound configuration this indicates either an
    adversarial data set or a mis-sized trial budget.
    """


class TableError(ReproError, RuntimeError):
    """An invalid access to the cell-probe table (row/cell out of range)."""


class QueryError(ReproError, RuntimeError):
    """A query could not be answered (corrupt table or key outside universe)."""


class VerificationError(ReproError, AssertionError):
    """An executed query disagreed with ground-truth membership.

    Raised by the empirical measurement paths when the honest query
    algorithm returns a wrong answer — which would mean the executable
    algorithm has diverged from the construction it runs against.
    Carries the offending ``key``, the ``answer`` the query gave, and
    the ``expected`` ground truth.  Derives from :class:`AssertionError`
    for compatibility with callers that treated the old bare assertion
    as the failure signal.
    """

    def __init__(self, key: int, answer: bool, expected: bool):
        self.key = int(key)
        self.answer = bool(answer)
        self.expected = bool(expected)
        super().__init__(
            f"query({self.key}) = {self.answer}, ground truth {self.expected}"
        )


class DistributionError(ReproError, ValueError):
    """A query distribution is invalid (negative mass, wrong support, ...)."""


class GameError(ReproError, RuntimeError):
    """The lower-bound communication game was driven into an illegal state.

    Raised, e.g., when a probe specification violates the row-sum constraint
    (1) or the contention constraint (2) of Lemma 14.
    """


class FaultError(ReproError, RuntimeError):
    """Base class for injected-fault failures (see :mod:`repro.faults`)."""


class ReplicaUnavailableError(FaultError):
    """A query was routed to a crashed (unavailable) replica.

    Raised by :class:`~repro.dictionaries.replicated.ReplicatedDictionary`
    in the default ``"random"`` routing mode, which has no failover: the
    fragile baseline that E18 measures against.  Carries the replica index.
    """

    def __init__(self, replica: int):
        self.replica = int(replica)
        super().__init__(f"replica {self.replica} is crashed/unavailable")


class CorruptQueryError(FaultError):
    """A query execution was detectably derailed by injected faults.

    Raised by the ``"random"`` routing mode (which has no failover) when
    corrupted words drive the honest query algorithm into an illegal
    state — e.g. a hash coefficient outside its field or a probe address
    outside the table.  The original error is chained as ``__cause__``.
    """


class FaultExhaustedError(FaultError):
    """A fault-tolerant query path ran out of retries or healthy replicas.

    Raised by the ``"failover"`` mode when ``max_retries`` consecutive
    replica attempts all failed, and by the ``"majority"`` mode when no
    replica produced a vote.  Carries the number of ``attempts`` made and
    the total exponential-backoff cost in probe-equivalents.
    """

    def __init__(self, attempts: int, backoff_probes: int = 0):
        self.attempts = int(attempts)
        self.backoff_probes = int(backoff_probes)
        super().__init__(
            f"no healthy replica after {self.attempts} attempts "
            f"({self.backoff_probes} backoff probe-equivalents spent)"
        )


class ServeError(ReproError, RuntimeError):
    """Base class for failures of the :mod:`repro.serve` subsystem."""


class OverloadError(ServeError):
    """A request was shed by admission control (service at capacity).

    Raised by :class:`~repro.serve.admission.AdmissionController` when
    the bounded in-flight queue is full.  Carries the observed queue
    ``depth`` and the configured ``capacity`` so clients can implement
    informed backoff.
    """

    def __init__(self, depth: int, capacity: int):
        self.depth = int(depth)
        self.capacity = int(capacity)
        super().__init__(
            f"service overloaded: {self.depth} requests in flight "
            f"(capacity {self.capacity})"
        )


class FabricError(ServeError):
    """The multi-process serving fabric (:mod:`repro.parallel`) failed.

    Raised when a worker process cannot be booted, dies with no healthy
    survivor to fail over to, or a dispatch round makes no progress
    within its deadline.  Worker *crashes with survivors* are not
    errors — the dispatcher fails the affected groups over and keeps
    serving (counted in its stats) — so this type only surfaces when
    the fabric as a whole cannot make progress.
    """


class SegmentFormatError(FabricError):
    """A shared-memory segment failed layout/version verification.

    Raised when a worker (or the owner, re-attaching) finds a segment
    whose magic word, layout version, kind, geometry, or checksum does
    not match what the fabric protocol expects — serving from a
    misinterpreted segment would silently corrupt answers, so the
    attach refuses instead.
    """


class RingFullError(OverloadError):
    """An SPSC ring buffer has no room for the frame being enqueued.

    The ring-level backpressure signal of :mod:`repro.parallel.ring`:
    producers get a typed error instead of blocking (no deadlock by
    construction), and the dispatcher reacts by draining responses
    before retrying.  Subclasses :class:`OverloadError` — a full ring
    *is* an overload — carrying the ring's used/capacity word counts.
    """


class UpdateBacklogError(ServeError):
    """A write was shed because the update backlog is full.

    The write-path analogue of :class:`OverloadError`: the dynamic
    serving stack (:mod:`repro.serve.dynamic_service`) bounds the
    number of updates accepted but not yet applied to the replicas,
    and sheds further writes beyond it — an unbounded write backlog
    would let read-your-writes latency diverge exactly like an
    unbounded read queue.  Carries the observed ``pending`` update
    count and the configured ``capacity``.
    """

    def __init__(self, pending: int, capacity: int):
        self.pending = int(pending)
        self.capacity = int(capacity)
        super().__init__(
            f"update backlog full: {self.pending} updates pending "
            f"(capacity {self.capacity})"
        )


class DegradedModeError(ServeError):
    """A low-priority request was shed because the service is degraded.

    Distinct from :class:`OverloadError`: the service is *not* at full
    capacity, but healthy capacity has dropped (replicas quarantined or
    rebuilding) and admission control sheds low-priority traffic first
    to protect the requests that matter.  Carries the observed queue
    ``depth``, the reduced ``effective_capacity``, and the healthy
    capacity ``fraction`` in (0, 1].
    """

    def __init__(self, depth: int, effective_capacity: int, fraction: float):
        self.depth = int(depth)
        self.effective_capacity = int(effective_capacity)
        self.fraction = float(fraction)
        super().__init__(
            f"service degraded to {self.fraction:.0%} healthy capacity: "
            f"low-priority request shed at depth {self.depth} "
            f"(effective capacity {self.effective_capacity})"
        )


class HealError(ServeError):
    """The self-healing layer was misused or cannot make progress.

    Raised, e.g., when healing is enabled on a service whose dictionaries
    carry no fault-injection layer to crash/revive replicas through, or
    when a scrub/rebuild is asked to vote with fewer than the strict
    majority of trusted replicas it needs.
    """


class AutotuneError(ServeError):
    """The :mod:`repro.autotune` control plane was misused or failed.

    Base class for control-plane failures.  Raised directly when a
    controller is attached to a service it cannot drive (wrong service
    type for a capability), or when policy parameters are inconsistent
    (low threshold above high threshold, replica bounds inverted).
    """


class ReconfigError(AutotuneError):
    """A reconfiguration action could not be applied to the service.

    Raised by the executor when an action's preconditions fail in a way
    the controller should have ruled out — e.g. splitting a shard whose
    replicas are not all healthy, joining below ``min_replicas``, or
    switching a shard to the scheme it already runs.  Carries enough
    context in the message to replay the offending decision.
    """


class ActionUnsupportedError(AutotuneError):
    """An action kind is not supported on this service's deployment.

    Structural actions (split/join/scheme-switch) swap whole tables and
    routers, which is impossible when replica state lives in another
    process — the multicore fabric's workers hold shared-memory
    segments, and the dynamic service's replicas advance by lockstep
    log replay.  Those deployments accept admission tuning only; the
    executor raises this for anything structural instead of corrupting
    a live table.
    """


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint or cache location is unusable (not a directory, not
    writable, or otherwise broken in a way that cannot degrade to a
    recompute).

    Individual corrupt/truncated checkpoint *files* still degrade to a
    warning and a recompute; this error is for the directory itself so
    the CLI can exit with a one-line message instead of a traceback.
    """


class CheckpointCorruptError(CheckpointError):
    """One checkpoint *file* failed integrity verification.

    Raised (and, on the recovery path, caught and recorded) when a
    checkpoint frame fails its magic, CRC32, or SHA-256 check, or when
    a verified payload is structurally unusable.  The recovery fallback
    chain treats this as "quarantine the file and try the next
    generation", never as a crash; it only propagates when a caller
    inspects a single named file directly.  Carries the offending
    ``path`` and a one-phrase ``reason``.
    """

    def __init__(self, path, reason: str):
        self.path = str(path)
        self.reason = str(reason)
        super().__init__(f"checkpoint {self.path} is corrupt: {self.reason}")


class TelemetryError(ReproError, RuntimeError):
    """The :mod:`repro.telemetry` layer was misused or misconfigured.

    Raised for invalid monitor predictions (a Φ matrix that is not a
    probability matrix), malformed metric names, mismatched histogram
    geometries on merge, unknown trace export formats, and snapshot
    payloads whose version is newer than this library understands.
    Never raised on the observation path itself: monitors return typed
    alarm values instead of raising, so telemetry cannot alter the
    control flow of the system it watches.
    """


class ExperimentFailureError(ReproError, RuntimeError):
    """One or more experiments failed (crashed, errored, or timed out).

    Raised by the resilient runner after retries are exhausted.  Carries
    ``failures`` (experiment id -> one-line reason) and ``results`` (the
    experiments that *did* complete, in request order) so callers running
    with keep-going semantics can still report partial output.
    """

    def __init__(self, failures: dict, results: list = ()):  # type: ignore[assignment]
        self.failures = dict(failures)
        self.results = list(results)
        detail = "; ".join(f"{k}: {v}" for k, v in self.failures.items())
        super().__init__(
            f"{len(self.failures)} experiment(s) failed — {detail}"
        )
