"""The E1–E24 experiment suite (see DESIGN.md section 3).

The paper has no tables or figures; each experiment here reifies one of
its quantitative claims as a regenerable table.  Use::

    from repro.experiments import run_experiment, EXPERIMENTS
    result = run_experiment("E1", fast=True, seed=0)
    print(result.render())

Each runner returns an :class:`repro.io.results.ExperimentResult`; the
``fast`` flag shrinks size ladders for CI/benchmark use, and every
runner is deterministic given ``seed``.
"""

from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment

__all__ = ["EXPERIMENTS", "run_all", "run_experiment"]
