"""Construction cache: stop rebuilding identical dictionary instances.

Constructions are deterministic functions of ``(scheme, keys, N, seed,
scalar kwargs)`` — every builder derives its randomness from
``as_generator(seed)`` — so E1–E17 rebuilding the same instances over
and over is pure waste.  This module provides a two-level cache:

- **in-process**: a small LRU of live dictionary objects, on by default
  (a cached object is indistinguishable from a fresh build: tables are
  static and the probe counter is reset on every hit);
- **on-disk**: optional pickle directory for reuse across processes and
  runs, enabled via :func:`configure_cache`, the ``--cache-dir`` CLI
  flag, or the ``REPRO_CACHE_DIR`` environment variable.

Builds are only cached when the key is trustworthy: an integer seed and
scalar-only kwargs.  Anything else (Generator seeds, planted hash
objects, parameter objects) bypasses the cache and builds directly.

Disk entries are **checksum-validated**: each file carries a magic +
format-version header and the SHA-256 of its pickle payload.  A
truncated, corrupted, or version-mismatched file is *never* unpickled —
it degrades to a cache miss with a :class:`RuntimeWarning` (and is
rebuilt/rewritten), so a damaged cache directory can slow a run down
but can never poison its results.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
from collections import OrderedDict
from typing import Callable

import numpy as np

#: In-process LRU capacity (entries, not bytes).
MEMORY_CAPACITY = 16

#: On-disk entry header: magic (includes the format version) + SHA-256.
DISK_MAGIC = b"REPROCACHE:2\n"
_DIGEST_BYTES = hashlib.sha256().digest_size

_SCALAR_TYPES = (bool, int, float, str, type(None))


def _warn_corrupt(path: str, reason: str) -> None:
    warnings.warn(
        f"construction cache entry {path} is unusable ({reason}); "
        "treating as a miss and rebuilding",
        RuntimeWarning,
        stacklevel=3,
    )


class ConstructionCache:
    """Two-level (memory + optional disk) cache of built dictionaries."""

    def __init__(self, cache_dir=None, capacity: int = MEMORY_CAPACITY):
        self.cache_dir = None if cache_dir is None else os.fspath(cache_dir)
        self.capacity = int(capacity)
        self._memory: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- keying -----------------------------------------------------------------

    @staticmethod
    def cache_key(name: str, keys: np.ndarray, N: int, seed, kwargs) -> str | None:
        """Stable digest of a build request; None if uncacheable."""
        if not isinstance(seed, (int, np.integer)):
            return None
        if any(
            not isinstance(v, _SCALAR_TYPES) for v in kwargs.values()
        ):
            return None
        h = hashlib.sha256()
        h.update(
            repr(
                (name, int(N), int(seed), sorted(kwargs.items()))
            ).encode()
        )
        h.update(np.asarray(keys, dtype=np.int64).tobytes())
        return h.hexdigest()

    # -- lookup -----------------------------------------------------------------

    def get_or_build(
        self,
        name: str,
        keys: np.ndarray,
        N: int,
        seed,
        kwargs: dict,
        builder: Callable[[], object],
    ):
        """Return a cached build of ``builder()`` for this request, or run it.

        Uncacheable requests (see :meth:`cache_key`) always build.  On a
        hit the returned object's probe counter is reset, making it
        indistinguishable from a fresh construction.
        """
        key = self.cache_key(name, keys, N, seed, kwargs)
        if key is None:
            return builder()
        obj = self._memory.get(key)
        if obj is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            obj.table.counter.reset()
            return obj
        obj = self._disk_load(key)
        if obj is not None:
            self.hits += 1
            obj.table.counter.reset()
            self._memory_put(key, obj)
            return obj
        self.misses += 1
        obj = builder()
        self._memory_put(key, obj)
        self._disk_store(key, obj)
        return obj

    # -- internals ---------------------------------------------------------------

    def _memory_put(self, key: str, obj) -> None:
        self._memory[key] = obj
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _disk_load(self, key: str):
        if self.cache_dir is None:
            return None
        path = self._disk_path(key)
        try:
            with open(path, "rb") as f:
                blob = f.read()
        except OSError:
            return None
        header = len(DISK_MAGIC) + _DIGEST_BYTES
        if not blob.startswith(DISK_MAGIC):
            _warn_corrupt(path, "bad magic / old format version")
            return None
        if len(blob) < header:
            _warn_corrupt(path, "truncated header")
            return None
        digest = blob[len(DISK_MAGIC):header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest() != digest:
            _warn_corrupt(path, "checksum mismatch (truncated or corrupt)")
            return None
        try:
            return pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError) as exc:
            # A valid checksum with an unloadable payload means the
            # pickle was written by an incompatible library version.
            _warn_corrupt(path, f"unpicklable payload ({type(exc).__name__})")
            return None

    def _disk_store(self, key: str, obj) -> None:
        if self.cache_dir is None:
            return
        path = self._disk_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            with open(tmp, "wb") as f:
                f.write(DISK_MAGIC)
                f.write(hashlib.sha256(payload).digest())
                f.write(payload)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError):
            if os.path.exists(tmp):
                os.unlink(tmp)

    def clear(self) -> None:
        """Drop the in-memory level (disk entries are left in place)."""
        self._memory.clear()


#: Process-wide cache used by :func:`repro.experiments.common.build_scheme`.
_cache = ConstructionCache(cache_dir=os.environ.get("REPRO_CACHE_DIR"))


def configure_cache(cache_dir=None, capacity: int | None = None) -> ConstructionCache:
    """Reconfigure the process-wide cache; returns it.

    ``cache_dir=None`` keeps the cache memory-only; the in-memory level
    is cleared so stale settings never leak across configurations.
    """
    global _cache
    _cache = ConstructionCache(
        cache_dir=cache_dir,
        capacity=MEMORY_CAPACITY if capacity is None else capacity,
    )
    return _cache


def get_cache() -> ConstructionCache:
    """The process-wide construction cache."""
    return _cache
