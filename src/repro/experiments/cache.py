"""Construction cache: stop rebuilding identical dictionary instances.

Constructions are deterministic functions of ``(scheme, keys, N, seed,
scalar kwargs)`` — every builder derives its randomness from
``as_generator(seed)`` — so E1–E17 rebuilding the same instances over
and over is pure waste.  This module provides a two-level cache:

- **in-process**: a small LRU of live dictionary objects, on by default
  (a cached object is indistinguishable from a fresh build: tables are
  static and the probe counter is reset on every hit);
- **on-disk**: optional pickle directory for reuse across processes and
  runs, enabled via :func:`configure_cache`, the ``--cache-dir`` CLI
  flag, or the ``REPRO_CACHE_DIR`` environment variable.

Builds are only cached when the key is trustworthy: an integer seed and
scalar-only kwargs.  Anything else (Generator seeds, planted hash
objects, parameter objects) bypasses the cache and builds directly.

Disk entries are **checksum-validated**: each file is a
:func:`repro.io.integrity.frame` blob — magic + format version, CRC32,
and the SHA-256 of its pickle payload (the same framing the durable
checkpoint store uses).  A truncated, corrupted, or version-mismatched
file is *never* unpickled — it degrades to a cache miss with a
:class:`RuntimeWarning` (and is rebuilt/rewritten), so a damaged cache
directory can slow a run down but can never poison its results.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
from collections import OrderedDict
from typing import Callable

import numpy as np

from repro.io.integrity import atomic_write_bytes, check_frame, frame

#: In-process LRU capacity (entries, not bytes).
MEMORY_CAPACITY = 16

#: Disk frame magic; the trailing number is the on-disk format version
#: (bumped to 3 when the frame gained its CRC32 word).
DISK_MAGIC = b"REPROCACHE:3\n"

_SCALAR_TYPES = (bool, int, float, str, type(None))


def _warn_corrupt(path: str, reason: str) -> None:
    warnings.warn(
        f"construction cache entry {path} is unusable ({reason}); "
        "treating as a miss and rebuilding",
        RuntimeWarning,
        stacklevel=3,
    )


class ConstructionCache:
    """Two-level (memory + optional disk) cache of built dictionaries."""

    def __init__(self, cache_dir=None, capacity: int = MEMORY_CAPACITY):
        self.cache_dir = None if cache_dir is None else os.fspath(cache_dir)
        self.capacity = int(capacity)
        self._memory: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- keying -----------------------------------------------------------------

    @staticmethod
    def cache_key(name: str, keys: np.ndarray, N: int, seed, kwargs) -> str | None:
        """Stable digest of a build request; None if uncacheable."""
        if not isinstance(seed, (int, np.integer)):
            return None
        if any(
            not isinstance(v, _SCALAR_TYPES) for v in kwargs.values()
        ):
            return None
        h = hashlib.sha256()
        h.update(
            repr(
                (name, int(N), int(seed), sorted(kwargs.items()))
            ).encode()
        )
        h.update(np.asarray(keys, dtype=np.int64).tobytes())
        return h.hexdigest()

    # -- lookup -----------------------------------------------------------------

    def get_or_build(
        self,
        name: str,
        keys: np.ndarray,
        N: int,
        seed,
        kwargs: dict,
        builder: Callable[[], object],
    ):
        """Return a cached build of ``builder()`` for this request, or run it.

        Uncacheable requests (see :meth:`cache_key`) always build.  On a
        hit the returned object's probe counter is reset, making it
        indistinguishable from a fresh construction.
        """
        key = self.cache_key(name, keys, N, seed, kwargs)
        if key is None:
            return builder()
        obj = self._memory.get(key)
        if obj is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            obj.table.counter.reset()
            return obj
        obj = self._disk_load(key)
        if obj is not None:
            self.hits += 1
            obj.table.counter.reset()
            self._memory_put(key, obj)
            return obj
        self.misses += 1
        obj = builder()
        self._memory_put(key, obj)
        self._disk_store(key, obj)
        return obj

    # -- internals ---------------------------------------------------------------

    def _memory_put(self, key: str, obj) -> None:
        self._memory[key] = obj
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _disk_load(self, key: str):
        if self.cache_dir is None:
            return None
        path = self._disk_path(key)
        try:
            with open(path, "rb") as f:
                blob = f.read()
        except OSError:
            return None
        payload, reason = check_frame(blob, DISK_MAGIC)
        if payload is None:
            _warn_corrupt(path, reason)
            return None
        try:
            return pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError) as exc:
            # A valid checksum with an unloadable payload means the
            # pickle was written by an incompatible library version.
            _warn_corrupt(path, f"unpicklable payload ({type(exc).__name__})")
            return None

    def _disk_store(self, key: str, obj) -> None:
        if self.cache_dir is None:
            return
        path = self._disk_path(key)
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            # A cache entry is disposable, so skip the fsyncs: a torn
            # write after a power cut is caught by the frame check and
            # degrades to a miss.
            atomic_write_bytes(path, frame(payload, DISK_MAGIC), fsync=False)
        except (OSError, pickle.PicklingError):
            pass

    def clear(self) -> None:
        """Drop the in-memory level (disk entries are left in place)."""
        self._memory.clear()


#: Process-wide cache used by :func:`repro.experiments.common.build_scheme`.
_cache = ConstructionCache(cache_dir=os.environ.get("REPRO_CACHE_DIR"))


def configure_cache(cache_dir=None, capacity: int | None = None) -> ConstructionCache:
    """Reconfigure the process-wide cache; returns it.

    ``cache_dir=None`` keeps the cache memory-only; the in-memory level
    is cleared so stale settings never leak across configurations.
    """
    global _cache
    _cache = ConstructionCache(
        cache_dir=cache_dir,
        capacity=MEMORY_CAPACITY if capacity is None else capacity,
    )
    return _cache


def get_cache() -> ConstructionCache:
    """The process-wide construction cache."""
    return _cache
