"""Shared fixtures for the experiment runners.

Instances follow the paper's regime: universe size N = n**2 (Section 2
assumes N >= n**2) with a uniformly random key set S.  ``SCHEMES`` maps
short names to constructors with the library defaults, so every
experiment sweeps the same zoo.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core import LowContentionDictionary
from repro.dictionaries import (
    CuckooDictionary,
    DMDictionary,
    FKSDictionary,
    LinearProbingDictionary,
    SortedArrayDictionary,
)
from repro.distributions import UniformPositiveNegative
from repro.experiments.cache import get_cache
from repro.utils.rng import as_generator, sample_distinct

SCHEMES: dict[str, Callable] = {
    "low-contention": LowContentionDictionary,
    "fks": FKSDictionary,
    "dm": DMDictionary,
    "cuckoo": CuckooDictionary,
    "binary-search": SortedArrayDictionary,
    "linear-probing": LinearProbingDictionary,
}

#: Constant-probe schemes the paper compares directly.
CORE_SCHEMES = ("low-contention", "fks", "dm", "cuckoo")


def make_instance(
    n: int, seed, universe_size: int | None = None
) -> tuple[np.ndarray, int]:
    """A random n-key instance over U = [N], default N = n**2."""
    rng = as_generator(seed)
    N = n * n if universe_size is None else int(universe_size)
    keys = np.sort(sample_distinct(rng, N, n))
    return keys, N


def build_scheme(name: str, keys: np.ndarray, N: int, seed, **kwargs):
    """Construct scheme ``name`` with its own derived RNG stream.

    Builds are memoized through the process-wide
    :class:`~repro.experiments.cache.ConstructionCache` (constructions
    are deterministic given an integer ``seed``; non-scalar kwargs or
    Generator seeds bypass the cache).
    """
    cls = SCHEMES[name]
    return get_cache().get_or_build(
        name,
        keys,
        N,
        seed,
        kwargs,
        lambda: cls(keys, N, rng=as_generator(seed), **kwargs),
    )


def uniform_distribution(
    keys: np.ndarray, N: int, positive_mass: float = 0.5
) -> UniformPositiveNegative:
    """The paper's uniform-within-class query distribution."""
    return UniformPositiveNegative(N, keys, positive_mass)


def size_ladder(fast: bool, full: list[int], quick: list[int]) -> list[int]:
    """Pick the n ladder for a runner."""
    return quick if fast else full
