"""E1 — Theorem 3: the scheme's contention is O(1/n) ~ O(1/s).

For each n we build the low-contention dictionary and compute the
*exact* contention matrix under three uniform-within-class
distributions (pure positive, pure negative, balanced).  The paper
predicts ``max_{t,j} Phi_t(j) = O(1/n)``; since s = Theta(n), the
normalized quantity ``s * max Phi_t`` should stay bounded by a small
constant as n grows — that is the table's rightmost column.
"""

from __future__ import annotations

from repro.contention import exact_contention
from repro.core.analysis import predicted_step_bounds
from repro.experiments.common import (
    build_scheme,
    make_instance,
    size_ladder,
    uniform_distribution,
)
from repro.io.results import ExperimentResult

CLAIM = (
    "Theorem 3: an (O(n), b, O(1), O(1/n))-balanced scheme exists for "
    "uniform positive/negative membership queries; max step contention "
    "times s stays O(1)."
)


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    sizes = size_ladder(fast, [128, 256, 512, 1024, 2048], [128, 256])
    rows = []
    worst_norm = 0.0
    for n in sizes:
        keys, N = make_instance(n, seed)
        d = build_scheme("low-contention", keys, N, seed + 1)
        for label, p in (("positive", 1.0), ("negative", 0.0), ("mixed", 0.5)):
            predicted = predicted_step_bounds(d.construction, N, p)
            dist = uniform_distribution(keys, N, p)
            matrix = exact_contention(d, dist)
            phi = matrix.max_step_contention()
            worst_norm = max(worst_norm, phi * d.params.s)
            rows.append(
                {
                    "n": n,
                    "s": d.params.s,
                    "queries": label,
                    "max_step_phi": phi,
                    "n*phi": round(phi * n, 3),
                    "s*phi (bounded?)": round(phi * d.params.s, 3),
                    "predicted_bound*s": round(predicted.overall * d.params.s, 3),
                }
            )
    if not fast:
        # Larger n via the Rao-Blackwellized estimator (exact
        # enumeration of all N = n**2 queries would be O(n**2); the
        # estimator samples queries but integrates probe randomness
        # analytically, so only the query draw is noisy).  Taking the
        # max over ~10^4 noisy cells inflates the estimate (max-of-
        # noise selection bias), so the sample budget is split into two
        # independent halves: each half *selects* its hottest cell and
        # the other half *evaluates* it — an estimate of Phi at a real
        # cell with no selection on its own noise.  The gap between the
        # plain max and the cross-fitted value is the bias estimate
        # reported alongside.
        import numpy as np

        from repro.contention import sampled_contention
        from repro.utils.rng import as_generator

        for n in (4096, 8192, 16384):
            keys, N = make_instance(n, seed)
            d = build_scheme("low-contention", keys, N, seed + 1)
            dist = uniform_distribution(keys, N, 0.5)
            half_a = sampled_contention(
                d, dist, num_samples=200_000, rng=as_generator(seed + 5)
            ).phi
            half_b = sampled_contention(
                d, dist, num_samples=200_000, rng=as_generator(seed + 6)
            ).phi
            steps = max(half_a.shape[0], half_b.shape[0])
            a = np.zeros((steps, half_a.shape[1]))
            b = np.zeros((steps, half_b.shape[1]))
            a[: half_a.shape[0]] = half_a
            b[: half_b.shape[0]] = half_b
            phi = float(((a + b) / 2.0).max())
            hot_a = np.unravel_index(np.argmax(a), a.shape)
            hot_b = np.unravel_index(np.argmax(b), b.shape)
            holdout = float((b[hot_a] + a[hot_b]) / 2.0)
            worst_norm = max(worst_norm, phi * d.params.s)
            rows.append(
                {
                    "n": n,
                    "s": d.params.s,
                    "queries": "mixed (RB-sampled)",
                    "max_step_phi": phi,
                    "n*phi": round(phi * n, 3),
                    "s*phi (bounded?)": round(phi * d.params.s, 3),
                    "s*phi (holdout)": round(holdout * d.params.s, 3),
                    "max_bias_est": round((phi - holdout) * d.params.s, 3),
                }
            )
    return ExperimentResult(
        experiment_id="E1",
        title="Low-contention dictionary: contention optimality",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"s * max-step-contention stays <= {worst_norm:.2f} across the "
            "sweep (a constant, as Theorem 3 predicts); the closed-form "
            "per-step bounds of core.analysis dominate every measurement."
        ),
        notes=(
            "RB-sampled rows (large n) estimate a maximum over ~10^4 "
            "cells from 4*10^5 samples, so their max_step_phi carries an "
            "upward max-of-noise selection bias relative to the exact "
            "rows; the 's*phi (holdout)' column cross-fits the estimate "
            "(each half-sample evaluates the other half's hottest cell) "
            "to remove it, and 'max_bias_est' is the measured inflation "
            "(plain minus holdout, in s*phi units)."
        ),
    )
