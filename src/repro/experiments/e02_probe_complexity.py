"""E2 — Theorem 3: O(1) probes — one probe per table row.

The query makes exactly one probe per row it visits: 2d + rho + 4 for a
non-empty bucket, two fewer for an empty one.  We verify (a) the
worst-case bound is a constant independent of n (rho = O(1) because the
histogram bits are Theta(log n) = Theta(b)), and (b) the *expected*
probe count from the exact contention matrix (sum of step masses)
matches executed queries.
"""

from __future__ import annotations

import numpy as np

from repro.cellprobe import CellProbeMachine
from repro.contention import exact_contention
from repro.experiments.common import (
    build_scheme,
    make_instance,
    size_ladder,
    uniform_distribution,
)
from repro.io.results import ExperimentResult
from repro.utils.rng import as_generator

CLAIM = (
    "Theorem 3 / Section 2.3: 'The query algorithm makes at most one "
    "probe to each row of T, thus the cell-probe complexity is O(1).'"
)


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    sizes = size_ladder(fast, [128, 256, 512, 1024, 2048, 4096], [128, 512])
    rows = []
    for n in sizes:
        keys, N = make_instance(n, seed)
        d = build_scheme("low-contention", keys, N, seed + 1)
        dist = uniform_distribution(keys, N, 0.5)
        matrix = exact_contention(d, dist)
        # Executed probes on a query sample, plan-validated.
        rng = as_generator(seed + 2)
        machine = CellProbeMachine(d, check_plan=True)
        sample = dist.sample(rng, 50 if fast else 200)
        executed = [machine.run_query(int(x), rng).num_probes for x in sample]
        rows.append(
            {
                "n": n,
                "rows=2d+rho+4": d.params.num_rows,
                "rho": d.params.rho,
                "max_probes": d.max_probes,
                "E[probes] (exact)": round(matrix.expected_probes(), 3),
                "E[probes] (executed)": round(float(np.mean(executed)), 3),
                "max executed": int(np.max(executed)),
            }
        )
    bound = max(r["max_probes"] for r in rows)
    return ExperimentResult(
        experiment_id="E2",
        title="Low-contention dictionary: constant probe complexity",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"Worst-case probes stay <= {bound} across the whole sweep "
            "(rho saturates at a small constant); executed queries match "
            "the exact expectation and never exceed one probe per row."
        ),
    )
