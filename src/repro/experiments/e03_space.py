"""E3 — Theorem 3: linear space.

The table is (2d + rho + 4) rows of s = beta*n (rounded to a multiple
of m) cells: O(n) words total.  The table reports words-per-key across
the sweep — it should approach the constant rows * beta — alongside the
space of the baselines for context (binary search is the 1-word/key
floor; FKS pays the sum-of-squares data region).
"""

from __future__ import annotations

from repro.experiments.common import (
    CORE_SCHEMES,
    build_scheme,
    make_instance,
    size_ladder,
)
from repro.io.results import ExperimentResult

CLAIM = (
    "Theorem 3: the scheme uses linear space — (2d + rho + 2) rows of "
    "s = O(n) words in the paper's accounting (2d + rho + 4 in ours; "
    "see EXPERIMENTS.md on the paper's row-count off-by-ones)."
)


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    sizes = size_ladder(fast, [128, 256, 512, 1024, 2048, 4096], [128, 512])
    rows = []
    for n in sizes:
        keys, N = make_instance(n, seed)
        for name in ("low-contention", "fks", "cuckoo", "binary-search"):
            d = build_scheme(name, keys, N, seed + 1)
            entry = {
                "n": n,
                "scheme": name,
                "space_words": d.space_words,
                "words_per_key": round(d.space_words / n, 2),
            }
            if name == "low-contention":
                entry["rows*beta"] = round(
                    d.params.num_rows * d.params.s / n, 2
                )
            rows.append(entry)
    lcd = [r for r in rows if r["scheme"] == "low-contention"]
    return ExperimentResult(
        experiment_id="E3",
        title="Space usage: words per key",
        claim=CLAIM,
        rows=rows,
        finding=(
            "Low-contention words/key stays flat at "
            f"{min(r['words_per_key'] for r in lcd)}-"
            f"{max(r['words_per_key'] for r in lcd)} across the sweep — "
            "linear space with a moderate constant (rows * beta), "
            "1-2 orders above binary search's 1 word/key floor but "
            "within a small factor of FKS."
        ),
    )
