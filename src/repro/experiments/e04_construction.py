"""E4 — Section 2.2: expected O(1) trials, O(n) construction time.

"By repeatedly generating (g, h', h), we satisfy P(S) within expected
O(1) trials ... thus a good hash function can be found within expected
O(n) time."  We measure the mean rejection-sampling trial count over
repeated builds (should hover near a small constant, <= ~2 by the
>= 1/2 - o(1) acceptance bound) and the construction *work* — table
cells written during the build, a deterministic stand-in for build time
(same seed, same count, regardless of machine load or parallelism) —
fitted against a linear law.  Wall-clock construction timings live in
``benchmarks/``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.fitting import fit_growth_law
from repro.experiments.common import build_scheme, make_instance, size_ladder
from repro.io.results import ExperimentResult

CLAIM = (
    "Section 2.2: property P(S) holds with probability >= 1/2 - o(1) per "
    "draw, so expected O(1) trials and expected O(n) construction time."
)


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    sizes = size_ladder(fast, [128, 256, 512, 1024, 2048, 4096], [128, 512])
    repeats = 3 if fast else 10
    rows = []
    ns, work = [], []
    for n in sizes:
        keys, N = make_instance(n, seed)
        trials = []
        writes = []
        for rep in range(repeats):
            d = build_scheme("low-contention", keys, N, seed + 100 + rep)
            trials.append(d.construction_trials)
            writes.append(d.table.writes)
        ns.append(n)
        work.append(float(np.mean(writes)))
        rows.append(
            {
                "n": n,
                "builds": repeats,
                "mean_trials": round(float(np.mean(trials)), 2),
                "max_trials": int(np.max(trials)),
                "mean_cells_written": int(np.mean(writes)),
            }
        )
    fit = fit_growth_law(np.array(ns), np.array(work), "n")
    return ExperimentResult(
        experiment_id="E4",
        title="Construction cost: P(S) trials and build time",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"Mean trials stays <= {max(r['mean_trials'] for r in rows)} "
            "(the O(1) expectation); construction work (cells written) "
            "fits a linear law with mean relative error "
            f"{fit.mean_relative_error:.2f}."
        ),
    )
