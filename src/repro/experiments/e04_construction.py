"""E4 — Section 2.2: expected O(1) trials, O(n) construction time.

"By repeatedly generating (g, h', h), we satisfy P(S) within expected
O(1) trials ... thus a good hash function can be found within expected
O(n) time."  We measure the mean rejection-sampling trial count over
repeated builds (should hover near a small constant, <= ~2 by the
>= 1/2 - o(1) acceptance bound) and the wall-clock build time, fitted
against a linear law.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.fitting import fit_growth_law
from repro.experiments.common import build_scheme, make_instance, size_ladder
from repro.io.results import ExperimentResult

CLAIM = (
    "Section 2.2: property P(S) holds with probability >= 1/2 - o(1) per "
    "draw, so expected O(1) trials and expected O(n) construction time."
)


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    sizes = size_ladder(fast, [128, 256, 512, 1024, 2048, 4096], [128, 512])
    repeats = 3 if fast else 10
    rows = []
    ns, times = [], []
    for n in sizes:
        keys, N = make_instance(n, seed)
        trials = []
        elapsed = []
        for rep in range(repeats):
            t0 = time.perf_counter()
            d = build_scheme("low-contention", keys, N, seed + 100 + rep)
            elapsed.append(time.perf_counter() - t0)
            trials.append(d.construction_trials)
        ns.append(n)
        times.append(float(np.mean(elapsed)))
        rows.append(
            {
                "n": n,
                "builds": repeats,
                "mean_trials": round(float(np.mean(trials)), 2),
                "max_trials": int(np.max(trials)),
                "mean_build_s": round(float(np.mean(elapsed)), 4),
            }
        )
    fit = fit_growth_law(np.array(ns), np.array(times), "n")
    return ExperimentResult(
        experiment_id="E4",
        title="Construction cost: P(S) trials and build time",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"Mean trials stays <= {max(r['mean_trials'] for r in rows)} "
            "(the O(1) expectation); build time fits a linear law with "
            f"mean relative error {fit.mean_relative_error:.2f}."
        ),
    )
