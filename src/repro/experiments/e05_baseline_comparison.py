"""E5 — Section 1.3: the baseline comparison table.

The paper: with redundantly stored hash functions, FKS achieves maximum
contention Theta(sqrt(n)) x optimal, DM and cuckoo hashing
Theta(ln n / ln ln n) x optimal, while the new scheme is O(1) x optimal
(and binary search is Theta(n) x optimal — the middle cell).

All baselines here run with full parameter-row replication (the §1.3
"storing the hash function redundantly" setting) so the measured blowup
comes from the *structural* hot spots: bucket-header cells (FKS/DM),
table-cell multiplicity (cuckoo), the root probe (binary search).  We
report the ratio max_step_phi / (1/s) per scheme per n and fit each
scheme's series against the paper's growth laws.

Calibration note: the paper's Theta(sqrt n) for FKS is the *worst-case*
guarantee of a 2-universal family; random polynomial instances on
random key sets typically show the fully-random log n / log log n
profile instead, so the fitted law distinguishes "grows like a log
power" from "stays constant" rather than certifying the exact exponent
— EXPERIMENTS.md discusses this.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.fitting import best_growth_law
from repro.contention import exact_contention
from repro.experiments.common import (
    build_scheme,
    make_instance,
    size_ladder,
    uniform_distribution,
)
from repro.io.results import ExperimentResult

CLAIM = (
    "Section 1.3: replicated-hash FKS is Theta(sqrt n) x optimal, DM and "
    "cuckoo Theta(ln n / ln ln n) x optimal; the new scheme (Theorem 3) "
    "is O(1) x optimal; binary search's middle cell is Theta(n) x optimal."
)

_SCHEMES = ("low-contention", "fks", "dm", "cuckoo", "binary-search")
_CANDIDATE_LAWS = ["const", "loglog(n)", "log(n)/loglog(n)", "log(n)", "sqrt(n)", "n"]


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    sizes = size_ladder(fast, [128, 256, 512, 1024, 2048], [128, 256, 512])
    rows = []
    series: dict[str, list[float]] = {name: [] for name in _SCHEMES}
    for n in sizes:
        keys, N = make_instance(n, seed)
        dist = uniform_distribution(keys, N, 0.5)
        for name in _SCHEMES:
            d = build_scheme(name, keys, N, seed + 1)
            matrix = exact_contention(d, dist)
            phi = matrix.max_step_contention()
            ratio = phi * d.table.s
            series[name].append(ratio)
            rows.append(
                {
                    "n": n,
                    "scheme": name,
                    "max_step_phi": phi,
                    "ratio_vs_optimal": round(ratio, 2),
                    "E[probes]": round(matrix.expected_probes(), 2),
                }
            )
    fits = []
    for name in _SCHEMES:
        best, _ = best_growth_law(
            np.array(sizes, dtype=float), np.array(series[name]), _CANDIDATE_LAWS
        )
        fits.append(f"{name}: best fit {best.law} (err {best.mean_relative_error:.2f})")
    return ExperimentResult(
        experiment_id="E5",
        title="Contention ratio vs optimal across schemes",
        claim=CLAIM,
        rows=rows,
        finding="; ".join(fits),
        notes=(
            "Baselines use full parameter replication; their residual "
            "blowup is structural (headers / cell multiplicity / root)."
        ),
    )
