"""E6 — Section 1.3: "for arbitrary query distributions, the
contentions can be arbitrarily bad."

Against each built scheme we evaluate (a) the scheme-specific worst
point mass (found by scanning probe plans), (b) a Zipf(1) workload over
the keys, and (c) the balanced uniform-within-class reference.  Every
scheme — including the low-contention dictionary — degrades to
contention Theta(1) under a point mass (its final data probe is a fixed
cell), which is exactly why Theorem 3's guarantee is conditioned on
uniform-within-class queries, and why Section 3 proves a lower bound
for the general case instead of an upper bound.
"""

from __future__ import annotations

from repro.contention import exact_contention, worst_point_mass, worst_support_k
from repro.distributions import ZipfDistribution
from repro.experiments.common import (
    build_scheme,
    make_instance,
    size_ladder,
    uniform_distribution,
)
from repro.io.results import ExperimentResult

CLAIM = (
    "Section 1.3: under arbitrary query distributions the contention of "
    "FKS/DM/cuckoo 'can be arbitrarily bad'; Theorem 3's O(1/n) guarantee "
    "holds only for uniform-within-class queries."
)

_SCHEMES = ("low-contention", "fks", "cuckoo", "binary-search")


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    sizes = size_ladder(fast, [256, 1024], [256])
    rows = []
    for n in sizes:
        keys, N = make_instance(n, seed)
        uniform = uniform_distribution(keys, N, 0.5)
        zipf = ZipfDistribution(N, keys, exponent=1.0, shuffle_ranks=seed + 3)
        for name in _SCHEMES:
            d = build_scheme(name, keys, N, seed + 1)
            x, peak, point = worst_point_mass(d)
            measured_point = exact_contention(d, point).max_step_contention()
            phi_zipf = exact_contention(d, zipf).max_step_contention()
            phi_unif = exact_contention(d, uniform).max_step_contention()
            rows.append(
                {
                    "n": n,
                    "scheme": name,
                    "phi uniform": phi_unif,
                    "phi zipf(1)": phi_zipf,
                    "phi worst point mass": measured_point,
                    "worst query": x,
                    "point/uniform blowup": round(measured_point / phi_unif, 1),
                }
            )
    # Graceful degradation: force the adversary to spread over k queries.
    n = sizes[0]
    keys, N = make_instance(n, seed)
    d = build_scheme("low-contention", keys, N, seed + 1)
    for k in (1, 4, 16, 64):
        dist, predicted = worst_support_k(d, k)
        measured = exact_contention(d, dist).max_step_contention()
        rows.append(
            {
                "n": n,
                "scheme": "low-contention",
                "phi uniform": f"adversary support k={k}",
                "phi worst point mass": measured,
                "point/uniform blowup": round(measured * k, 2),
            }
        )
    return ExperimentResult(
        experiment_id="E6",
        title="Arbitrary query distributions break every scheme",
        claim=CLAIM,
        rows=rows,
        finding=(
            "Every scheme reaches contention 1.0 under its worst point "
            "mass (blowups of 10^2-10^3 over the uniform case); Zipf skew "
            "sits in between; forcing the adversary to spread over k "
            "queries degrades its contention like ~1/k (the k-support "
            "rows).  No scheme is distribution-robust — the regime "
            "Theorem 13 addresses with a lower bound."
        ),
    )
