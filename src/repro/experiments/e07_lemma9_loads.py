"""E7 — Lemma 9: the three load conditions behind property P(S).

Over many independent draws of (f, g, z) we estimate the probability of

1. every g-bucket load <= c n / r            (claimed 1 - o(1));
2. every group load   <= ceil(c n / m)       (claimed 1 - o(1));
3. sum of squared bucket loads <= s = beta n (claimed >= 1/2; the
   sharper Markov form gives >= 1 - 1/(beta (beta-1))).

The joint rate lower-bounds the construction's acceptance probability
(E4's trial counts are its reciprocal).  For context we also report the
tabulation-hashing rates — a "nearly fully random" family — to show the
DM family already extracts the full benefit.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.loadbounds import lemma9_condition_rates
from repro.analysis.tailbounds import lemma9_part3_failure_bound
from repro.core.params import SchemeParameters
from repro.experiments.common import make_instance, size_ladder
from repro.io.results import ExperimentResult
from repro.utils.primes import field_prime_for_universe

CLAIM = (
    "Lemma 9: conditions (1) and (2) hold w.p. 1 - o(1); the FKS "
    "condition (3) holds w.p. >= 1/2 for beta >= 2; jointly >= 1/2 - o(1)."
)


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    sizes = size_ladder(fast, [128, 256, 512, 1024, 2048], [128, 512])
    trials = 60 if fast else 300
    rows = []
    for n in sizes:
        keys, N = make_instance(n, seed)
        params = SchemeParameters(n=n)
        prime = field_prime_for_universe(N)
        rates = lemma9_condition_rates(keys, params, prime, trials, seed + 1)
        rows.append(
            {
                "n": n,
                "trials": trials,
                "P[cond1: g loads ok]": rates.g_load_rate,
                "P[cond2: group loads ok]": rates.group_load_rate,
                "P[cond3: FKS ok]": rates.fks_rate,
                "P[all three]": rates.joint_rate,
                "markov bound on fail3": round(
                    lemma9_part3_failure_bound(n, params.beta), 3
                ),
            }
        )
    worst_joint = min(r["P[all three]"] for r in rows)
    worst_c3 = min(r["P[cond3: FKS ok]"] for r in rows)
    return ExperimentResult(
        experiment_id="E7",
        title="Lemma 9 load conditions: empirical success rates",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"Joint acceptance never drops below {worst_joint:.2f} — far "
            "above the paper's 1/2 - o(1) guarantee (the Markov bound on "
            "condition 3 is loose: its empirical rate is "
            f">= {worst_c3:.2f} vs the guaranteed 0.5); conditions 1-2 "
            "are essentially always satisfied at these sizes."
        ),
    )
