"""E8 — Lemma 10: negative queries spread evenly.

"For any hash function h : U -> [k] which is uniform over the domain,
for sufficiently large n, every negative load <= 2 (N - n) / k."  We
build the dictionary and *exactly* scan the whole universe to compute
the complement loads of all three hash levels the query uses — the
coarse g, the group map h', and the bucket map h — reporting the worst
load as a multiple of the fair share (N - n)/k.  Lemma 10 is what lets
Section 2.3 transfer the positive-query contention argument to negative
queries.
"""

from __future__ import annotations

from repro.analysis.loadbounds import lemma10_negative_loads_ok
from repro.experiments.common import build_scheme, make_instance, size_ladder
from repro.io.results import ExperimentResult

CLAIM = (
    "Lemma 10: for domain-uniform h and N = omega(n), every negative "
    "bucket load is <= 2 (N - n) / k."
)


class _ModM:
    """h'(x) = h(x) mod m as a batch-evaluable function."""

    def __init__(self, h, m):
        self.h, self.m = h, m

    def eval_batch(self, xs):
        return self.h.eval_batch(xs) % self.m


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    sizes = size_ladder(fast, [128, 256, 512, 1024], [128, 256])
    rows = []
    for n in sizes:
        keys, N = make_instance(n, seed)
        d = build_scheme("low-contention", keys, N, seed + 1)
        con = d.construction
        p = d.params
        levels = [
            ("g -> [r]", con.h.g, p.r),
            ("h' -> [m]", _ModM(con.h, p.m), p.m),
            ("h -> [s]", con.h, p.s),
        ]
        for label, fn, k in levels:
            ok, worst = lemma10_negative_loads_ok(fn, keys, N, k)
            rows.append(
                {
                    "n": n,
                    "level": label,
                    "k": k,
                    "worst_load/fair_share": round(worst, 3),
                    "<= 2 (Lemma 10)": ok,
                }
            )
    worst = max(r["worst_load/fair_share"] for r in rows)
    return ExperimentResult(
        experiment_id="E8",
        title="Negative query loads across hash levels",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"Worst negative load is {worst:.2f}x the fair share over all "
            "levels and sizes — within Lemma 10's factor-2 envelope "
            "(the bucket level h -> [s] is the loosest, as its fair share "
            "N/s is smallest)."
        ),
    )
