"""E9 — Theorem 13: the time–contention trade-off, two ways.

**Analytic series** — the information recursion
``E[C_t] <= sqrt(a E[C_{t-1}])`` with the theorem's parameterization
(b = polylog(n), phi* = polylog(n)/s) yields, for each n, the smallest
round count t*(n) at which A'' can possibly have gathered its
n * 2**(-2 t*) bits.  The series grows like log log n — the theorem's
Omega(log log n).

**Concrete game** — we also drive the Lemma 14 game with *real* probe
specifications: the per-step marginals of the low-contention
dictionary's queries on n parallel instances.  The black box charges
the Lemma 21 coupling budget b * sum_j max_i P; the game validates
inequalities (1)-(3) on every round, and the information collected per
round is compared to the contention cap's ceiling b * phi* * s * n (the
round-1 bound of the proof).
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.common import (
    build_scheme,
    make_instance,
    uniform_distribution,
)
from repro.io.results import ExperimentResult
from repro.lowerbound.game import CommunicationGame, specification_from_dictionary
from repro.lowerbound.recursion import information_deficit_tstar

CLAIM = (
    "Theorem 13: b <= polylog(n) and phi* <= polylog(n)/s force "
    "t* = Omega(log log n) for any problem of VC-dimension n."
)


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    rows = []
    ks = [4, 8, 16, 32, 64, 128, 256, 512] if not fast else [4, 16, 64, 256]
    for k in ks:
        n = 2**k if k <= 60 else None
        t = information_deficit_tstar(int(2.0**k) if k < 300 else 2**k)
        rows.append(
            {
                "series": "recursion",
                "log2(n)": k,
                "t*(n)": t,
                "log2 log2 n": round(math.log2(max(k, 1)), 2),
                "t*/loglog": round(t / max(math.log2(max(k, 2)), 1), 3),
            }
        )

    # Concrete game on a small instance.
    n_game = 32 if fast else 64
    keys, N = make_instance(n_game, seed)
    d = build_scheme("low-contention", keys, N, seed + 1)
    s = d.table.s
    b = 64
    phi_star = (math.log2(n_game) ** 2) / s  # polylog(n)/s cap
    q = np.full(n_game, 0.5 / n_game)  # uniform positive mass
    game = CommunicationGame(n=n_game, s=s, b=b, phi_star=phi_star, q=q)
    total_bits = 0.0
    for t in range(d.max_probes):
        spec = specification_from_dictionary(d, keys[:n_game], t)
        bits = game.play_round(spec)
        total_bits += bits
        rows.append(
            {
                "series": "concrete-game",
                "log2(n)": round(math.log2(n_game), 1),
                "round": t + 1,
                "bits_this_round": round(bits, 1),
                "round1_ceiling=b*phi*s*n": round(b * phi_star * s * n_game, 1),
            }
        )
    # The adversary loop in the near-optimal-contention regime:
    # concentration priced out round by round (see adversarial_game).
    from repro.lowerbound import play_adversarial_game

    adv_rounds, _ = play_adversarial_game(
        n=64, s=128, b=64, phi_star=1.5 / 128, t_star=4,
        rng=seed + 9, r_override=16,
    )
    for r in adv_rounds:
        rows.append(
            {
                "series": "adversary-loop",
                "round": r.round_index,
                "bits_this_round": round(r.chosen_bits, 1),
                "uncapped_bits": round(r.uncapped_bits, 1),
                "good specs violated": r.all_good_violated,
                "q mass": round(r.q_mass, 3),
            }
        )

    target = n_game * 2.0 ** (-2 * d.max_probes)
    return ExperimentResult(
        experiment_id="E9",
        title="Lower bound: t*(n) recursion series + concrete game",
        claim=CLAIM,
        rows=rows,
        finding=(
            "t*(n) tracks log log n with ratio ~0.4-0.6 across 500+ "
            "doublings of n (the Omega(log log n) shape); the concrete "
            "low-contention scheme plays every round legally under the "
            f"polylog/s cap and clears the information target "
            f"({target:.3g} bits) with margin; and the adversary loop "
            "shows the squeezing mechanism live — concentration-heavy "
            "specifications are priced out each round, cutting A''s "
            "per-round information ~20x below the uncapped value."
        ),
    )
