"""E10 — Lemma 19: product-space probe simulation.

For probe distributions of both proof cases (all p_i <= 1/2, and one
p_0 > 1/2) we compute the exact success probability, cross-check it
against Monte-Carlo simulation, and verify the conditional output law
is proportional to p.  We also run the simulator on the *actual*
per-step distributions of low-contention queries and confirm the
t*-step joint success rate clears the 2**(-2 t*) floor the information
argument charges.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_scheme, make_instance
from repro.io.results import ExperimentResult
from repro.lowerbound.productspace import FAIL, ProductSpaceProbe
from repro.utils.rng import as_generator

CLAIM = (
    "Lemma 19: each adaptive probe can be simulated by independent "
    "per-cell probes, failing w.p. <= 3/4; success prob >= 1/4 per step "
    "and >= 2**(-2 t*) for t* steps, with the original conditional law."
)


def _case_rows(label: str, p: np.ndarray, rng, trials: int) -> dict:
    probe = ProductSpaceProbe(p)
    exact = probe.success_probability()
    outcomes = np.array([probe.simulate(rng) for _ in range(trials)])
    empirical = float(np.mean(outcomes != FAIL))
    # Conditional-law fidelity: total-variation distance to p.
    succ = outcomes[outcomes != FAIL]
    tv = float("nan")
    if succ.size:
        freq = np.bincount(succ, minlength=p.size) / succ.size
        tv = 0.5 * float(np.abs(freq - p).sum())
    return {
        "case": label,
        "s": p.size,
        "success_exact": round(exact, 4),
        "success_empirical": round(empirical, 4),
        ">= 1/4": exact >= 0.25 - 1e-12,
        "TV(output, p)": round(tv, 4),
        "E[cells probed]": round(probe.expected_probes(), 3),
    }


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    rng = as_generator(seed)
    trials = 2000 if fast else 20000
    rows = []
    # Case 1: flat-ish distribution, all p_i <= 1/2.
    p1 = rng.dirichlet(np.ones(32))
    while p1.max() > 0.5:
        p1 = rng.dirichlet(np.ones(32))
    rows.append(_case_rows("case1: all p_i <= 1/2", p1, rng, trials))
    # Case 2: one dominant cell.
    p2 = np.full(32, 0.25 / 31)
    p2[0] = 0.75
    rows.append(_case_rows("case2: p_0 = 3/4 > 1/2", p2, rng, trials))

    # The low-contention dictionary's own per-step distributions.
    n = 64 if fast else 128
    keys, N = make_instance(n, seed)
    d = build_scheme("low-contention", keys, N, seed + 1)
    x = int(keys[0])
    plan = d.probe_plan(x)
    dists = []
    for step in plan:
        p = np.zeros(d.table.s)
        p[step.support()] = step.probability()
        dists.append(p)
    probes = [ProductSpaceProbe(p) for p in dists]
    per_step = [pr.success_probability() for pr in probes]
    exact_joint = float(np.prod(per_step))
    floor = 4.0 ** (-len(plan))
    rows.append(
        {
            "case": f"low-contention query plan (t*={len(plan)})",
            "s": d.table.s,
            "success_exact": exact_joint,
            "success_empirical": "(joint: exact only)",
            ">= 1/4": exact_joint >= floor,
            "TV(output, p)": 0.0,
            "E[cells probed]": round(
                sum(pr.expected_probes() for pr in probes), 3
            ),
        }
    )
    rows.append(
        {
            "case": "  worst single plan step",
            "s": d.table.s,
            "success_exact": round(min(per_step), 4),
            "success_empirical": "",
            ">= 1/4": min(per_step) >= 0.25 - 1e-12,
            "TV(output, p)": "",
            "E[cells probed]": "",
        }
    )
    return ExperimentResult(
        experiment_id="E10",
        title="Product-space simulation of adaptive probes",
        claim=CLAIM,
        rows=rows,
        finding=(
            "Both proof cases meet the >= 1/4 per-step floor with the "
            "conditional output law matching p (TV shrinks as 1/sqrt of "
            "the successful-trial count); every step of the real query "
            "plan clears 1/4, and the joint success exceeds the "
            f"4**(-t*) floor ({floor:.2e})."
        ),
        notes="In the '>= 1/4' column, the plan row checks the joint 4**(-t*) floor.",
    )
