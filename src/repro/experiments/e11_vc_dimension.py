"""E11 — Definition 11: VC-dimensions that instantiate Theorem 13.

The lower bound applies to "any problem which has a non-degenerate
subproblem of size n" — formally, VC-dimension n.  We verify each
problem's closed-form VC-dimension against exhaustive shatter search on
small instances, report Sauer–Shelah shatter coefficients, and list the
implied Omega(log log VC-dim) probe floor.  Membership (VC-dim = n) is
the paper's target; threshold (VC-dim 1) and intervals (VC-dim 2) are
the degenerate controls the theorem does *not* constrain.
"""

from __future__ import annotations

import math

from repro.io.results import ExperimentResult
from repro.lowerbound.recursion import information_deficit_tstar
from repro.problems import (
    IntervalStabbingProblem,
    MembershipProblem,
    ParityProblem,
    ThresholdProblem,
    vc_dimension_exact,
)
from repro.problems.vc import sauer_shelah_bound, shatter_coefficient

CLAIM = (
    "Definition 11 / Theorem 13: VC-dim(membership of n elements) = n, "
    "so membership inherits the Omega(log log n) bound; constant-VC "
    "problems are exempt."
)


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    instances = [
        ("membership N=6,n=3", MembershipProblem(6, 3), 3),
        ("membership N=8,n=2", MembershipProblem(8, 2), 2),
        ("membership N=8,n=6", MembershipProblem(8, 6), 2),  # min(n, N-n)
        ("threshold N=10", ThresholdProblem(10), 1),
        ("intervals N=10", IntervalStabbingProblem(10), 2),
        ("parity w=4", ParityProblem(4), 4),
    ]
    rows = []
    for label, problem, closed_form in instances:
        exact = vc_dimension_exact(problem, max_k=6)
        k = min(5, problem.query_count)
        coeff = shatter_coefficient(problem, k)
        rows.append(
            {
                "problem": label,
                "VC exact": exact,
                "VC closed form": closed_form,
                "agree": exact == closed_form,
                f"shatter coeff (k={k})": coeff,
                "Sauer-Shelah cap": sauer_shelah_bound(k, exact),
                "implied t* floor": information_deficit_tstar(max(exact, 4))
                if exact >= 4
                else "(degenerate)",
            }
        )
    return ExperimentResult(
        experiment_id="E11",
        title="VC-dimension of data-structure problems",
        claim=CLAIM,
        rows=rows,
        finding=(
            "Exhaustive shatter search matches every closed form "
            "(membership's min(n, N-n) included) and shatter "
            "coefficients respect Sauer-Shelah; only problems with "
            "growing VC-dimension inherit the log log floor."
        ),
    )
