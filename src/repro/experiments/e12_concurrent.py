"""E12 — the Section 1 motivation: m simultaneous queries.

The paper measures contention "indirectly, by counting the expected
number of probes to a given cell for each individual query", bounding m
simultaneous queries via linearity of expectation.  Here we close the
loop: m processors run closed-loop queries against one shared table
under (a) free concurrent reads and (b) one-probe-per-cell-per-cycle
queuing.  Binary search's root cell caps queued throughput near 1
completion per max_probes cycles regardless of m; the low-contention
scheme's flat profile keeps its queued throughput within a few percent
of the contention-free value, and the observed worst simultaneous
collision count stays near the m * max Phi(j) prediction.
"""

from __future__ import annotations

from repro.concurrent import ConcurrentSimulator, CRCWModel, QueuedModel
from repro.contention import exact_contention
from repro.experiments.common import (
    build_scheme,
    make_instance,
    size_ladder,
    uniform_distribution,
)
from repro.io.results import ExperimentResult
from repro.utils.rng import as_generator

CLAIM = (
    "Section 1: expected simultaneous probes to a cell under m parallel "
    "queries is at most m * Phi(j); low contention is what makes "
    "concurrent throughput scale."
)

_SCHEMES = ("low-contention", "fks", "cuckoo", "binary-search")


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    n = 256 if fast else 1024
    keys, N = make_instance(n, seed)
    dist = uniform_distribution(keys, N, 0.5)
    ms = [16, 128] if fast else [16, 64, 256, 1024]
    cycles = 300 if fast else 1000
    rows = []
    for name in _SCHEMES:
        d = build_scheme(name, keys, N, seed + 1)
        max_phi = exact_contention(d, dist).max_total_contention()
        for m in ms:
            for model in (CRCWModel(), QueuedModel()):
                sim = ConcurrentSimulator(
                    d, dist, processors=m, model=model,
                    rng=as_generator(seed + 2),
                )
                res = sim.run(cycles)
                rows.append(
                    {
                        "scheme": name,
                        "m": m,
                        "model": model.name,
                        "throughput/cycle": round(res.throughput, 2),
                        "mean_latency": round(res.mean_latency, 1),
                        "stall_frac": round(res.stall_fraction, 3),
                        "max_collisions": res.max_cell_collisions,
                        "m*maxPhi (prediction)": round(m * max_phi, 2),
                    }
                )
    return ExperimentResult(
        experiment_id="E12",
        title="Concurrent throughput under m simultaneous queries",
        claim=CLAIM,
        rows=rows,
        finding=(
            "Queued binary search saturates near 1 completion/cycle with "
            ">90% stalls at large m (the root cell serializes); the "
            "low-contention scheme keeps stall fractions in the percent "
            "range and its collision peaks track the m * max Phi "
            "prediction within small-sample noise."
        ),
    )
