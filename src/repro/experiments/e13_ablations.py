"""E13 — ablations of the Section 2 design choices.

Three knobs the construction fixes and the paper motivates:

- **beta (space factor)** — smaller s raises the FKS-condition
  rejection rate (Lemma 9(3)'s 1/(beta(beta-1))) and the per-cell
  floor 1/s; larger s buys flatter contention linearly in space.
- **degree d** — more coefficient rows cost probes and space but
  tighten the Lemma 9 tails; d=3 is the minimum the lemma admits.
- **alpha (group count)** — groups of Theta(log n) buckets are the
  paper's key trick: fewer groups (larger alpha) means longer
  histograms (bigger rho, more probes); more groups mean fewer
  replicas per group word (s/m shrinks) and higher per-word contention.

Each row builds the scheme with one knob moved and reports contention
ratio, probes, space and construction trials — making the "why these
constants" story of Section 2.2 quantitative.
"""

from __future__ import annotations

import math

from repro.contention import exact_contention
from repro.core import LowContentionDictionary, SchemeParameters
from repro.experiments.common import make_instance, uniform_distribution
from repro.io.results import ExperimentResult
from repro.utils.rng import as_generator

CLAIM = (
    "Section 2.2's constants (c = 2e, d > 2, alpha, beta >= 2) trade "
    "space and probes against contention and construction retries."
)


def _build(keys, N, seed, **param_kwargs):
    params = SchemeParameters(n=len(keys), **param_kwargs)
    return LowContentionDictionary(
        keys, N, rng=as_generator(seed), params=params
    )


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    n = 256 if fast else 1024
    keys, N = make_instance(n, seed)
    dist = uniform_distribution(keys, N, 0.5)
    variants = [
        ("paper defaults", {}),
        ("beta=2.5", {"beta": 2.5}),
        ("beta=4", {"beta": 4.0}),
        ("degree=4", {"degree": 4}),
        # degree=5 raises the Lemma 9 alpha floor above the default 1.25.
        ("degree=5 (alpha=1.5)", {"degree": 5, "alpha": 1.5}),
        ("alpha=2 (fewer groups)", {"alpha": 2.0}),
        ("alpha=0.9 (more groups)", {"alpha": 0.9}),
        ("c=8 (looser loads)", {"c": 8.0}),
    ]
    rows = []
    for label, kwargs in variants:
        d = _build(keys, N, seed + 1, **kwargs)
        matrix = exact_contention(d, dist)
        phi = matrix.max_step_contention()
        rows.append(
            {
                "variant": label,
                "n": n,
                "s": d.params.s,
                "m(groups)": d.params.m,
                "rho": d.params.rho,
                "probes<=": d.max_probes,
                "space_words": d.space_words,
                "trials": d.construction_trials,
                "phi*s (ratio)": round(phi * d.params.s, 2),
                "phi*n": round(phi * n, 2),
            }
        )
    return ExperimentResult(
        experiment_id="E13",
        title="Ablations: beta, degree, alpha, c",
        claim=CLAIM,
        rows=rows,
        finding=(
            "Raising beta buys lower absolute contention at linear space "
            "cost (phi*n falls, phi*s stays ~constant); raising d adds 2 "
            "probes and 2 rows per increment with no contention gain at "
            "these sizes; alpha moves rho and the group replica count in "
            "opposite directions exactly as Section 2.2's accounting "
            "predicts."
        ),
    )
