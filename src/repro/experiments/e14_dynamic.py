"""E14 — extension: update contention in dynamic dictionaries.

The paper's conclusion proposes studying "the contention caused by the
updates in dynamic data structures".  We dynamize the Section 2 scheme
with the logarithmic method (see :mod:`repro.dynamic`) and measure, over
a random insert/delete stream:

- **query (read) contention** — the max per-cell probe rate across all
  level tables.  With paper-pure level sizing, the smallest non-empty
  level dominates at ~1/level_size, destroying the O(1/n) guarantee;
  padding every level's table to width Theta(n) (`min_level_width`)
  restores it at an O(n log n) space cost;
- **write contention** — rebuild frequency per cell: a level-j cell is
  rewritten once per level-j rebuild, i.e. ~2^-j per update, so the
  *newest* levels are write-hot while the *smallest* tables are
  read-hot — a genuine read/write contention tension absent from the
  static theory;
- **amortized update cost** — cells written per update, the classic
  logarithmic-method O(log n) with the scheme's constant.
"""

from __future__ import annotations

import numpy as np

from repro.distributions import UniformPositiveNegative
from repro.dynamic import DynamicLowContentionDictionary
from repro.io.results import ExperimentResult
from repro.utils.rng import as_generator

CLAIM = (
    "Paper conclusion (future work): 'study the contention caused by the "
    "updates in dynamic data structures.'  Extension experiment — no "
    "paper baseline to match; findings are ours."
)


def _run_stream(universe, ops, key_range, width, seed):
    rng = as_generator(seed)
    d = DynamicLowContentionDictionary(
        universe, rng=as_generator(seed + 1), min_level_width=width
    )
    for _ in range(ops):
        k = int(rng.integers(0, key_range))
        if rng.random() < 0.75:
            d.insert(k)
        else:
            d.delete(k)
    return d


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    universe = 1 << 16
    ops = 600 if fast else 2000
    key_range = 1200 if fast else 3000
    queries = 1500 if fast else 6000
    rows = []
    for width_label, width_fn in (
        ("paper-pure (0)", lambda live: 0),
        ("pad to n", lambda live: live),
        ("pad to 4n", lambda live: 4 * live),
    ):
        probe = _run_stream(universe, ops, key_range, 0, seed)
        width = width_fn(probe.live_count)
        d = _run_stream(universe, ops, key_range, width, seed)
        keys = d.live_keys()
        dist = UniformPositiveNegative(universe, keys, 0.5)
        res = d.empirical_query_contention(
            dist, queries, as_generator(seed + 7)
        )
        acct = d.account.row()
        rows.append(
            {
                "level width": width_label,
                "ops": ops,
                "live n": d.live_count,
                "levels": sum(1 for s in d.level_sizes if s),
                "space_words": d.space_words,
                "E[probes]": round(res["mean_probes"], 1),
                "read phi_max": res["global_max_contention"],
                "read phi_max * n": round(
                    res["global_max_contention"] * d.live_count, 2
                ),
                "write phi_max": acct["max_write_contention"],
                "amortized cells/update": acct["amortized_cells_written"],
            }
        )
    return ExperimentResult(
        experiment_id="E14",
        title="Extension: dynamic updates — read vs write contention",
        claim=CLAIM,
        rows=rows,
        finding=(
            "Paper-pure level sizing loses the static O(1/n) read "
            "guarantee (the smallest level's table dominates, "
            "phi*n in the tens-to-hundreds); padding every level to "
            "width Theta(n) restores phi*n to a small constant at "
            "~3-5x space. Write contention concentrates on the newest "
            "(most-rebuilt) levels at ~0.3-0.5 writes/cell/update, "
            "independent of padding — reads and writes are hot in "
            "opposite places."
        ),
    )
