"""E15 — the space cost of reaching O(1/n) contention by replication.

Section 1.3 notes contention "can be decreased by storing the hash
function redundantly"; the degenerate endpoint is replicating the whole
structure R times (contention divides exactly by R — verified by the
engine).  This experiment asks: *how much space does each baseline need
to match Theorem 3's contention target* phi <= c/n (we use the measured
low-contention value as c)?

Since replication divides contention exactly by R, the required R is
ceil(phi_1 / target) and the required space is R * inner_space — an
analytic consequence we also spot-check by building one replicated
instance per scheme.  Expected shape: binary search needs R = Theta(n)
(Theta(n^2) total words), FKS/cuckoo R = Theta(hot-cell mass * n)
(superlinear), while the paper's construction hits the target in O(n)
words — replication *of the right cells, sized by the load structure*,
is the whole design.
"""

from __future__ import annotations

import math

import numpy as np

from repro.contention import exact_contention
from repro.dictionaries.replicated import ReplicatedDictionary
from repro.experiments.common import (
    build_scheme,
    make_instance,
    size_ladder,
    uniform_distribution,
)
from repro.io.results import ExperimentResult

CLAIM = (
    "Section 1.3 / Theorem 3: redundant storage lowers contention, but "
    "matching O(1/n) by whole-structure replication costs the baselines "
    "superlinear space; the paper's scheme does it in O(n) words."
)

_SCHEMES = ("low-contention", "fks", "cuckoo", "binary-search")


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    sizes = size_ladder(fast, [256, 1024], [256])
    rows = []
    for n in sizes:
        keys, N = make_instance(n, seed)
        dist = uniform_distribution(keys, N, 0.5)
        lcd = build_scheme("low-contention", keys, N, seed + 1)
        target = exact_contention(lcd, dist).max_step_contention()
        for name in _SCHEMES:
            d = build_scheme(name, keys, N, seed + 1)
            phi1 = exact_contention(d, dist).max_step_contention()
            r_needed = max(1, math.ceil(phi1 / target))
            space = r_needed * d.space_words
            entry = {
                "n": n,
                "scheme": name,
                "phi (R=1)": phi1,
                "target=lcd phi": target,
                "R needed": r_needed,
                "space to target": space,
                "space/n": round(space / n, 1),
            }
            # Spot-check the analytic R on a measurable size (the exact
            # 1/R law is property-tested separately; huge R would only
            # cost time here).
            if 1 < r_needed <= 64:
                rep = ReplicatedDictionary(d, r_needed)
                measured = exact_contention(rep, dist).max_step_contention()
                entry["replicated phi (measured)"] = measured
                assert measured <= target * 1.0000001
            rows.append(entry)
    lcd_rows = [r for r in rows if r["scheme"] == "low-contention"]
    bin_rows = [r for r in rows if r["scheme"] == "binary-search"]
    return ExperimentResult(
        experiment_id="E15",
        title="Space needed to reach the O(1/n) contention target",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"Binary search needs R ~ n replicas (space/n = "
            f"{bin_rows[-1]['space/n']} at n={bin_rows[-1]['n']}, i.e. "
            "Theta(n^2) words); FKS/cuckoo need small R whose growth "
            "follows their hot-cell blowup (log-like), so at these n "
            "replicated cuckoo is actually space-competitive — the "
            "low-contention scheme's advantage (already at target with "
            f"{lcd_rows[-1]['space/n']} words/key, R growing not at all) "
            "is asymptotic, exactly as §1.3's Theta-comparisons state."
        ),
    )
