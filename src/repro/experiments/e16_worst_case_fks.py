"""E16 — exhibiting §1.3's Θ(√n) worst case for replicated FKS.

E5 measures FKS contention on *random* polynomial instances, which
behave almost fully randomly (log-like bucket tails).  The paper's
Θ(√n)×optimal figure is a **worst case over 2-universal families**,
so this experiment constructs it: the planted-block family
(:mod:`repro.hashing.planted`) is 2-universal up to a constant, yet an
activated member maps a √n-block of the key set to one bucket while
still passing the FKS acceptance condition (Σ load² ≤ 4n).  Building
FKS on the activated member and measuring exactly:

- the bucket-0 header cell is probed by every query of the planted
  block — contention `block_size/n = 1/√n = √n × optimal`;
- the low-contention dictionary on the *same* adversarially blocked
  key set is unaffected (its group histograms absorb any load profile
  that passes P(S)).

The sweep fits the √n law that random instances cannot show — closing
E5's calibration gap.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.fitting import best_growth_law
from repro.contention import exact_contention
from repro.dictionaries import FKSDictionary
from repro.experiments.common import (
    build_scheme,
    make_instance,
    size_ladder,
    uniform_distribution,
)
from repro.hashing import PlantedBlockFamily
from repro.io.results import ExperimentResult
from repro.utils.primes import field_prime_for_universe
from repro.utils.rng import as_generator

CLAIM = (
    "Section 1.3: storing the hash function redundantly 'gives a maximum "
    "contention of Theta(sqrt(n)) times optimal for FKS' — a worst case "
    "over 2-universal level-1 families."
)


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    sizes = size_ladder(fast, [128, 256, 512, 1024, 2048], [128, 256, 512])
    rows = []
    ratios = []
    for n in sizes:
        keys, N = make_instance(n, seed)
        dist = uniform_distribution(keys, N, 1.0)  # positives carry the block
        prime = field_prime_for_universe(N)
        family = PlantedBlockFamily(prime, n, keys)
        planted = family.sample_activated(as_generator(seed + 2))
        fks = FKSDictionary(
            keys, N, rng=as_generator(seed + 3), level1=planted
        )
        phi = exact_contention(fks, dist).max_step_contention()
        ratio = phi * fks.table.s
        ratios.append(ratio)
        # Control: random-instance FKS and the low-contention scheme.
        fks_random = build_scheme("fks", keys, N, seed + 3)
        phi_rand = exact_contention(fks_random, dist).max_step_contention()
        lcd = build_scheme("low-contention", keys, N, seed + 3)
        phi_lcd = exact_contention(lcd, dist).max_step_contention()
        rows.append(
            {
                "n": n,
                "block": family.block_size,
                "collision bound * m": round(
                    family.pairwise_collision_bound() * n, 2
                ),
                "planted fks ratio": round(ratio, 1),
                "sqrt(n)": round(float(np.sqrt(n)), 1),
                "random fks ratio": round(phi_rand * fks_random.table.s, 1),
                "lcd ratio (same keys)": round(phi_lcd * lcd.params.s, 2),
            }
        )
    best, _ = best_growth_law(
        np.asarray(sizes, dtype=float),
        np.asarray(ratios),
        ["const", "log(n)", "sqrt(n)", "n"],
    )
    return ExperimentResult(
        experiment_id="E16",
        title="Worst-case 2-universal family: FKS at Theta(sqrt n) x optimal",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"The planted instances fit {best.law} (relative error "
            f"{best.mean_relative_error:.2f}, scale {best.scale:.2f}) — "
            "the paper's Theta(sqrt n) exhibited; the family stays "
            "2-universal within a factor ~2 (collision-bound column), "
            "random FKS instances stay an order of magnitude lower, and "
            "the low-contention scheme is untouched at O(1) on the same "
            "adversarial key sets."
        ),
    )
