"""E17 — sharpness of the paper's tail bounds (Theorems 6-8).

Lemma 9 is powered by three probability tools: the d-wise-independence
moment bound (Theorem 6), Hoeffding for bounded independent summands
(Theorem 7), and DM's Fact 2.2 (Theorem 8).  This experiment measures
the *actual* tail probabilities of the corresponding events over many
hash draws and sets them against the bounds — quantifying how much
slack Lemma 9 (and hence the acceptance rates of E7) inherits.

Events measured, matching each theorem's setting:

- T6: a fixed g-bucket's load deviating by t over its mean, g from the
  degree-d polynomial family (d-wise independent indicators);
- T7: a group load reaching c * mean under the DM family's shifted
  sums (the Lemma 9(2) application, c = 2e);
- T8: any bucket of an H^d_m draw exceeding load d, with m <= 2n/d.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.tailbounds import (
    dwise_tail_bound,
    fact22_bound,
    hoeffding_tail_bound,
)
from repro.experiments.common import make_instance, size_ladder
from repro.hashing import DMFamily, PolynomialFamily
from repro.io.results import ExperimentResult
from repro.utils.primes import field_prime_for_universe
from repro.utils.rng import as_generator

CLAIM = (
    "Theorems 6-8 (the paper's probability toolkit) upper-bound the "
    "load-deviation tails used in Lemma 9; bounds must dominate the "
    "measured frequencies."
)


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    rng = as_generator(seed)
    n = 256 if fast else 1024
    trials = 400 if fast else 2000
    keys, N = make_instance(n, seed)
    prime = field_prime_for_universe(N)
    rows = []

    # Theorem 6: fixed-bucket deviation under a d-wise family.
    d = 4
    r = max(2, round(n**0.5))
    g_family = PolynomialFamily(prime, r, d)
    mean = n / r
    for t_mult in (1.0, 2.0):
        t = t_mult * mean
        exceed = 0
        for _ in range(trials):
            g = g_family.sample(rng)
            if int(g.loads(keys)[0]) - mean > t:
                exceed += 1
        bound = dwise_tail_bound(mean, t, d)
        rows.append(
            {
                "theorem": "T6 (d-wise moments)",
                "event": f"load - mean > {t_mult:.0f}*mean (one bucket)",
                "measured": exceed / trials,
                "bound": round(bound, 5),
                "bound holds": exceed / trials <= bound + 3 / trials,
            }
        )

    # Theorem 7 via Lemma 9(2): group load >= c * mean under DM.
    c = 2 * math.e
    m = max(2, round(n / (1.25 * math.log(n))))
    dm = DMFamily(prime, m, r, 3)
    mean_group = n / m
    exceed = 0
    for _ in range(trials):
        h = dm.sample(rng)
        if int(h.loads(keys).max()) >= c * mean_group:
            exceed += 1
    # Union bound over m groups of the Hoeffding tail with range d=3+.
    bound = min(1.0, m * hoeffding_tail_bound(mean_group, c, 4.0))
    rows.append(
        {
            "theorem": "T7 (Hoeffding, L9(2))",
            "event": f"any group load >= {c:.2f}*mean",
            "measured": exceed / trials,
            "bound": round(bound, 5),
            "bound holds": exceed / trials <= bound + 3 / trials,
        }
    )

    # Theorem 8 / Fact 2.2 in the regime Lemma 9's proof uses it: a
    # coarse g-bucket of k ~ c*alpha*ln n elements hashed into m groups
    # with m >> k, where the n(2n/m)^d form is non-vacuous.  (As quoted,
    # the theorem's "m <= 2n/d" precondition makes its own bound >= 1 —
    # see the errata notes in EXPERIMENTS.md.)
    d8 = 3
    k8 = max(4, round(c * 1.25 * math.log(n)))
    bucket = keys[:k8]
    # The bound n(2n/m)^d is informative only once m > 2 k^(1+1/d) —
    # asymptotically true for Lemma 9's m = n/(alpha ln n) vs bucket
    # size Theta(log n), but not yet at feasible n, so we evaluate at a
    # range size in the informative regime.
    m8 = max(m, int(4 * k8 ** (1.0 + 1.0 / d8)))
    f_family = PolynomialFamily(prime, m8, d8)
    exceed = 0
    for _ in range(trials):
        f = f_family.sample(rng)
        if int(f.loads(bucket).max()) > d8:
            exceed += 1
    bound8 = fact22_bound(k8, m8, d8)
    rows.append(
        {
            "theorem": "T8 (Fact 2.2)",
            "event": f"any load > {d8}: {k8} keys into m = {m8}",
            "measured": exceed / trials,
            "bound": round(bound8, 5),
            "bound holds": exceed / trials <= bound8 + 3 / trials,
        }
    )
    slack = [
        (r_["bound"] / r_["measured"]) if r_["measured"] > 0 else float("inf")
        for r_ in rows
    ]
    finite = [v for v in slack if np.isfinite(v)]
    return ExperimentResult(
        experiment_id="E17",
        title="Tail-bound sharpness (Theorems 6-8)",
        claim=CLAIM,
        rows=rows,
        finding=(
            "Every bound dominates its measured tail (as it must); the "
            "slack ranges from ~"
            + (f"{min(finite):.0f}x" if finite else "inf")
            + " up to events the bounds allow but that never occur in "
            f"{trials} draws — the conservatism that makes E7's "
            "acceptance rates ~1.0 against Lemma 9's 1/2 guarantee."
        ),
    )
