"""E18 — fault tolerance: replication buys robustness at the Θ(1/R) price.

The paper charges replication Θ(R) space to divide contention by R
(§1.3, measured in E15).  This experiment shows the *same* replication
simultaneously buys fault tolerance, at a measured probe/retry cost:

- **corruption series** — sweep stuck-cell rate × replica count with the
  low-contention dictionary inside a
  :class:`~repro.dictionaries.replicated.ReplicatedDictionary`.  The
  default random-replica routing keeps a flat wrong/failed-query rate no
  matter how many replicas exist (each query still sees one replica);
  majority voting drives the wrong-answer rate to zero as R grows (a
  corrupt minority is outvoted), paying ~R× probes per query.
- **crash series** — sweep replica count at a fixed 50% per-replica
  crash rate.  Random routing fails on every query routed to a crashed
  replica; bounded-retry failover absorbs the crashes with a measured
  retry count and exponential-backoff cost (in probe-equivalents).

Each row also reports the *fault-free* exact max step contention of the
replicated structure: it divides by R (the E15 law) regardless of the
fault rate, i.e. the robustness comes at the paper's usual price and no
more.  Everything is seeded: the table is identical for any ``--jobs``.
"""

from __future__ import annotations

import numpy as np

from repro.contention import exact_contention
from repro.dictionaries.replicated import ReplicatedDictionary
from repro.errors import FaultError
from repro.experiments.common import (
    build_scheme,
    make_instance,
    uniform_distribution,
)
from repro.faults import FaultConfig
from repro.io.results import ExperimentResult

CLAIM = (
    "Definition 1 / §1.3: the model assumes reliable cells and replicas; "
    "replication should buy fault tolerance at the same Θ(1/R) "
    "contention price the paper charges for it."
)


def _measure(rep: ReplicatedDictionary, xs, truth, seed: int) -> dict:
    """Run all queries against ``rep``; count wrong/failed, probe cost."""
    rng = np.random.default_rng(seed)
    rep.table.counter.reset()
    rep.fault_stats.reset()
    wrong = failed = 0
    for x, t in zip(xs, truth):
        try:
            wrong += int(rep.query(int(x), rng) != bool(t))
        except FaultError:
            failed += 1
    probes = int(rep.table.counter.total_counts().sum())
    q = len(xs)
    return {
        "wrong_rate": round(wrong / q, 4),
        "failed_rate": round(failed / q, 4),
        "probes/query": round(probes / q, 2),
        "retries": rep.fault_stats.retries,
        "backoff_probes": rep.fault_stats.backoff_probes,
    }


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    n = 96 if fast else 192
    queries = 200 if fast else 500
    replica_ladder = [1, 3, 5] if fast else [1, 3, 5, 7]
    stuck_rates = [0.01] if fast else [0.005, 0.01, 0.02]
    keys, N = make_instance(n, seed)
    dist = uniform_distribution(keys, N, 0.5)
    inner = build_scheme("low-contention", keys, N, seed + 1)
    xs = dist.sample(np.random.default_rng(seed + 2), queries)
    truth = inner.contains_batch(xs)

    # Fault-free contention of the replicated structure, per R: the
    # price line every fault row is compared against.
    phi_by_r = {}
    for R in set(replica_ladder) | {2, 4, 8}:
        clean = ReplicatedDictionary(inner, R)
        phi_by_r[R] = exact_contention(clean, dist).max_step_contention()

    rows = []
    for rate in stuck_rates:
        faults = FaultConfig(
            stuck_rate=rate, flip_rate=rate / 4, seed=seed + 11
        )
        for R in replica_ladder:
            for mode in ("random", "majority"):
                rep = ReplicatedDictionary(inner, R, mode=mode, faults=faults)
                row = {
                    "series": "corruption",
                    "fault_rate": rate,
                    "R": R,
                    "mode": mode,
                    **_measure(rep, xs, truth, seed + 3),
                    "max_step_phi (no faults)": phi_by_r[R],
                }
                rows.append(row)
    crash_faults = FaultConfig(crash_rate=0.5, seed=seed + 7)
    for R in (2, 4, 8):
        for mode in ("random", "failover"):
            rep = ReplicatedDictionary(
                inner, R, mode=mode, faults=crash_faults, max_retries=4
            )
            row = {
                "series": "crash",
                "fault_rate": 0.5,
                "R": R,
                "mode": mode,
                **_measure(rep, xs, truth, seed + 4),
                "max_step_phi (no faults)": phi_by_r[R],
            }
            row["live_replicas"] = len(rep.live_replicas())
            rows.append(row)

    maj = [
        r for r in rows
        if r["series"] == "corruption" and r["mode"] == "majority"
    ]
    biggest = max(replica_ladder)
    end_wrong = max(
        r["wrong_rate"] + r["failed_rate"] for r in maj if r["R"] == biggest
    )
    fo = [r for r in rows if r["mode"] == "failover"]
    return ExperimentResult(
        experiment_id="E18",
        title="Fault tolerance bought by replication (stuck cells, "
        "bit flips, crashed replicas)",
        claim=CLAIM,
        rows=rows,
        finding=(
            "Majority voting drives the wrong+failed rate to "
            f"{end_wrong:.3f} at R={biggest} (flat in R under random "
            "routing) at a ~R x probe cost; under 50% replica crashes, "
            "bounded-retry failover absorbs every crash the random "
            f"router fails on, spending {max(r['retries'] for r in fo)} "
            f"retries and {max(r['backoff_probes'] for r in fo)} backoff "
            "probe-equivalents at R=8 — while the measured fault-free "
            "contention still divides exactly by R (the E15 price, "
            "nothing extra)."
        ),
    )
