"""E19 — serving: live traffic matches exact Φ_t; routing exploits it.

The contention engine predicts, for every cell and step, the
probability a query probes it.  This experiment closes the loop
through the full serving stack (:mod:`repro.serve`): micro-batching,
replica routing, admission control, failover.

- **Part A (validation)** — drive an open-loop uniform workload through
  a replicated service with the paper's *uniform random* replica
  routing and compare the measured per-cell probe counts against the
  exact replicated Φ_t.  With per-query uniform routing, the count at
  cell ``(t, j)`` over ``Q`` completed queries is exactly
  ``Binomial(Q, Φ_t(j))``; we check the hottest cell of every step sits
  within 3σ of its prediction (one cell per step — no multiple-
  comparisons inflation).
- **Part B (exploitation)** — a Zipf(1.1) workload through two
  otherwise identical services: blind round-robin vs contention-aware
  least-loaded routing (greedy balancing on the live probe counters).
  Under skew, deadline flushes give batches variable probe cost;
  balancing on *measured* cost keeps the max per-replica load strictly
  below round-robin's.
- **Part C (composition)** — the same service with a crashed replica
  (PR 2 fault layer): dispatch failover marks it down, the router
  reweights, and every request still completes with the right answer.

Everything runs in virtual time with seeded RNG streams: the table is
byte-identical across runs and ``--jobs`` settings.
"""

from __future__ import annotations

import numpy as np

from repro.contention import exact_contention
from repro.dictionaries.replicated import ReplicatedDictionary
from repro.distributions import ZipfDistribution
from repro.experiments.common import (
    build_scheme,
    make_instance,
    uniform_distribution,
)
from repro.faults import FaultConfig
from repro.io.results import ExperimentResult
from repro.serve import build_service, run_loadgen

CLAIM = (
    "Definition 1 computes the exact probability each cell is probed at "
    "each step; a live service whose router follows the paper's uniform "
    "replica choice must observe those probabilities, and a router that "
    "watches the probe counters can balance load better than one that "
    "does not."
)


def _phi_rows(
    phi: np.ndarray, counts: np.ndarray, completed: int, s: int
) -> tuple[list[dict], float]:
    """Hottest-cell z per step: measured vs Binomial(Q, Φ_t(j))."""
    rows = []
    worst = 0.0
    for t in range(phi.shape[0]):
        j = int(np.argmax(phi[t]))
        p = float(phi[t, j])
        if p <= 0.0:
            continue
        measured = (
            int(counts[t, j]) if t < counts.shape[0] else 0
        )
        expect = completed * p
        sigma = float(np.sqrt(completed * p * (1.0 - p)))
        z = abs(measured - expect) / sigma if sigma > 0 else 0.0
        worst = max(worst, z)
        rows.append(
            {
                "part": "A:phi",
                "step": t,
                "cell": f"r{j // s}c{j % s}",
                "phi_t": round(p, 6),
                "expected": round(expect, 1),
                "measured": measured,
                "z": round(z, 2),
            }
        )
    return rows, worst


def _route_metrics(report) -> tuple[int, float]:
    """Worst per-shard max replica load and max/mean imbalance."""
    worst_max = 0
    worst_ratio = 0.0
    for loads in report.replica_loads:
        arr = np.asarray(loads, dtype=np.float64)
        worst_max = max(worst_max, int(arr.max()))
        worst_ratio = max(worst_ratio, float(arr.max() / arr.mean()))
    return worst_max, worst_ratio


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    n = 96 if fast else 192
    requests = 3000 if fast else 12000
    replicas = 3
    keys, N = make_instance(n, seed)
    dist = uniform_distribution(keys, N, 0.5)
    rows: list[dict] = []

    # -- Part A: measured per-cell load vs exact replicated Phi_t ----------------
    inner = build_scheme("low-contention", keys, N, seed + 1)
    phi = exact_contention(ReplicatedDictionary(inner, replicas), dist).phi
    svc = build_service(
        keys, N, num_shards=1, replicas=replicas, router="random",
        max_batch=32, max_delay=0.25, seed=seed + 2,
    )
    rep_a = run_loadgen(
        svc, dist, requests, discipline="open", rate=64.0,
        seed=seed + 3, expected_keys=keys,
    )
    counts = svc.cell_load_matrix(0)
    s = svc.shards[0].table.s
    phi_rows, worst_z = _phi_rows(phi, counts, rep_a.completed, s)
    rows.extend(phi_rows)

    # -- Part B: round-robin vs least-loaded under Zipf skew ---------------------
    zipf_rng = np.random.default_rng(seed + 4)
    candidates = np.concatenate(
        [keys, zipf_rng.integers(0, N, size=n)]
    )
    zipf = ZipfDistribution(
        N, np.unique(candidates), exponent=1.1, shuffle_ranks=seed + 5
    )
    by_router: dict[str, tuple[int, float, object]] = {}
    for router in ("round-robin", "least-loaded", "random"):
        svc_b = build_service(
            keys, N, num_shards=2, replicas=replicas, router=router,
            max_batch=16, max_delay=0.1, probe_time=0.001,
            seed=seed + 6,
        )
        rep_b = run_loadgen(
            svc_b, zipf, requests, discipline="open", rate=96.0,
            seed=seed + 7, expected_keys=keys,
        )
        max_load, ratio = _route_metrics(rep_b)
        by_router[router] = (max_load, ratio, rep_b)
        rows.append(
            {
                "part": "B:routing",
                "router": router,
                "workload": "zipf(1.1)",
                "completed": rep_b.completed,
                "max_replica_load": max_load,
                "load_imbalance": round(ratio, 4),
                "p99_latency": round(rep_b.latency_p99, 4),
                "wrong": rep_b.wrong_answers,
            }
        )

    # -- Part C: crashed replica, failover through the router --------------------
    svc_c = build_service(
        keys, N, num_shards=1, replicas=replicas, router="least-loaded",
        mode="failover",
        faults=FaultConfig(crashed_replicas=(0,), seed=seed + 8),
        seed=seed + 9,
    )
    rep_c = run_loadgen(
        svc_c, dist, requests // 4, discipline="closed", clients=16,
        think_time=0.01, seed=seed + 10, expected_keys=keys,
    )
    rows.append(
        {
            "part": "C:faults",
            "router": "least-loaded",
            "crashed": "replica 0",
            "completed": rep_c.completed,
            "failovers": rep_c.failovers,
            "live_after": len(svc_c.routers[0].live),
            "wrong": rep_c.wrong_answers,
        }
    )

    rr_max = by_router["round-robin"][0]
    ll_max = by_router["least-loaded"][0]
    win = 1.0 - ll_max / rr_max
    return ExperimentResult(
        experiment_id="E19",
        title="Live serving: measured load matches exact Phi_t; "
        "contention-aware routing beats round-robin",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"Part A: across {len(phi_rows)} steps the hottest cell's "
            f"measured load sits within {worst_z:.2f} sigma of the exact "
            f"Binomial(Q, Phi_t(j)) prediction (threshold 3). Part B: on "
            f"Zipf(1.1), least-loaded routing cuts the max per-replica "
            f"probe load to {ll_max} vs round-robin's {rr_max} "
            f"({100 * win:.1f}% lower; routing win "
            f"{'holds' if ll_max < rr_max else 'FAILS'}). Part C: with "
            f"replica 0 crashed, {rep_c.failovers} failover(s) rerouted "
            f"every request — {rep_c.completed} completed, "
            f"{rep_c.wrong_answers} wrong answers."
        ),
        notes=(
            "Part A routing is per-query uniform over replicas, so "
            "per-cell counts are exactly Binomial; only each step's "
            "hottest cell is tested to avoid multiple-comparisons "
            "inflation. Loads in part B are probes charged by the live "
            "ProbeCounter, not request counts."
        ),
    )
