"""E20 — telemetry: observation is free when off and sharp when on.

The telemetry layer (:mod:`repro.telemetry`) claims two things that
must both hold for it to be usable on the serving stack:

1. **Observation changes nothing.**  Every instrumented site is guarded
   by a single ``BUS.active`` test and the hub never touches a service
   RNG stream, so a run with full telemetry (metrics + tracing + bus
   collection) must leave per-cell, per-step probe accounting
   **byte-identical** to the same seeded run with telemetry absent.
2. **The monitor separates signal from noise.**  Under uniform replica
   routing the live count at cell ``(t, j)`` after ``Q`` completed
   queries is exactly ``Binomial(Q, Φ_t(j))`` (the E19 part A law), so
   the :class:`~repro.telemetry.monitor.ContentionMonitor` can compare
   streaming counts to the exact prediction online.  With the
   max-of-Gaussians-corrected 3σ threshold it must raise **zero false
   alarms** on ≥100 uniform-traffic batches, yet flag an injected hot
   key (50% of traffic on one key the prediction knows nothing about)
   within ``k`` batches, and flag a stuck router (all traffic pinned to
   one replica) via the
   :class:`~repro.telemetry.monitor.ReplicaBalanceMonitor`.

Parts:

- **Part A (zero perturbation)** — two identically seeded services and
  loadgen runs, one bare and one carrying a
  :class:`~repro.telemetry.hub.TelemetryHub` (metrics + tracing) with a
  bus collector subscribed; compare probe-count matrices byte for byte.
- **Part B (no false alarms)** — uniform traffic, monitor checked after
  *every* batch against the exact Φ_t of the served structure; ≥100
  checks, zero alarms required.
- **Part C (hot-cell detection)** — same service geometry, but the
  workload mixes 50% point mass on one member key into the uniform
  stream while the monitor still predicts from the uniform Φ_t; the
  hot key's probe cells must alarm within ``k = 32`` batches of the
  expected-count gate opening.
- **Part D (stuck router)** — a healthy round-robin service never
  alarms the balance monitor; the same service with every replica but
  one marked down (a stuck router) must alarm within a few checks.

Everything runs in virtual time with seeded RNG streams, so the whole
experiment — including every alarm's content — is byte-reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.contention import exact_contention
from repro.distributions import MixtureDistribution, PointMass
from repro.experiments.common import make_instance, uniform_distribution
from repro.io.results import ExperimentResult
from repro.serve import build_service, run_loadgen
from repro.telemetry import (
    ContentionMonitor,
    ReplicaBalanceMonitor,
    TelemetryHub,
    collect_bus_metrics,
)

CLAIM = (
    "Telemetry guarded behind a single disabled-bus test cannot perturb "
    "the probe accounting it observes, and a monitor comparing streaming "
    "per-cell counts against the exact Binomial(Q, Phi_t(j)) law "
    "separates injected hot-cell and router-skew anomalies from uniform "
    "traffic with zero false alarms."
)

#: Detection budget: a hot cell must alarm within this many batches.
DETECTION_BUDGET_BATCHES = 32


def _build(keys, N, seed, replicas=1, router="random", max_batch=32):
    return build_service(
        keys, N, num_shards=1, replicas=replicas, router=router,
        max_batch=max_batch, max_delay=0.25, seed=seed,
    )


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    n = 96 if fast else 160
    replicas = 3
    keys, N = make_instance(n, seed)
    dist = uniform_distribution(keys, N, 0.5)
    rows: list[dict] = []

    # -- Part A: telemetry on vs absent, byte-identical accounting ---------------
    requests_a = 2000 if fast else 6000
    svc_off = _build(keys, N, seed + 2, replicas=replicas)
    rep_off = run_loadgen(
        svc_off, dist, requests_a, discipline="open", rate=64.0,
        seed=seed + 3, expected_keys=keys,
    )
    counts_off = svc_off.cell_load_matrix(0)

    svc_on = _build(keys, N, seed + 2, replicas=replicas)
    hub_a = TelemetryHub(metrics=True, tracing=True)
    svc_on.attach_telemetry(hub_a)
    with collect_bus_metrics() as bus_reg:
        rep_on = run_loadgen(
            svc_on, dist, requests_a, discipline="open", rate=64.0,
            seed=seed + 3, expected_keys=keys,
        )
    counts_on = svc_on.cell_load_matrix(0)
    identical = bool(
        counts_off.shape == counts_on.shape
        and counts_off.tobytes() == counts_on.tobytes()
        and rep_off.completed == rep_on.completed
        and rep_off.probes == rep_on.probes
    )
    bus_probes = int(
        bus_reg.counter("probes", "cells probed").value
    )
    spans = len(hub_a.tracer.spans)
    rows.append(
        {
            "part": "A:identical",
            "completed": rep_on.completed,
            "probes_bare": rep_off.probes,
            "probes_observed": rep_on.probes,
            "bus_probes": bus_probes,
            "trace_spans": spans,
            "byte_identical": identical,
        }
    )

    # -- Part B: uniform traffic, zero false alarms over >= 100 batches ----------
    requests_b = 3200 if fast else 4800
    svc_b = _build(keys, N, seed + 4)
    phi_b = exact_contention(svc_b.shards[0], dist).phi
    mon_b = ContentionMonitor(phi_b, sigma_threshold=3.0)
    hub_b = TelemetryHub(metrics=True, contention=mon_b, check_every=1)
    svc_b.attach_telemetry(hub_b)
    rep_b = run_loadgen(
        svc_b, dist, requests_b, discipline="open", rate=64.0,
        seed=seed + 5, expected_keys=keys,
    )
    rows.append(
        {
            "part": "B:uniform",
            "completed": rep_b.completed,
            "checks": mon_b.checks,
            "cells_tested": mon_b.cells_tested,
            "threshold": round(
                mon_b.effective_threshold(max(mon_b.cells_tested, 1)), 2
            ),
            "false_alarms": len(mon_b.alarms),
        }
    )

    # -- Part C: injected hot key must alarm within the detection budget ---------
    requests_c = 4000 if fast else 8000
    hot_key = int(keys[0])
    hot_dist = MixtureDistribution(
        [PointMass(N, hot_key), dist], [0.5, 0.5]
    )
    svc_c = _build(keys, N, seed + 6, max_batch=128)
    phi_c = exact_contention(svc_c.shards[0], dist).phi
    mon_c = ContentionMonitor(phi_c, sigma_threshold=3.0)
    hub_c = TelemetryHub(metrics=True, contention=mon_c, check_every=1)
    svc_c.attach_telemetry(hub_c)
    run_loadgen(
        svc_c, hot_dist, requests_c, discipline="open", rate=512.0,
        seed=seed + 7, expected_keys=keys,
    )
    detected_c = mon_c.first_alarm_check
    top = max(mon_c.alarms, key=lambda a: a.z) if mon_c.alarms else None
    rows.append(
        {
            "part": "C:hot-cell",
            "hot_key": hot_key,
            "checks": mon_c.checks,
            "alarm_batch": detected_c if detected_c is not None else "never",
            "budget": DETECTION_BUDGET_BATCHES,
            "alarms": len(mon_c.alarms),
            "top_z": round(top.z, 1) if top else 0.0,
            "top_cell": top.cell if top else "-",
        }
    )

    # -- Part D: healthy round-robin is quiet; a stuck router alarms -------------
    # Round-robin assigns whole batches, so per-replica loads move in
    # clusters of roughly one batch's probe cost (~16 requests x ~3.5
    # probes); the balance monitor's cluster correction inflates the
    # per-probe multinomial variance accordingly, and min_total rises so
    # a check only fires once enough clusters have landed.
    requests_d = 2000 if fast else 4000
    balance_kwargs = dict(
        sigma_threshold=3.0, cluster=64.0, min_total=1024
    )
    svc_h = _build(
        keys, N, seed + 8, replicas=replicas, router="round-robin"
    )
    bal_h = ReplicaBalanceMonitor(replicas, **balance_kwargs)
    hub_h = TelemetryHub(metrics=False, balance=bal_h, check_every=1)
    svc_h.attach_telemetry(hub_h)
    run_loadgen(
        svc_h, dist, requests_d, discipline="open", rate=64.0,
        seed=seed + 9, expected_keys=keys,
    )
    svc_s = _build(
        keys, N, seed + 8, replicas=replicas, router="round-robin"
    )
    for r in range(1, replicas):
        svc_s.routers[0].mark_down(r)  # the stuck-router injection
    bal_s = ReplicaBalanceMonitor(replicas, **balance_kwargs)
    hub_s = TelemetryHub(metrics=False, balance=bal_s, check_every=1)
    svc_s.attach_telemetry(hub_s)
    run_loadgen(
        svc_s, dist, requests_d, discipline="open", rate=64.0,
        seed=seed + 9, expected_keys=keys,
    )
    detected_d = bal_s.first_alarm_check
    rows.append(
        {
            "part": "D:router",
            "healthy_checks": bal_h.checks,
            "healthy_alarms": len(bal_h.alarms),
            "stuck_alarm_check": (
                detected_d if detected_d is not None else "never"
            ),
            "stuck_replica": bal_s.alarms[0].replica if bal_s.alarms else "-",
            "stuck_z": round(bal_s.alarms[0].z, 1) if bal_s.alarms else 0.0,
        }
    )

    detected_ok = (
        detected_c is not None and detected_c <= DETECTION_BUDGET_BATCHES
    )
    return ExperimentResult(
        experiment_id="E20",
        title="Telemetry: zero-perturbation observation and live "
        "contention monitoring against exact Phi_t",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"Part A: with metrics, tracing ({spans} spans), and bus "
            f"collection all enabled, probe accounting is "
            f"{'byte-identical' if identical else 'DIFFERENT'} to the "
            f"bare service over {rep_on.completed} requests. Part B: "
            f"{mon_b.checks} per-batch checks of {mon_b.cells_tested} "
            f"cells against exact Binomial(Q, Phi_t) raised "
            f"{len(mon_b.alarms)} false alarms. Part C: a 50% hot key "
            f"tripped the corrected 3-sigma threshold at batch "
            f"{detected_c} (budget {DETECTION_BUDGET_BATCHES}; "
            f"{'holds' if detected_ok else 'FAILS'}). Part D: healthy "
            f"round-robin stayed quiet over {bal_h.checks} checks while "
            f"the stuck router alarmed at check {detected_d}."
        ),
        notes=(
            "The monitor's prediction is always the exact Phi_t of the "
            "*uniform* workload, so parts C and D detect anomalies the "
            "prediction knows nothing about. Cells are tested once "
            "their expected count reaches 10 (normal-approximation "
            "gate), against a max-of-Gaussians-corrected threshold "
            "sigma + sqrt(2 ln m) over the m tested cells."
        ),
    )
