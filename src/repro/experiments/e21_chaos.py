"""E21 — chaos steady-state: the serve stack heals itself correctly.

A healing-enabled service (5 replicas, random routing, verified
dispatch) is driven through a seeded chaos schedule — silent bit flips
on one replica, stuck-at cells on another, a full crash of a third,
and a hot-key contention spike — under open-loop load.  The claims:

1. **Zero wrong answers.**  Verified dispatch (a witness replica
   re-answers every routed group, disagreements settled by
   cross-replica majority vote) and the canary re-admission gate mean
   no completed request ever carries a wrong answer, through every
   fault.
2. **No quarantine leaks.**  Once a replica's health machine leaves
   the serving states, no routed dispatch reaches it (the circuit
   breaker and the machine agree); only probe-budgeted canary queries
   — charged to the repair counter, never the query counter — touch
   it before re-admission.
3. **Every corruption is repaired.**  After healing quiesces, every
   replica re-admitted to rotation holds *exactly* the originally
   built table bytes (bit flips scrubbed, the crashed replica rebuilt
   from surviving majorities); the stuck-at replica is diagnosed
   incorrigible and permanently quarantined.
4. **Contention stays enveloped.**  Per-cell query-path probe counts
   inside windows where the live set is constant match the
   Binomial(Q, Φ_t) law at the *surviving* replica count: marginal
   ``2/|live|`` per live replica (the factor 2 is verified dispatch),
   **exactly zero** on quarantined replicas' cells — the paper's
   Θ(1/R) replication price, degrading gracefully to Θ(1/R′) and
   restored by healing.
5. **Bounded recovery.**  Both healable faults (the corrupted and the
   crashed replica) complete quarantine → repair → canary → healthy
   within the run, with recorded MTTR.

Everything — fault times, damaged cells, workload, healing RNG — is a
deterministic function of ``seed``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.contention import exact_contention
from repro.distributions import MixtureDistribution, PointMass
from repro.experiments.common import make_instance, uniform_distribution
from repro.faults import FaultConfig
from repro.io.results import ExperimentResult
from repro.serve import (
    ChaosEvent,
    ChaosSchedule,
    HealthConfig,
    build_service,
    run_chaos,
)
from repro.serve.chaos import require_armed
from repro.telemetry import TelemetryHub
from repro.utils.rng import as_generator

CLAIM = (
    "Under a seeded chaos schedule of crashes, bit flips, stuck-at "
    "cells, and contention spikes, the self-healing serve stack serves "
    "zero wrong answers, routes zero queries to quarantined replicas, "
    "repairs every corruption (rebuilding the crashed replica from "
    "surviving majorities), and keeps per-cell probe loads inside the "
    "exact Binomial(Q, Phi_t) envelope at the surviving replica count, "
    "with bounded recovery time."
)

#: One-sided z allowance above the max-of-Gaussians correction.
SIGMA = 4.0


def _window_check(d, phi_total, snap_a, snap_b, label):
    """Check one window's per-cell counts against the live-set envelope.

    ``phi_total`` is the exact per-cell total contention of the
    replicated structure under uniform-over-R routing (the 1/R marginal
    folded in).  Inside the window the router is uniform over the
    ``live`` set L with verified dispatch, so a live replica's cell is
    probed per query with probability ``phi * R * 2/|L|`` and a
    quarantined replica's cell with probability exactly 0.
    """
    live_a = set(snap_a["live"][0])
    live_b = set(snap_b["live"][0])
    queries = snap_b["completed"] - snap_a["completed"]
    counts = snap_b["cell_counts"] - snap_a["cell_counts"]
    row = {
        "part": label,
        "queries": int(queries),
        "live": ",".join(str(r) for r in sorted(live_a)),
        "live_stable": live_a == live_b,
    }
    if live_a != live_b or queries <= 0:
        row.update(tested=0, max_z=float("nan"), threshold=float("nan"),
                   dead_probes=-1, ok=False)
        return row
    block = d.inner_rows * d.table.s
    p = np.zeros_like(phi_total)
    factor = d.replicas * 2.0 / len(live_a)
    for r in sorted(live_a):
        p[r * block:(r + 1) * block] = (
            phi_total[r * block:(r + 1) * block] * factor
        )
    dead = np.ones(p.size, dtype=bool)
    for r in sorted(live_a):
        dead[r * block:(r + 1) * block] = False
    dead_probes = int(counts[dead].sum())
    expected = queries * p
    testable = expected >= 10.0
    tested = int(np.count_nonzero(testable))
    if tested == 0:
        row.update(tested=0, max_z=0.0, threshold=float("nan"),
                   dead_probes=dead_probes, ok=dead_probes == 0)
        return row
    threshold = SIGMA + math.sqrt(2.0 * math.log(tested))
    sd = np.sqrt(expected * np.clip(1.0 - p, 0.1, 1.0))
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(testable, (counts - expected) / sd, 0.0)
    max_z = float(z.max())
    row.update(
        tested=tested,
        max_z=round(max_z, 2),
        threshold=round(threshold, 2),
        dead_probes=dead_probes,
        ok=bool(max_z <= threshold and dead_probes == 0),
    )
    return row


def _window_quiet(manager, start, end):
    """No health transition fell strictly inside the window."""
    for machine in manager.machines.values():
        for time, _, _, _ in machine.transitions:
            if start < time < end:
                return False
    return True


def _hot_cells(service, dist, count, rng):
    """Inner flat cells with the highest exact contention (detectable)."""
    d = service.shards[0]
    phi_total = exact_contention(d, dist).phi.sum(axis=0)
    block = d.inner_rows * d.table.s
    inner = phi_total[:block]  # replica blocks are identical by symmetry
    order = np.argsort(inner)[::-1]
    top = order[: max(count * 4, count)]
    picks = rng.permutation(top)[:count]
    return np.sort(picks.astype(np.int64)), phi_total


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    n = 96 if fast else 160
    replicas = 5
    requests = 4000 if fast else 9000
    rate = 64.0
    horizon = requests / rate
    keys, N = make_instance(n, seed)
    # Skewed workload: four hot member keys carry 5% of the mass each
    # on top of a uniform base.  The skew concentrates contention so
    # hot cells clear the envelope's expected>=10 testability bar at
    # this scale, and makes corruption query-visible fast.
    base = uniform_distribution(keys, N, 0.5)
    hot_keys = [int(k) for k in keys[:4]]
    dist = MixtureDistribution(
        [PointMass(N, k) for k in hot_keys] + [base],
        [0.05] * 4 + [0.8],
    )
    rng = as_generator(seed + 3)

    service = build_service(
        keys, N, num_shards=1, replicas=replicas, router="random",
        max_batch=32, max_delay=0.25, capacity=1024,
        faults=FaultConfig(armed=True), seed=seed + 1,
    )
    require_armed(service)
    service.attach_telemetry(TelemetryHub(metrics=True))
    # One background-scrub row per tick: slow enough that query-visible
    # corruption is detected and quarantined before the scrubber can
    # silently repair it (the quarantine -> scrub -> canary path is the
    # one under test); rebuild in small chunks gives a measurable MTTR.
    manager = service.enable_healing(
        config=HealthConfig(scrub_rows_per_chunk=1, rebuild_rows_per_chunk=4),
        seed=seed + 2,
    )
    d = service.shards[0]
    reference = np.array(d.inner.table._cells, copy=True)

    # Bit flips hit *every* cell of replica 1's block, so the first
    # verified dispatch touching the replica detects the corruption;
    # stuck-at damage lands on high-contention cells.
    block = d.inner_rows * d.table.s
    flip_cells = np.arange(block, dtype=np.int64)
    flip_masks = rng.integers(1, 1 << 63, size=flip_cells.size, dtype=np.uint64)
    _, phi_total = _hot_cells(service, dist, 4, rng)
    stick_cells = _hot_cells(service, dist, 2, rng)[0]
    stick_values = rng.integers(0, 1 << 63, size=stick_cells.size, dtype=np.uint64)
    T = horizon
    schedule = ChaosSchedule(
        events=[
            ChaosEvent(
                time=0.22 * T, kind="corrupt", replica=1,
                cells=tuple(int(c) for c in flip_cells),
                masks=tuple(int(m) for m in flip_masks),
            ),
            ChaosEvent(
                time=0.28 * T, kind="stick", replica=2,
                cells=tuple(int(c) for c in stick_cells),
                values=tuple(int(v) for v in stick_values),
            ),
            ChaosEvent(time=0.50 * T, kind="crash", replica=3),
            ChaosEvent(time=0.58 * T, kind="spike-start"),
            ChaosEvent(time=0.66 * T, kind="spike-end"),
        ],
        horizon=T,
    )
    spike_dist = MixtureDistribution(
        [PointMass(N, int(keys[0])), dist], [0.5, 0.5]
    )
    marks = (
        0.02 * T, 0.20 * T,  # window A: all replicas healthy
        0.74 * T, 0.86 * T,  # window B: reduced live set, post-heal
        0.87 * T, 0.98 * T,  # window C: steady state at reduced R
    )
    report = run_chaos(
        service, dist, schedule, requests, rate, seed=seed + 4,
        expected_keys=keys, spike_dist=spike_dist,
        high_priority_fraction=0.25, marks=marks,
    )

    rows: list[dict] = []
    rows.append({
        "part": "run",
        "requested": report.requested,
        "completed": report.completed,
        "shed": report.shed,
        "degraded_shed": report.degraded_shed,
        "wrong_answers": report.wrong_answers,
        "events": report.events_applied,
        "heal_ticks": report.heal_ticks,
        "violations": manager.violations,
    })

    # -- healing outcome ---------------------------------------------------------
    states = report.final_states
    stuck_quarantined = (
        states.get("0/2") == "quarantined"
        and manager.machines[(0, 2)].incorrigible
    )
    healed = [r for r in (1, 3) if states.get(f"0/{r}") == "healthy"]
    repaired_ok = all(
        np.array_equal(
            d.table._cells[r * d.inner_rows:(r + 1) * d.inner_rows],
            reference,
        )
        for r in range(replicas)
        if states.get(f"0/{r}") == "healthy"
    )
    mttr = report.mttr
    rows.append({
        "part": "healing",
        "states": " ".join(f"{k}={v}" for k, v in sorted(states.items())),
        "stuck_replica_quarantined": stuck_quarantined,
        "healed_replicas": ",".join(str(r) for r in healed),
        "repaired_byte_exact": repaired_ok,
        "corrupt_replica_quarantined": any(
            target == "quarantined"
            for _, _, target, _ in manager.machines[(0, 1)].transitions
        ),
        "recoveries": len(mttr),
        "mttr_max": round(max(mttr), 2) if mttr else 0.0,
        "cells_repaired": manager.stats.cells_repaired,
        "stuck_cells": manager.stats.stuck_cells,
        "rows_rebuilt": manager.stats.rows_rebuilt,
        "canary_queries": manager.stats.canary_queries,
        "repair_probes": manager.stats.repair_probes,
    })

    # -- envelope windows --------------------------------------------------------
    snaps = report.snapshots
    windows = [
        ("A:healthy-R5", snaps[0], snaps[1]),
        ("B:reduced-R", snaps[2], snaps[3]),
        ("C:steady-state", snaps[4], snaps[5]),
    ]
    window_rows = []
    for label, a, b in windows:
        row = _window_check(d, phi_total, a, b, label)
        row["quiet"] = _window_quiet(manager, a["time"], b["time"])
        window_rows.append(row)
        rows.append(row)

    envelope_ok = all(r["ok"] and r["quiet"] for r in window_rows)
    reduced = window_rows[1]["live"].count(",") + 1 if window_rows[1]["live"] else 0
    mttr_ok = len(mttr) >= 2 and max(mttr) <= report.duration
    # The corrupted replica must have travelled the full quarantine ->
    # repair -> canary arc (not been silently patched by the scrubber).
    corrupt_arc = any(
        target == "quarantined"
        for _, _, target, _ in manager.machines[(0, 1)].transitions
    )
    passed = (
        report.wrong_answers == 0
        and manager.violations == 0
        and stuck_quarantined
        and sorted(healed) == [1, 3]
        and corrupt_arc
        and repaired_ok
        and envelope_ok
        and mttr_ok
    )
    return ExperimentResult(
        experiment_id="E21",
        title="Chaos steady-state: self-healing under crashes, "
        "corruption, stuck cells, and contention spikes",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"{report.completed} of {report.requested} requests "
            f"completed with {report.wrong_answers} wrong answers and "
            f"{manager.violations} dispatches to quarantined replicas. "
            f"The bit-flipped replica and the crashed replica both "
            f"healed (quarantine -> repair -> canary -> healthy, "
            f"{len(mttr)} recoveries, max MTTR "
            f"{round(max(mttr), 2) if mttr else 0.0} time units); "
            f"re-admitted replicas hold byte-exact rebuilt tables "
            f"({'yes' if repaired_ok else 'NO'}). The stuck-at replica "
            f"was diagnosed incorrigible and stays quarantined "
            f"({'yes' if stuck_quarantined else 'NO'}). Per-cell loads "
            f"stayed inside the Binomial(Q, Phi_t) envelope in all "
            f"three constant-live-set windows (healthy R=5, then "
            f"R'={reduced}), with zero probes on quarantined blocks. "
            f"Overall: {'PASS' if passed else 'FAIL'}."
        ),
        notes=(
            "Verified dispatch doubles the per-replica marginal to "
            "2/|live| (primary + witness), which the envelope accounts "
            "for; canary, scrub, and rebuild probes are charged to the "
            "per-shard repair counter and never appear in the "
            "query-path counts the envelope is stated over. Bit flips "
            "cover the victim's whole block so detection is "
            "query-visible on the first verified dispatch touching it; "
            "stuck-at damage lands on high-contention cells and is "
            "diagnosed by scrub-repair re-divergence. The background "
            "scrubber bounds detection for cold damage at one full "
            "pass either way."
        ),
    )
