"""E22 — multicore: real processes, shared memory, the claim on hardware.

Every prior experiment exercises *simulated* concurrency inside one
Python process.  E22 drives the :mod:`repro.parallel` fabric — shard
tables in shared memory, worker processes pulling from SPSC rings —
and asks three questions the paper's motivating claim turns on:

- **Part A (scaling)** — closed-loop bulk throughput through 1..W
  worker processes (boot excluded, serve time only).  On a multi-core
  host the fabric should scale ~linearly in workers; the measured
  ``cpus`` are recorded so single-core CI can interpret (and gate) the
  ratio honestly.
- **Part B (hardware Binomial)** — a uniform workload with the paper's
  uniform random replica routing, served by *real concurrent
  processes*, must still put ``Binomial(Q, Φ_t(j))`` probes on every
  cell: per step, the hottest cell's measured count (from the merged
  shared-memory counters) must sit within 3σ of the exact prediction —
  the low-contention guarantee finally observed under genuine
  parallelism, not simulation.
- **Part C (equivalence)** — the same seed and workload through the
  inline engine (``procs=0``) and the process engine (``procs=2`` and
  ``procs=4``) must produce identical answers and *byte-identical*
  merged :meth:`~repro.cellprobe.counters.ProbeCounter.digest` — real
  parallelism changes nothing about the accounting.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.contention import exact_contention
from repro.dictionaries.replicated import ReplicatedDictionary
from repro.experiments.common import (
    build_scheme,
    make_instance,
    uniform_distribution,
)
from repro.io.results import ExperimentResult
from repro.parallel import build_parallel_service

CLAIM = (
    "Replicated low-contention dictionaries keep per-cell loads at "
    "Binomial(Q, Phi_t) under genuinely concurrent access: worker "
    "processes on real cores, sharing the table through shared memory, "
    "observe the same per-cell distribution — and the same exact probe "
    "accounting — as a single in-process service, while throughput "
    "scales with the number of workers."
)


def _query_stream(keys, N, count, seed) -> np.ndarray:
    """Half members / half uniform non-member candidates, shuffled."""
    rng = np.random.default_rng(seed)
    members = rng.choice(keys, size=count // 2, replace=True)
    others = rng.integers(0, N, size=count - count // 2)
    qs = np.concatenate([members, others])
    rng.shuffle(qs)
    return qs.astype(np.int64)


def _throughput(keys, N, qs, procs, seed) -> tuple[float, float]:
    """(queries/s, serve seconds) for one worker count (boot excluded)."""
    svc = build_parallel_service(
        keys, N, procs=procs, num_shards=1, replicas=4,
        router="round-robin", max_batch=64, seed=seed,
    )
    try:
        svc.query_batch(qs[: min(256, qs.size)])  # warm the rings
        start = time.perf_counter()
        svc.query_batch(qs)
        elapsed = time.perf_counter() - start
    finally:
        svc.close()
    return qs.size / elapsed, elapsed


def _binomial_rows(
    phi: np.ndarray, counts: np.ndarray, completed: int, s: int
) -> tuple[list[dict], float]:
    """Hottest-cell z per step: measured (merged shm) vs Binomial."""
    rows = []
    worst = 0.0
    for t in range(phi.shape[0]):
        j = int(np.argmax(phi[t]))
        p = float(phi[t, j])
        if p <= 0.0:
            continue
        measured = int(counts[t, j]) if t < counts.shape[0] else 0
        expect = completed * p
        sigma = float(np.sqrt(completed * p * (1.0 - p)))
        z = abs(measured - expect) / sigma if sigma > 0 else 0.0
        worst = max(worst, z)
        rows.append(
            {
                "part": "B:binomial",
                "step": t,
                "cell": f"r{j // s}c{j % s}",
                "phi_t": round(p, 6),
                "expected": round(expect, 1),
                "measured": measured,
                "z": round(z, 2),
            }
        )
    return rows, worst


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    n = 96 if fast else 192
    queries = 2000 if fast else 20000
    worker_ladder = (1, 2) if fast else (1, 2, 4)
    cpus = os.cpu_count() or 1
    keys, N = make_instance(n, seed)
    qs = _query_stream(keys, N, queries, seed + 1)
    rows: list[dict] = []

    # -- Part A: throughput scaling over real worker processes -------------------
    qps: dict[int, float] = {}
    for procs in worker_ladder:
        rate, elapsed = _throughput(keys, N, qs, procs, seed + 2)
        qps[procs] = rate
        rows.append(
            {
                "part": "A:scaling",
                "workers": procs,
                "cpus": cpus,
                "queries": int(qs.size),
                "seconds": round(elapsed, 4),
                "qps": int(rate),
                "speedup_vs_1": round(rate / qps[worker_ladder[0]], 3),
            }
        )
    scaling = qps[2] / qps[1] if 2 in qps else 1.0

    # -- Part B: per-cell loads on hardware vs Binomial(Q, Phi_t) ----------------
    inner = build_scheme("low-contention", keys, N, seed + 3)
    dist = uniform_distribution(keys, N, 0.5)
    replicas = 3
    phi = exact_contention(ReplicatedDictionary(inner, replicas), dist).phi
    svc_b = build_parallel_service(
        keys, N, procs=2, num_shards=1, replicas=replicas,
        scheme="low-contention", router="random", max_batch=32,
        seed=seed + 3,
    )
    try:
        qs_b = dist.sample(np.random.default_rng(seed + 4), queries)
        svc_b.query_batch(np.asarray(qs_b, dtype=np.int64))
        counts = svc_b.merged_counter(0).counts_per_step()
        s = svc_b.shards[0].table.s
    finally:
        svc_b.close()
    phi_rows, worst_z = _binomial_rows(phi, counts, queries, s)
    rows.extend(phi_rows)

    # -- Part C: engine equivalence (answers + counter digests) ------------------
    digests: dict[int, str] = {}
    answers: dict[int, np.ndarray] = {}
    for procs in (0, 2, 4):
        svc_c = build_parallel_service(
            keys, N, procs=procs, num_shards=2, replicas=replicas,
            router="least-loaded", max_batch=16, seed=seed + 5,
        )
        try:
            answers[procs] = svc_c.query_batch(qs[: queries // 2])
            digests[procs] = svc_c.merged_counter(0).digest()
        finally:
            svc_c.close()
    answers_equal = all(
        np.array_equal(answers[0], answers[p]) for p in (2, 4)
    )
    digests_equal = digests[0] == digests[2] == digests[4]
    rows.append(
        {
            "part": "C:equivalence",
            "engines": "inline vs procs=2 vs procs=4",
            "answers_equal": answers_equal,
            "digests_equal": digests_equal,
            "digest": digests[0][:16],
        }
    )

    return ExperimentResult(
        experiment_id="E22",
        title="Multicore fabric: hardware Binomial loads, scaling, "
        "and byte-identical accounting",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"Part A: on {cpus} CPU(s), 2 workers serve "
            f"{scaling:.2f}x the throughput of 1 "
            f"({int(qps.get(2, 0))} vs {int(qps[1])} q/s"
            f"{'' if cpus >= 2 else '; single-core host, no real scaling expected'}"
            f"). Part B: across {len(phi_rows)} steps, the hottest "
            f"cell's load measured from the merged shared-memory "
            f"counters of 2 concurrent worker processes sits within "
            f"{worst_z:.2f} sigma of the exact Binomial(Q, Phi_t) "
            f"prediction (threshold 3). Part C: inline and process "
            f"engines (2 and 4 workers) agree — answers "
            f"{'identical' if answers_equal else 'DIFFER'}, merged "
            f"counter digests "
            f"{'byte-identical' if digests_equal else 'DIFFER'}."
        ),
        notes=(
            "Throughput excludes worker boot and measures the bulk "
            "closed-loop surface (query_batch). Part B's routing is "
            "per-query uniform over replicas, so per-cell counts are "
            "exactly Binomial; only each step's hottest cell is tested "
            "(no multiple-comparisons inflation). The scaling ratio is "
            "hardware-dependent: CI gates it only when cpus >= 2 "
            "(bench_e22_multicore.py --gate)."
        ),
    )
