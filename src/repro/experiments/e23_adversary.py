"""E23 — adversary: evolutionary search beats the hand-tuned chaos.

The chaos experiment (E21) replays *fixed* seeded schedules — the
stack has only faced adversaries we wrote down in advance.  E23 turns
the adversary adaptive (:mod:`repro.adversary`) and asks four
questions:

- **Part A (search)** — a seeded (μ+λ) evolution over attack genomes
  (workload shape + fault program, fabric events included) on three
  independent seeds.  The evolved best must score **strictly higher
  fitness** than :meth:`~repro.serve.chaos.ChaosSchedule.generate`'s
  hand-tuned baseline re-encoded into the same genome space, and the
  fitness trajectory is recorded per generation.
- **Part B (verification)** — each best genome re-evaluates to a
  **byte-identical replay digest** (the E22 digest machinery over
  metrics + probe-counter digests), and its replay under the healing
  service yields **0 wrong answers and 0 quarantine violations** —
  however hostile evolution got, verified dispatch held the line.
- **Part C (fabric red team)** — crafted fabric genomes against a real
  worker pool: a kill-only genome must serve every answer correctly
  through SIGKILL failover, and a segment-corruption genome must leave
  a CRC-detectable trail (``table_crc_ok`` goes false — silent page
  damage cannot hide from the checksum).
- **Part D (regression fixtures)** — every committed genome under
  ``tests/fixtures/genomes/`` replays byte-identically with zero
  wrong answers and zero violations: past finds stay found.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.adversary import (
    EvalConfig,
    FaultGene,
    Genome,
    evaluate,
    fixture_paths,
    replay_fixture,
    search,
)
from repro.errors import FabricError
from repro.io.results import ExperimentResult
from repro.utils.rng import as_generator

CLAIM = (
    "An evolutionary adversary — seeded mutation and crossover over "
    "workload + fault-program genomes, selected for wrong answers, "
    "quarantine violations, shed traffic, tail latency, and "
    "Binomial(Q, Phi_t) envelope exceedance — finds strictly harder "
    "attacks than the hand-tuned chaos schedule, yet the self-healing "
    "stack still serves zero wrong answers and zero quarantine "
    "violations under every genome found, and every find replays "
    "byte-identically from its JSON fixture."
)

#: Search seeds (three independent runs, the acceptance criterion).
SEEDS = (0, 1, 2)


def _fixture_dir() -> pathlib.Path:
    """The committed-genome directory (repo checkout only)."""
    return (
        pathlib.Path(__file__).resolve().parents[3]
        / "tests" / "fixtures" / "genomes"
    )


def _fabric_red_team(config: EvalConfig, seed: int) -> list:
    """Part C: crafted kill-only and corrupt-segment genomes, evaluated.

    Runs against a real 2-process pool.  The kill genome must keep
    every answer correct through SIGKILL failover; the corruption
    genome must break the table CRC (detectability), whether or not
    any served answer flipped.
    """
    rng = as_generator(seed + 17)
    kill_genome = Genome(events=(
        FaultGene(frac=0.3, kind="kill-worker", worker=0),
        FaultGene(frac=0.6, kind="kill-worker", worker=1),
    ))
    corrupt_genome = Genome(events=tuple(
        FaultGene(
            frac=0.4, kind="corrupt-segment",
            cells=tuple(int(c) for c in rng.integers(0, 4096, size=4)),
            masks=tuple(int(m) for m in rng.integers(
                1, 1 << 63, size=4, dtype=np.uint64
            )),
        )
        for _ in range(2)
    ))
    fabric_config = EvalConfig(
        n=config.n, replicas=config.replicas, requests=config.requests,
        procs=2, fabric_queries=config.fabric_queries,
        fabric_replicas=config.fabric_replicas,
    )
    rows = []
    for label, genome, want_crc_ok in (
        ("kill-only", kill_genome, True),
        ("corrupt-segment", corrupt_genome, False),
    ):
        try:
            result = evaluate(genome, fabric_config, seed)
            metrics = result.metrics
            rows.append({
                "part": "C",
                "attack": label,
                "fabric_wrong": metrics.get("fabric_wrong", -1),
                "fabric_kills": metrics.get("fabric_kills", 0),
                "fabric_corruptions": metrics.get("fabric_corruptions", 0),
                "crc_ok": metrics.get("fabric_crc_ok", None),
                "stalled": metrics.get("fabric_stalled", None),
                "ok": bool(
                    not metrics.get("fabric_stalled", True)
                    and metrics.get("fabric_crc_ok") is want_crc_ok
                    and (label != "kill-only"
                         or metrics.get("fabric_wrong", 1) == 0)
                ),
            })
        except FabricError as exc:  # pragma: no cover - host-dependent
            rows.append({
                "part": "C", "attack": label, "fabric_wrong": -1,
                "fabric_kills": 0, "fabric_corruptions": 0,
                "crc_ok": None, "stalled": True, "ok": False,
                "error": str(exc),
            })
    return rows


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks the search, ``seed`` shifts RNG."""
    config = EvalConfig(n=48 if fast else 64, requests=600 if fast else 1200)
    generations = 3 if fast else 5
    population = 5 if fast else 8
    rows: list[dict] = []
    all_beat = True
    all_verified = True
    for s in SEEDS:
        s = int(s) + int(seed)
        result = search(
            config, seed=s, generations=generations,
            population=population, elites=2,
        )
        for entry in result.history:
            rows.append({
                "part": "A", "seed": s,
                "generation": entry["generation"],
                "best_fitness": entry["best_fitness"],
                "mean_fitness": entry["mean_fitness"],
                "baseline_fitness": round(result.baseline.fitness, 6),
                "beat_baseline": result.beat_baseline,
            })
        all_beat &= result.beat_baseline
        # Part B: byte-identical replay + zero correctness violations.
        replay = evaluate(result.best_genome, config, s)
        digest_match = replay.digest == result.best.digest
        wrong = int(replay.metrics.get("wrong_answers", -1))
        violations = int(replay.metrics.get("violations", -1))
        verified = digest_match and wrong == 0 and violations == 0
        all_verified &= verified
        rows.append({
            "part": "B", "seed": s,
            "best_fitness": round(result.best.fitness, 6),
            "digest_match": digest_match,
            "wrong_answers": wrong,
            "violations": violations,
            "events": len(result.best_genome.events),
            "verified": verified,
        })
    fabric_rows = _fabric_red_team(config, int(seed))
    rows.extend(fabric_rows)
    fabric_ok = all(r["ok"] for r in fabric_rows)
    fixture_rows = []
    for path in fixture_paths(_fixture_dir()):
        verdict = replay_fixture(path)
        fixture_rows.append({
            "part": "D",
            "fixture": verdict["fixture"],
            "fitness": round(verdict["fitness"], 6),
            "digest_match": verdict["digest_match"],
            "no_wrong_answers": verdict["no_wrong_answers"],
            "no_violations": verdict["no_violations"],
            "passed": verdict["passed"],
        })
    rows.extend(fixture_rows)
    fixtures_ok = all(r["passed"] for r in fixture_rows)
    ok = all_beat and all_verified and fabric_ok and fixtures_ok
    return ExperimentResult(
        experiment_id="E23",
        title="Adversarial search: evolution vs the self-healing stack",
        claim=CLAIM,
        rows=rows,
        finding=(
            f"Part A: evolved best strictly beat the hand-tuned baseline "
            f"on {'all' if all_beat else 'NOT all'} {len(SEEDS)} seeds "
            f"({generations} generations, population {population}). "
            f"Part B: every best genome replayed with a byte-identical "
            f"digest and 0 wrong answers / 0 quarantine violations "
            f"under healing: {all_verified}. "
            f"Part C: fabric red team (worker SIGKILL, shm segment "
            f"corruption) behaved as designed: {fabric_ok}. "
            f"Part D: {len(fixture_rows)} committed fixture(s) replayed "
            f"byte-identically with zero correctness violations: "
            f"{fixtures_ok}. Overall: {'PASS' if ok else 'FAIL'}."
        ),
        notes=(
            "Fitness rewards wrong answers and quarantine violations at "
            "1000 apiece, so any nonzero best-genome correctness term "
            "would dominate the tables above; the stack holding both at "
            "zero while still losing ground on shed/latency/quarantine "
            "terms is exactly the designed outcome. The search runs "
            "with procs=0 (healing target only) for speed; Part C "
            "exercises the real worker pool explicitly. The mid-batch "
            "quarantine re-route in ShardedDictionaryService._run_group "
            "was found by this harness: assignments computed at flush "
            "time could dispatch into a replica quarantined moments "
            "earlier by a witness verifying a sibling group."
        ),
    )
