"""E24 — dynamic serving: live updates under contention discipline.

ROADMAP item 3 made real: the Bentley–Saxe dynamization
(:mod:`repro.dynamic`) becomes a first-class citizen of the serve
stack — replicated, epoch-versioned, chaos-tested — without ever
muddying the probe accounting the paper's guarantees are stated over.
Four questions:

- **Part A (cost curves)** — amortized rebuild cells per update over a
  seeded mixed stream, against the dynamic cell-probe reference
  Ω(lg n) (Pătrașcu–Demaine): rebuild-based dynamization pays
  ``Θ(lg n)`` *rebuilds'* worth of cell writes, so the measured
  amortized cost must sit above ``lg2 n`` and grow like it.  Plus the
  ``min_level_width`` trade-off: padded levels restore the O(1/n)
  query-contention floor at a measured space multiplier.
- **Part B (serving under chaos)** — the mutable sharded service
  (``serve --dynamic``): micro-batched writes, bounded update backlog
  (typed shed), read-your-writes, majority-voted reads — driven by an
  interleaved update/read stream while a replica crashes, another
  suffers silent cell corruption, and the crashed one is rebuilt by
  log replay.  **Zero wrong answers**, and update/rebuild/epoch
  telemetry events flow.
- **Part C (epoch pins)** — a reader pins an epoch, the structure
  churns on; the pinned multi-key read must match the *pinned* ground
  truth exactly (linearizability), retired levels must be retained
  while the pin lives, and reclaimed once it releases.
- **Part D (accounting isolation)** — the same seeded update+query
  stream with rebuild verification on vs off: query-counter digests
  byte-identical, verification probes land only on rebuild counters.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic import (
    DynamicLowContentionDictionary,
    ReplicatedDynamicDictionary,
)
from repro.errors import OverloadError, UpdateBacklogError
from repro.io.results import ExperimentResult
from repro.serve import build_dynamic_service
from repro.telemetry.events import (
    BUS,
    EpochEvent,
    RebuildEvent,
    UpdateEvent,
)
from repro.utils.rng import as_generator

CLAIM = (
    "Paper conclusion (future work): 'study the contention caused by "
    "the updates in dynamic data structures.'  Serving extension — a "
    "replicated, epoch-versioned dynamic dictionary serves reads while "
    "mutating: amortized rebuild cost tracks the Omega(lg n) dynamic "
    "cell-probe reference, majority-voted reads survive crash + silent "
    "corruption chaos with zero wrong answers, epoch-pinned multi-key "
    "reads are linearizable, and all rebuild probe work lands on "
    "separate rebuild counters (query-counter digests byte-identical "
    "to an unverified replay)."
)

UNIVERSE = 1 << 14


def _mixed_stream(d, ops: int, key_range: int, rng) -> None:
    """Apply a seeded 75/25 insert/delete stream to ``d``."""
    for _ in range(ops):
        k = int(rng.integers(0, key_range))
        if rng.random() < 0.75:
            d.insert(k)
        else:
            d.delete(k)


def _part_a_cost_curves(fast: bool, seed: int) -> tuple[list[dict], bool]:
    """Amortized rebuild cells/update vs lg2(n); min_level_width ladder."""
    ladder = (64, 128) if fast else (128, 256, 512)
    rows = []
    ok = True
    for target_n in ladder:
        rng = as_generator(seed)
        d = DynamicLowContentionDictionary(
            UNIVERSE, rng=as_generator(seed + 1)
        )
        _mixed_stream(d, 6 * target_n, 2 * target_n, rng)
        n = max(d.live_count, 2)
        amortized = d.account.amortized_write_cost()
        reference = float(np.log2(n))
        ratio = amortized / reference
        # The lower bound says we cannot beat Omega(lg n) cell work per
        # update; rebuild-based dynamization writes whole tables, so the
        # measured cost must exceed the reference (and a runaway ratio
        # would flag a sizing regression).
        ok = ok and amortized > reference and ratio < 500.0
        rows.append({
            "part": "A:cost",
            "live n": n,
            "updates": d.account.updates,
            "rebuilds": len(d.account.rebuilds),
            "amortized cells/update": round(amortized, 1),
            "lg2(n) reference": round(reference, 1),
            "ratio": round(ratio, 1),
        })
    # min_level_width ladder on the largest instance: padded levels pay
    # space for the restored 1/n contention floor.
    target_n = ladder[-1]
    queries = 600 if fast else 2000
    base_space = None
    for label, width_of in (("pure", lambda n: 0), ("pad 4n", lambda n: 4 * n)):
        rng = as_generator(seed)
        probe = DynamicLowContentionDictionary(
            UNIVERSE, rng=as_generator(seed + 1)
        )
        _mixed_stream(probe, 6 * target_n, 2 * target_n, rng)
        width = width_of(probe.live_count)
        rng = as_generator(seed)
        d = DynamicLowContentionDictionary(
            UNIVERSE, rng=as_generator(seed + 1), min_level_width=width
        )
        _mixed_stream(d, 6 * target_n, 2 * target_n, rng)
        from repro.distributions import UniformPositiveNegative

        dist = UniformPositiveNegative(UNIVERSE, d.live_keys(), 0.5)
        res = d.empirical_query_contention(
            dist, queries, as_generator(seed + 7)
        )
        smallest_floor = max(
            row["floor_1_over_s"] for row in res["per_level"]
        )
        if base_space is None:
            base_space = d.space_words
        rows.append({
            "part": "A:width",
            "level width": label,
            "live n": d.live_count,
            "phi_max * n": round(
                res["global_max_contention"] * d.live_count, 2
            ),
            "smallest-level floor * n": round(
                smallest_floor * d.live_count, 2
            ),
            "space_words": d.space_words,
            "space multiplier": round(d.space_words / base_space, 2),
        })
        # Contention can never undercut the smallest level's 1/s floor.
        ok = ok and res["global_max_contention"] >= smallest_floor * 0.999
    return rows, ok


def _part_b_chaos_serving(fast: bool, seed: int) -> tuple[list[dict], bool]:
    """Interleaved updates + reads + crash/corrupt/rebuild chaos."""
    requests = 240 if fast else 500
    svc = build_dynamic_service(
        UNIVERSE,
        num_shards=2,
        replicas=5,
        seed=seed,
        armed=True,
        max_batch=8,
        max_delay=2.0,
        update_batch=4,
        update_delay=2.0,
        update_capacity=64,
        capacity=256,
    )
    rng = as_generator(seed + 11)
    ref: set[int] = set()
    wrong = checked = shed_updates = shed_reads = 0
    corrupted = 0
    with BUS.capture(UpdateEvent, RebuildEvent, EpochEvent) as events:
        for i in range(requests):
            now = float(i)
            if rng.random() < 0.35:
                k = int(rng.integers(0, UNIVERSE))
                ins = rng.random() < 0.7
                try:
                    svc.submit_update(k, ins, now)
                    (ref.add if ins else ref.discard)(k)
                except UpdateBacklogError:
                    shed_updates += 1
            ticket = None
            try:
                ticket = svc.submit(int(rng.integers(0, UNIVERSE)), now)
            except OverloadError:
                shed_reads += 1
            svc.advance(now)
            if ticket is not None and ticket.done:
                checked += 1
                wrong += int(ticket.answer != (ticket.key in ref))
            if i == requests // 4:
                svc.crash_replica(0, 1)
            if i == requests // 3:
                # Silent corruption: flip bits in every non-empty level
                # of shard 1's replica 0; the majority vote must absorb it.
                levels = svc.shards[1]._replicas[0]._levels.nonempty_levels
                for lv in levels:
                    svc.corrupt_cell(1, 0, lv.index, 0, 0xFFFF)
                    corrupted += 1
            if i == requests // 2:
                svc.rebuild_replica(0, 1)
        svc.drain(float(requests))
        sample = rng.integers(0, UNIVERSE, size=256)
        answers, epochs = svc.read_pinned(sample, float(requests) + 1.0)
    truth = np.isin(
        sample,
        np.fromiter(ref, dtype=np.int64, count=len(ref))
        if ref else np.empty(0, dtype=np.int64),
    )
    pinned_wrong = int(np.sum(answers != truth))
    update_events = sum(1 for e in events if isinstance(e, UpdateEvent))
    rebuild_events = sum(1 for e in events if isinstance(e, RebuildEvent))
    epoch_events = sum(1 for e in events if isinstance(e, EpochEvent))
    row = svc.stats_row()
    ok = (
        wrong == 0
        and pinned_wrong == 0
        and checked > 0
        and corrupted > 0
        and row["updates_applied"] > 0
        and update_events == row["update_groups"]
        and epoch_events == row["update_groups"]
        and rebuild_events > 0
    )
    return [{
        "part": "B:chaos",
        "reads": row["completed"],
        "checked": checked,
        "updates": row["updates_applied"],
        "groups": row["update_groups"],
        "epochs": str(svc.epochs_by_shard()),
        "shed upd/read": f"{shed_updates + row['shed_updates']}/{shed_reads}",
        "crash/corrupt/rebuild": f"1/{corrupted}/1",
        "events upd/rebuild/epoch": (
            f"{update_events}/{rebuild_events}/{epoch_events}"
        ),
        "wrong": wrong + pinned_wrong,
    }], ok


def _part_c_epoch_pins(fast: bool, seed: int) -> tuple[list[dict], bool]:
    """Pinned reads are linearizable; reclamation waits for the pin."""
    rep = ReplicatedDynamicDictionary(UNIVERSE, replicas=3, seed=seed)
    rng = as_generator(seed + 3)
    _mixed_stream(rep, 60 if fast else 120, 256, rng)
    pin = rep.pin()
    pinned_truth = np.asarray(pin.snapshot["live_keys"], dtype=np.int64)
    # Churn past the pin: delete pinned keys, insert fresh ones.
    for k in pinned_truth[: len(pinned_truth) // 2]:
        rep.delete(int(k))
    _mixed_stream(rep, 40 if fast else 80, 256, rng)
    retained_while = rep.epochs.retained
    xs = np.unique(np.concatenate([
        pinned_truth, rng.integers(0, 512, size=128)
    ]))
    pinned_answers = rep.query_pinned(pin, xs, as_generator(seed + 4))
    live_answers = rep.query_batch(xs, as_generator(seed + 5))
    pinned_exact = bool(
        np.array_equal(pinned_answers, np.isin(xs, pinned_truth))
    )
    live_exact = bool(
        np.array_equal(live_answers, np.isin(xs, rep.live_keys()))
    )
    diverged = bool(np.any(pinned_answers != live_answers))
    pin.release()
    retained_after = rep.epochs.retained
    ok = (
        pinned_exact
        and live_exact
        and diverged
        and retained_while > 0
        and retained_after < retained_while
    )
    return [{
        "part": "C:pins",
        "pinned epoch": pin.epoch,
        "live epoch": rep.epoch,
        "pinned read exact": pinned_exact,
        "live read exact": live_exact,
        "views diverged": diverged,
        "retained while pinned": retained_while,
        "retained after release": retained_after,
    }], ok


def _part_d_accounting(fast: bool, seed: int) -> tuple[list[dict], bool]:
    """Verified vs unverified replay: query digests byte-identical."""
    ops = 150 if fast else 400
    digests = []
    rebuild_probes = []
    for verify in (True, False):
        rng = as_generator(seed + 21)
        d = DynamicLowContentionDictionary(
            UNIVERSE, rng=as_generator(seed + 22), verify_rebuilds=verify
        )
        _mixed_stream(d, ops, 512, rng)
        xs = rng.integers(0, UNIVERSE, size=600)
        answers = d.query_batch(xs, as_generator(seed + 23))
        assert bool(
            np.array_equal(answers, np.isin(xs, d.live_keys()))
        )
        digests.append(d.query_counter_digest())
        rebuild_probes.append(d.rebuild_probes)
    identical = digests[0] == digests[1]
    ok = identical and rebuild_probes[0] > 0 and rebuild_probes[1] == 0
    return [{
        "part": "D:accounting",
        "query digest identical": identical,
        "digest": digests[0][:16],
        "rebuild probes (verify on)": rebuild_probes[0],
        "rebuild probes (verify off)": rebuild_probes[1],
    }], ok


def run(fast: bool = False, seed: int = 0) -> ExperimentResult:
    """Run the experiment; ``fast`` shrinks ladders, ``seed`` fixes RNG."""
    rows: list[dict] = []
    all_ok = True
    for part in (
        _part_a_cost_curves,
        _part_b_chaos_serving,
        _part_c_epoch_pins,
        _part_d_accounting,
    ):
        part_rows, ok = part(fast, seed)
        rows.extend(part_rows)
        all_ok = all_ok and ok
    rows.append({"part": "gate", "all checks passed": all_ok})
    return ExperimentResult(
        experiment_id="E24",
        title="Dynamic serving: live updates, epochs, chaos (extension)",
        claim=CLAIM,
        rows=rows,
        finding=(
            "Amortized rebuild cost sits a constant-factor band above "
            "the Omega(lg n) dynamic cell-probe reference and padded "
            "levels buy the 1/n contention floor at a measured space "
            "multiplier; the mutable sharded service serves zero wrong "
            "answers through interleaved updates, a replica crash, "
            "silent multi-level corruption, and a log-replay rebuild "
            "(read-your-writes checks included); epoch-pinned "
            "multi-key reads match the pinned ground truth exactly "
            "while the live view diverges, with retired levels held "
            "exactly as long as the pin lives; and rebuild-verification "
            "probes land only on rebuild counters — query-counter "
            "digests are byte-identical to an unverified replay."
            + ("" if all_ok else "  *** GATE FAILED ***")
        ),
    )
