"""E25 — the control plane earns its keep: adaptive beats best static.

ROADMAP item 4 made real: the Section 3 regime (arbitrary query
distributions, the Ω(log log n) contention trade-off) as a *systems*
question.  A static uniform deployment assumes uniform queries; under
Zipf or flash-crowd load the per-shard contention Φ_t concentrates and
moves, so the static config either over-provisions cold ranges or
saturates hot ones.  Five questions:

- **Part A (Zipf)** — an open-loop Zipf workload against the adaptive
  service (controller on, total replica budget equal to the best
  static uniform config) vs every static uniform config: the adaptive
  deployment must beat the *best* static one on p99 latency without
  shedding more, at equal query probe budget per completed request
  (query probes are replica-count-independent; all clone/verify work
  lands on the reconfiguration counter).
- **Part B (flash crowd)** — a three-phase workload (uniform → hotspot
  on one shard's range → uniform): the controller must chase the
  moving hotspot (split it, fund splits by joining cold shards) and
  again beat the best static uniform config end-to-end.
- **Part C (oracle gap)** — per phase of the flash crowd, the gap
  between the adaptive deployment and a static *oracle* tuned per
  phase with hindsight (best uniform config measured on that phase
  alone).  Reported, not gated: the oracle re-provisions instantly
  and pays no adaptation cost, so it lower-bounds what any online
  controller can do.
- **Part D (chaos)** — the controller runs *during* a chaos schedule
  (replica crash + silent corruption) against the self-healing stack:
  zero wrong answers, zero quarantine violations, and structural
  actions on unhealthy shards are refused (skipped), never corrupting.
- **Part E (identity)** — the zero-overhead-when-off contract: a
  service with the controller attached-but-disabled must leave every
  per-shard query-probe-counter digest byte-identical to a service
  that never had a controller; toggling clone verification must change
  no decision and no query-path probe (verification probes land only
  on the reconfiguration counter); and re-running the adaptive
  deployment reproduces its decision trace digest byte-for-byte.
"""

from __future__ import annotations

import json
import hashlib

import numpy as np

from repro.autotune import AutotunePolicy, replay_trace
from repro.errors import DegradedModeError, OverloadError
from repro.experiments.common import make_instance
from repro.io.results import ExperimentResult
from repro.serve.chaos import ChaosSchedule, run_chaos
from repro.serve.service import build_service
from repro.utils.rng import as_generator

CLAIM = (
    "Section 3 regime (arbitrary distributions) as a systems question: "
    "under Zipf and flash-crowd workloads a closed-loop controller that "
    "moves replication to where Phi_t concentrates beats the best "
    "static uniform config on p99 latency without shedding more, at "
    "equal query probe budget; it concedes zero wrong answers under "
    "chaos, its decision traces replay byte-for-byte, and disabled it "
    "is digest-byte-identical to a controller-free service."
)

#: Instance and service geometry (shared by every part).
N_KEYS = 192
NUM_SHARDS = 4
PROBE_TIME = 0.02
MAX_BATCH = 8
MAX_DELAY = 0.25
CAPACITY = 96
RATE = 48.0

#: Uniform replica counts the static sweep tries; the adaptive budget
#: equals the largest static total, making the comparison equal-budget.
STATIC_REPLICAS = (2, 3)
REPLICA_BUDGET = STATIC_REPLICAS[-1] * NUM_SHARDS


def _policy(**overrides) -> AutotunePolicy:
    """The E25 controller policy: structural scaling, fast cadence."""
    base = dict(
        high_load=1.6,
        low_load=0.5,
        # Floor at R=2: a transiently cold shard must stay serviceable
        # when the hotspot moves off it (joining to R=1 is what loses
        # the post-flash uniform phase).
        min_replicas=2,
        # Ceiling at 6 lets the controller concentrate half the budget
        # on one shard during a flash crowd ([2,2,2,6] at budget 12).
        max_replicas=6,
        max_total_replicas=REPLICA_BUDGET,
        # Absolute-pressure band: split a shard whose replica backlog
        # runs >1 virtual second ahead of now even when no shard is
        # relatively hot (uniform saturation), and only join shards
        # drained to <=0.25s.  The cadence is fast relative to the
        # ~4-second flash-crowd phases: the controller must complete
        # several structural moves inside one phase to beat a static
        # config that never pays adaptation lag.
        split_backlog=1.0,
        join_backlog=0.25,
        cooldown=1.5,
        check_every=0.5,
        # Admission tuning off for the latency comparison: shed_high=2
        # is an unreachable shed fraction and the slack is effectively
        # infinite, so only split/join act.
        shed_high=2.0,
        backlog_slack=1e9,
    )
    base.update(overrides)
    return AutotunePolicy(**base)


def _service(keys, universe, replicas, seed, scheme="low-contention"):
    """One service instance with the shared E25 geometry."""
    return build_service(
        keys, universe,
        num_shards=NUM_SHARDS,
        replicas=replicas,
        scheme=scheme,
        max_batch=MAX_BATCH,
        max_delay=MAX_DELAY,
        capacity=CAPACITY,
        probe_time=PROBE_TIME,
        seed=seed,
    )


def _zipf_stream(keys, universe, requests, rng, exponent=1.1):
    """Zipf-over-ranked-keys queries (plus 10% uniform negatives).

    Sorted keys get rank weights ``1/rank^exponent``, so the mass
    concentrates on the lowest key range — shard 0 — exactly the
    non-uniform Phi_t the Section 3 regime is about.
    """
    ranks = np.arange(1, keys.size + 1, dtype=np.float64)
    weights = ranks ** (-float(exponent))
    weights /= weights.sum()
    xs = rng.choice(keys, size=requests, p=weights)
    negatives = rng.random(requests) < 0.1
    xs[negatives] = rng.integers(0, universe, size=int(negatives.sum()))
    return xs.astype(np.int64)


def _flash_segments(keys, universe, requests, rng):
    """Uniform → hotspot on the *last* shard's range → uniform."""
    thirds = [requests // 3, requests // 3,
              requests - 2 * (requests // 3)]
    lo = (universe * (NUM_SHARDS - 1)) // NUM_SHARDS
    segments = []
    for phase, count in enumerate(thirds):
        if phase == 1:
            hot = rng.integers(lo, universe, size=count)
            cold = rng.integers(0, universe, size=count)
            take_hot = rng.random(count) < 0.85
            xs = np.where(take_hot, hot, cold)
        else:
            xs = rng.integers(0, universe, size=count)
        segments.append(xs.astype(np.int64))
    return segments


def _drive(service, segments, seed, rate=RATE):
    """Open-loop drive of one or more workload segments, back to back.

    Poisson arrivals at ``rate``; pending batch deadlines flush before
    each arrival (the controller ticks from those advances).  Returns
    per-segment metric dicts: completed/shed/wrong, latency p50/p99,
    and the query-path probe total at segment end.
    """
    rng = as_generator(seed)
    now = 0.0
    results = []
    for xs in segments:
        gaps = rng.exponential(1.0 / float(rate), size=len(xs))
        arrivals = now + np.cumsum(gaps)
        tickets = []
        shed = 0
        for x, t in zip(xs, arrivals):
            t = float(t)
            while True:
                deadline = service.next_deadline()
                if deadline is None or deadline > t:
                    break
                service.advance(deadline)
            service.advance(t)
            try:
                tickets.append((int(x), service.submit(int(x), t)))
            except (OverloadError, DegradedModeError):
                shed += 1
        now = float(arrivals[-1])
        service.drain(now + 1.0)
        latencies = np.asarray([
            tk.latency for _, tk in tickets if tk.done
        ])
        results.append({
            "offered": len(xs),
            "completed": int(latencies.size),
            "shed": int(shed),
            "wrong": sum(
                1 for x, tk in tickets if tk.done
                and tk.answer != bool(tk.key in service._key_set)
            ),
            "p50": float(np.percentile(latencies, 50))
            if latencies.size else 0.0,
            "p99": float(np.percentile(latencies, 99))
            if latencies.size else 0.0,
            "probes": int(service.stats.probes),
        })
    return results


def _merge(segments):
    """Collapse per-segment drive metrics into one end-to-end row."""
    total = {
        "offered": sum(s["offered"] for s in segments),
        "completed": sum(s["completed"] for s in segments),
        "shed": sum(s["shed"] for s in segments),
        "wrong": sum(s["wrong"] for s in segments),
        "p99": max(s["p99"] for s in segments),
        "probes": segments[-1]["probes"],
    }
    total["shed_rate"] = (
        total["shed"] / total["offered"] if total["offered"] else 0.0
    )
    total["probes_per_completed"] = (
        total["probes"] / total["completed"] if total["completed"] else 0.0
    )
    return total


def _prepare(service, keys):
    """Pre-compute the membership set used for wrong-answer checks."""
    service._key_set = set(int(k) for k in keys)
    return service


def _compare_adaptive_static(
    keys, universe, segments_of, seed, part
) -> tuple[list[dict], bool, dict]:
    """Shared A/B machinery: adaptive vs every static uniform config."""
    rows = []
    static = {}
    for replicas in STATIC_REPLICAS:
        service = _prepare(
            _service(keys, universe, replicas, seed + 10 + replicas),
            keys,
        )
        static[replicas] = _merge(
            _drive(service, segments_of(), seed + 1)
        )
        rows.append({
            "part": part, "config": f"static R={replicas}",
            "replicas_total": replicas * NUM_SHARDS,
            **{k: round(v, 4) if isinstance(v, float) else v
               for k, v in static[replicas].items()},
        })
    best = min(
        static.values(), key=lambda m: (m["shed_rate"], m["p99"])
    )
    adaptive_service = _prepare(
        _service(keys, universe, 2, seed + 20), keys
    )
    controller = adaptive_service.enable_autotune(
        policy=_policy(), seed=seed + 21
    )
    adaptive = _merge(_drive(adaptive_service, segments_of(), seed + 1))
    adaptive["replicas_final"] = [
        s.replicas for s in adaptive_service.shards
    ]
    probe_ratio = (
        adaptive["probes_per_completed"] / best["probes_per_completed"]
        if best["probes_per_completed"] else 1.0
    )
    ok = (
        adaptive["p99"] < best["p99"]
        and adaptive["shed_rate"] <= best["shed_rate"]
        and adaptive["wrong"] == 0
        and sum(adaptive["replicas_final"]) <= REPLICA_BUDGET
        and probe_ratio <= 1.15
        and controller.applied > 0
    )
    rows.append({
        "part": part, "config": "adaptive",
        "replicas_total": sum(adaptive["replicas_final"]),
        **{k: round(v, 4) if isinstance(v, float) else v
           for k, v in adaptive.items()
           if k != "replicas_final"},
        "replicas_final": str(adaptive["replicas_final"]),
        "actions": controller.applied,
        "reconfig_probes": controller.executor.reconfig_probes,
        "probe_ratio_vs_best_static": round(probe_ratio, 4),
        "beats_best_static": bool(
            adaptive["p99"] < best["p99"]
            and adaptive["shed_rate"] <= best["shed_rate"]
        ),
    })
    return rows, ok, {"adaptive": adaptive, "controller": controller}


def _part_a_zipf(fast: bool, seed: int) -> tuple[list[dict], bool]:
    """Adaptive vs static uniform sweep under a Zipf workload."""
    requests = 600 if fast else 1200
    keys, universe = make_instance(N_KEYS, seed)
    rng = as_generator(seed + 5)
    xs = _zipf_stream(keys, universe, requests, rng)
    rows, ok, _ = _compare_adaptive_static(
        keys, universe, lambda: [xs.copy()], seed, "A zipf"
    )
    return rows, ok


def _part_b_flash(fast: bool, seed: int) -> tuple[list[dict], bool]:
    """Adaptive vs static uniform sweep under a flash-crowd workload.

    Phases span several controller cooldowns: a flash crowd shorter
    than the control loop's reaction time is unwinnable by *any*
    online controller (part C quantifies that lag against the
    hindsight oracle).
    """
    requests = 900 if fast else 1800
    keys, universe = make_instance(N_KEYS, seed)
    rng = as_generator(seed + 6)
    segments = _flash_segments(keys, universe, requests, rng)
    rows, ok, _ = _compare_adaptive_static(
        keys, universe,
        lambda: [s.copy() for s in segments], seed, "B flash",
    )
    return rows, ok


def _part_c_oracle(fast: bool, seed: int) -> tuple[list[dict], bool]:
    """Per-phase gap to the hindsight-tuned static oracle (reported)."""
    requests = 900 if fast else 1800
    keys, universe = make_instance(N_KEYS, seed)
    rng = as_generator(seed + 6)
    segments = _flash_segments(keys, universe, requests, rng)
    adaptive_service = _prepare(
        _service(keys, universe, 2, seed + 30), keys
    )
    adaptive_service.enable_autotune(policy=_policy(), seed=seed + 31)
    adaptive_phases = _drive(
        adaptive_service, [s.copy() for s in segments], seed + 1
    )
    rows = []
    ok = True
    for phase, (segment, adaptive) in enumerate(
        zip(segments, adaptive_phases)
    ):
        oracle_p99 = None
        oracle_cfg = None
        for replicas in STATIC_REPLICAS:
            service = _prepare(
                _service(
                    keys, universe, replicas,
                    seed + 40 + phase * 10 + replicas,
                ),
                keys,
            )
            phase_metrics = _drive(
                service, [segment.copy()], seed + 1
            )[0]
            if oracle_p99 is None or phase_metrics["p99"] < oracle_p99:
                oracle_p99 = phase_metrics["p99"]
                oracle_cfg = replicas
        gap = (
            adaptive["p99"] / oracle_p99 if oracle_p99 else 1.0
        )
        ok = ok and adaptive["wrong"] == 0
        rows.append({
            "part": "C oracle", "phase": phase,
            "adaptive p99": round(adaptive["p99"], 4),
            "oracle p99": round(float(oracle_p99), 4),
            "oracle config": f"uniform R={oracle_cfg}",
            "p99 gap (x)": round(float(gap), 3),
        })
    return rows, ok


def _part_d_chaos(fast: bool, seed: int) -> tuple[list[dict], bool]:
    """Controller + healing + chaos: zero wrong answers, safe refusals."""
    from repro.experiments.common import uniform_distribution
    from repro.faults import FaultConfig

    requests = 400 if fast else 800
    keys, universe = make_instance(N_KEYS, seed)
    # Chaos needs injectable shards: armed fault hooks + failover mode.
    armed = build_service(
        keys, universe,
        num_shards=NUM_SHARDS, replicas=5, max_batch=MAX_BATCH,
        max_delay=MAX_DELAY, capacity=CAPACITY, probe_time=PROBE_TIME,
        mode="failover", faults=FaultConfig(armed=True), seed=seed + 50,
    )
    armed.enable_healing(seed=seed + 51)
    # low_load=0 disables joins so the schedule's replica indices stay
    # valid; splits and admission moves still exercise the controller
    # against live chaos.
    controller = armed.enable_autotune(
        policy=_policy(low_load=0.0, max_total_replicas=None),
        seed=seed + 52,
    )
    horizon = requests / RATE
    schedule = ChaosSchedule.generate(
        seed + 53, horizon=horizon, replicas=5,
        inner_cells=armed.shards[0].inner.table.num_cells,
        shard=0, crashes=1, corruptions=1, stuck=0, spikes=1,
    )
    report = run_chaos(
        armed, uniform_distribution(keys, universe), schedule,
        requests, RATE, seed=seed + 54, expected_keys=keys,
    )
    ok = (
        report.wrong_answers == 0
        and armed.health.violations == 0
    )
    rows = [{
        "part": "D chaos",
        "completed": report.completed,
        "wrong answers": report.wrong_answers,
        "violations": armed.health.violations,
        "events applied": report.events_applied,
        "controller actions": controller.applied,
        "controller skips": controller.skipped,
        "replicas_final": str([s.replicas for s in armed.shards]),
        "zero wrong": bool(report.wrong_answers == 0),
    }]
    return rows, ok


def _counter_digests(service) -> list[str]:
    """Per-shard query-path probe-counter digests."""
    return [s.table.counter.digest() for s in service.shards]


def _entries_digest(controller) -> str:
    """SHA-256 over the trace's (observation, decisions) entries only.

    The full trace payload embeds the policy (including the
    ``verify_clones`` flag), so two runs differing *only* in
    verification legitimately differ there; decision equality is
    stated over the entries.
    """
    payload = json.dumps(
        controller.trace_payload()["entries"],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _part_e_identity(fast: bool, seed: int) -> tuple[list[dict], bool]:
    """Disabled-controller identity + verify-on/off isolation + replay."""
    requests = 400 if fast else 800
    keys, universe = make_instance(N_KEYS, seed)
    rng = as_generator(seed + 60)
    xs = _zipf_stream(keys, universe, requests, rng)

    # (i) attached-but-disabled vs never-attached: byte-identical.
    bare = _prepare(_service(keys, universe, 2, seed + 61), keys)
    _drive(bare, [xs.copy()], seed + 2)
    disabled = _prepare(_service(keys, universe, 2, seed + 61), keys)
    disabled.enable_autotune(policy=_policy(), seed=seed + 62,
                             enabled=False)
    _drive(disabled, [xs.copy()], seed + 2)
    disabled_identical = (
        _counter_digests(bare) == _counter_digests(disabled)
    )

    # (ii) clone verification on vs off: same decisions, same
    # query-path probes, strictly more reconfiguration probes.
    outcomes = {}
    for verify in (True, False):
        service = _prepare(_service(keys, universe, 2, seed + 63), keys)
        controller = service.enable_autotune(
            policy=_policy(verify_clones=verify), seed=seed + 64
        )
        _drive(service, [xs.copy()], seed + 2)
        outcomes[verify] = {
            "entries": _entries_digest(controller),
            "query_probes": int(service.stats.probes),
            "reconfig_probes": int(controller.executor.reconfig_probes),
            "controller": controller,
        }
    verify_isolated = (
        outcomes[True]["entries"] == outcomes[False]["entries"]
        and outcomes[True]["query_probes"]
        == outcomes[False]["query_probes"]
        and outcomes[True]["reconfig_probes"]
        > outcomes[False]["reconfig_probes"] > 0
    )

    # (iii) the trace replays byte-for-byte through the pure engine.
    replay = replay_trace(
        outcomes[True]["controller"].trace_payload()
    )
    ok = disabled_identical and verify_isolated and replay["match"]
    rows = [{
        "part": "E identity",
        "disabled digests identical": bool(disabled_identical),
        "verify on/off decisions identical": bool(
            outcomes[True]["entries"] == outcomes[False]["entries"]
        ),
        "query probes (verify on/off)": (
            f"{outcomes[True]['query_probes']}/"
            f"{outcomes[False]['query_probes']}"
        ),
        "reconfig probes (verify on/off)": (
            f"{outcomes[True]['reconfig_probes']}/"
            f"{outcomes[False]['reconfig_probes']}"
        ),
        "trace replays": bool(replay["match"]),
    }]
    return rows, ok


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Run E25 and return its result table."""
    rows: list[dict] = []
    all_ok = True
    for part in (_part_a_zipf, _part_b_flash, _part_c_oracle,
                 _part_d_chaos, _part_e_identity):
        part_rows, ok = part(fast, seed)
        rows.extend(part_rows)
        all_ok = all_ok and ok
    rows.append({"part": "gate", "all checks passed": all_ok})
    finding = (
        "Adaptive replication beats the best static uniform config on "
        "p99 without extra shedding under Zipf and flash-crowd load at "
        "equal query probe budget; zero wrong answers under chaos; "
        "decision traces replay byte-for-byte; disabled, the "
        "controller is digest-byte-identical to a controller-free "
        "service."
    )
    if not all_ok:
        finding += "  *** GATE FAILED ***"
    return ExperimentResult(
        experiment_id="E25",
        title=(
            "Autotune: closed-loop replication, scheme, and admission "
            "control (control-plane extension)"
        ),
        claim=CLAIM,
        rows=rows,
        finding=finding,
    )
