"""E26 — durable checkpoints: crash-restartable, corruption-tolerant.

The dynamic stack (E24/E25) holds all state in memory and keeps every
applied update in an unbounded replay log.  PR 10 adds
:mod:`repro.persist` — generation-numbered, CRC/SHA-framed, atomically
published checkpoints plus log compaction — and this experiment gates
the whole durability story:

- **Part A (SIGKILL mid-checkpoint)** — a child process serves the
  mutable stack, writes generation 1, applies more updates, and is
  SIGKILLed at adversarial instants *inside* the generation-2 save
  (a torn write published at the final name; a kill between shard
  files, leaving a mixed-generation directory).  Per seed and instant:
  the previous generation must stay frame-valid, recovery must walk
  the fallback chain without crashing, replay length must stay within
  the compaction bound, post-restore answers over the whole universe
  must match the reference set frozen at each shard's restored
  generation (zero wrong answers), and every restored replica's table
  cells must be **byte-identical** to a never-crashed twin restored
  from the same generation.
- **Part B (corruption quarantine)** — all three physical damage
  modes (torn write, truncation, bit rot) against the newest
  generation: recovery quarantines the damaged file (``*.corrupt``,
  typed reason) and falls back to the older generation; with *every*
  generation damaged, restore refuses with a typed
  :class:`~repro.errors.CheckpointError` rather than fabricating
  state, and ``inspect`` surfaces the typed corruption reason.
- **Part C (bounded log)** — under sustained writes,
  ``update_log_entries()`` with a retention policy stays bounded by
  the policy (the old stack grows linearly); lifetime totals remain
  visible; compaction leaves rebuilt replicas byte-identical.
- **Part D (verify identity)** — restoring with post-restore canary
  verification on vs off leaves every per-replica query-counter
  digest byte-identical (verification probes are charged to recovery
  counters via ``repro.heal.charged_to``), while the verify pass
  itself does nonzero probe work.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import tempfile

import numpy as np

from repro.dynamic.replicated import ReplicatedDynamicDictionary
from repro.errors import CheckpointCorruptError, CheckpointError
from repro.faults import flip_file_bit, torn_write, truncate_file
from repro.io.results import ExperimentResult
from repro.persist import CheckpointStore, restore_dynamic_service
from repro.serve.dynamic_service import build_dynamic_service

CLAIM = (
    "The dynamic serving stack is crash-restartable: SIGKILL at "
    "adversarial instants mid-checkpoint never invalidates the "
    "previous generation, recovery walks a quarantine/fallback chain "
    "(torn writes, truncation, bit rot) with zero wrong answers and "
    "bounded replay, restored replicas are byte-identical to a "
    "never-crashed twin, log compaction bounds update_log_entries "
    "under sustained writes where the old stack grows linearly, and "
    "restore verification on/off leaves query-counter digests "
    "byte-identical."
)

#: Workload geometry shared by the child process and the in-process twin.
UNIVERSE = 2048
NUM_SHARDS = 2
REPLICAS = 2
LOG_RETENTION = 48
UPDATES_PER_PHASE = 80

#: Replay-length gate: the retained suffix at save time is bounded by
#: the retention trigger plus at most one flushed group.
REPLAY_BOUND = LOG_RETENTION + 16

#: Part A adversarial instants (see ``_CHILD_SCRIPT``).
KILL_MODES = ("torn-first", "between-shards")

SEEDS = (0, 1, 2)

#: The crash child: identical workload to :func:`_run_workload`, with
#: the generation-2 save rigged to die at the requested instant.  The
#: kill is a real ``SIGKILL`` — no cleanup, no atexit, no flushing —
#: delivered from *inside* the checkpoint write path.
_CHILD_SCRIPT = r"""
import os, signal, sys
import numpy as np

seed, directory, kill_at = int(sys.argv[1]), sys.argv[2], sys.argv[3]

import repro.persist.checkpoint as ckpt_mod
from repro.persist import CheckpointStore
from repro.serve.dynamic_service import build_dynamic_service

UNIVERSE, LOG_RETENTION, PER_PHASE = {universe}, {retention}, {per_phase}

svc = build_dynamic_service(
    UNIVERSE, num_shards={num_shards}, replicas={replicas},
    log_retention=LOG_RETENTION, seed=seed,
)
store = CheckpointStore(directory)
svc.attach_checkpoints(store)
rng = np.random.default_rng(seed + 1)
now = 0.0
for _ in range(PER_PHASE):
    k = int(rng.integers(0, UNIVERSE))
    svc.submit_update(k, bool(rng.random() >= 0.3), now)
    now += 1.0
    svc.advance(now)
svc.drain(now)
svc.checkpoint(now + 1.0)  # generation 1: complete and durable
for _ in range(PER_PHASE):
    k = int(rng.integers(0, UNIVERSE))
    svc.submit_update(k, bool(rng.random() >= 0.3), now)
    now += 1.0
    svc.advance(now)
svc.drain(now)

real = ckpt_mod.atomic_write_bytes
state = {{"writes": 0}}


def rigged(path, data, fsync=True):
    if kill_at == "torn-first" and state["writes"] == 0:
        # Worst case: a torn prefix published at the *final* name (a
        # filesystem that tore the write), then an immediate SIGKILL.
        with open(path, "wb") as fh:
            fh.write(bytes(data[: len(data) // 3]))
        os.kill(os.getpid(), signal.SIGKILL)
    if kill_at == "between-shards" and state["writes"] == 1:
        # Shard 0's generation-2 file landed; die before shard 1's.
        os.kill(os.getpid(), signal.SIGKILL)
    real(path, data, fsync=fsync)
    state["writes"] += 1


ckpt_mod.atomic_write_bytes = rigged
svc.checkpoint(now + 2.0)  # generation 2: dies inside
print("SURVIVED")  # only reached when kill_at == "none"
"""


def _child_script() -> str:
    return _CHILD_SCRIPT.format(
        universe=UNIVERSE, retention=LOG_RETENTION,
        per_phase=UPDATES_PER_PHASE, num_shards=NUM_SHARDS,
        replicas=REPLICAS,
    )


def _spawn_child(seed: int, directory: str, kill_at: str):
    """Run the crash child; returns the completed process."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-c", _child_script(),
         str(seed), directory, kill_at],
        env=env, capture_output=True, text=True, timeout=120,
    )


def _run_workload(seed: int, directory: str, phases: int = 2):
    """The child's workload, in-process: the never-crashed twin.

    Returns ``(service, refs)`` where ``refs[g]`` is the reference key
    set frozen at generation ``g`` (both phases use the same RNG
    consumption pattern as the child, so the twin is byte-faithful).
    """
    svc = build_dynamic_service(
        UNIVERSE, num_shards=NUM_SHARDS, replicas=REPLICAS,
        log_retention=LOG_RETENTION, seed=seed,
    )
    store = CheckpointStore(directory)
    svc.attach_checkpoints(store)
    rng = np.random.default_rng(seed + 1)
    now = 0.0
    ref: set[int] = set()
    refs = {0: frozenset()}
    for phase in range(phases):
        for _ in range(UPDATES_PER_PHASE):
            k = int(rng.integers(0, UNIVERSE))
            ins = bool(rng.random() >= 0.3)
            svc.submit_update(k, ins, now)
            (ref.add if ins else ref.discard)(k)
            now += 1.0
            svc.advance(now)
        svc.drain(now)
        refs[svc.checkpoint(now + 1.0 + phase)] = frozenset(ref)
    return svc, refs


def _cells_digest(shard: ReplicatedDynamicDictionary) -> str:
    """SHA-256 over every live replica's installed table cells."""
    h = hashlib.sha256()
    for r in sorted(shard.live_replicas()):
        d = shard._replicas[r]
        for lv in d._levels.nonempty_levels:
            h.update(lv.structure.table._cells.tobytes())
    return h.hexdigest()


def _twin_digests(twin_dir: str) -> dict:
    """``{(shard, generation): cells digest}`` from the twin's files."""
    store = CheckpointStore(twin_dir)
    out = {}
    for shard, generation, path in store.generations():
        meta = store._read_meta(path)
        d, _ = ReplicatedDynamicDictionary.from_snapshot(meta["snapshot"])
        out[(shard, generation)] = _cells_digest(d)
    return out


def _wrong_answers(service, refs_by_shard) -> int:
    """Whole-universe membership check against per-shard references."""
    sample = np.arange(UNIVERSE, dtype=np.int64)
    wrong = 0
    for i, shard in enumerate(service.shards):
        lo = service._boundaries[i]
        hi = (
            service._boundaries[i + 1]
            if i + 1 < len(service._boundaries) else UNIVERSE
        )
        xs = sample[(sample >= lo) & (sample < hi)]
        expect = refs_by_shard[i]
        truth = np.isin(
            xs,
            np.fromiter(expect, dtype=np.int64, count=len(expect))
            if expect else np.empty(0, dtype=np.int64),
        )
        answers = shard.query_batch(xs, rng=np.random.default_rng(99))
        wrong += int(np.sum(answers != truth))
    return wrong


def _part_a_sigkill(fast: bool, seed: int) -> tuple[list[dict], bool]:
    """SIGKILL mid-checkpoint at adversarial instants, per seed."""
    seeds = SEEDS[:2] if fast else SEEDS
    rows = []
    all_ok = True
    for s in seeds:
        base = seed + s
        with tempfile.TemporaryDirectory() as twin_dir:
            twin, refs = _run_workload(base, twin_dir)
            twin_cells = _twin_digests(twin_dir)
            for mode in KILL_MODES:
                with tempfile.TemporaryDirectory() as crash_dir:
                    proc = _spawn_child(base, crash_dir, mode)
                    killed = proc.returncode < 0
                    # The previous generation must still be frame-valid.
                    store = CheckpointStore(crash_dir)
                    gen1_valid = True
                    for shard, generation, path in store.generations():
                        if generation != 1:
                            continue
                        try:
                            store.inspect(path)
                        except CheckpointCorruptError:
                            gen1_valid = False
                    service, report = restore_dynamic_service(crash_dir)
                    restored = {
                        r["shard"]: r["generation"]
                        for r in report["shards"]
                    }
                    wrong = _wrong_answers(
                        service,
                        {i: refs[restored[i]] for i in restored},
                    )
                    identical = all(
                        _cells_digest(service.shards[i])
                        == twin_cells[(i, g)]
                        for i, g in restored.items()
                    )
                    bounded = report["replayed"] <= REPLAY_BOUND
                    ok = (
                        killed and gen1_valid and wrong == 0
                        and identical and bounded
                        and all(g >= 1 for g in restored.values())
                    )
                    all_ok = all_ok and ok
                    rows.append({
                        "part": "A sigkill", "seed": s, "instant": mode,
                        "killed": bool(killed),
                        "prev gen valid": bool(gen1_valid),
                        "restored gens": str(
                            [restored[i] for i in sorted(restored)]
                        ),
                        "quarantined": report["quarantined"],
                        "replayed": report["replayed"],
                        "replay bound": REPLAY_BOUND,
                        "wrong": wrong,
                        "twin identical": bool(identical),
                        "ok": bool(ok),
                    })
    return rows, all_ok


def _part_b_quarantine(fast: bool, seed: int) -> tuple[list[dict], bool]:
    """All three damage modes → quarantine + fallback; total loss → typed."""
    damage = {
        "torn": lambda p, s: torn_write(p, 0.4, seed=s),
        "truncate": lambda p, s: truncate_file(p, 32),
        "bitflip": lambda p, s: flip_file_bit(p, seed=s, count=3),
    }
    rows = []
    all_ok = True
    for mode, hurt in damage.items():
        with tempfile.TemporaryDirectory() as d:
            _twin, refs = _run_workload(seed + 7, d)
            store = CheckpointStore(d)
            newest = [
                p for (_s, g, p) in store.generations()
                if g == store.latest_generation()
            ]
            for i, path in enumerate(newest):
                hurt(path, seed + 11 + i)
            # inspect surfaces the typed reason without touching files.
            typed = 0
            for path in newest:
                try:
                    store.inspect(path)
                except CheckpointCorruptError as exc:
                    typed += 1
                    assert exc.reason
            service, report = restore_dynamic_service(d)
            fell_back = all(
                r["generation"] == 1 and r["source"] == "checkpoint"
                for r in report["shards"]
            )
            wrong = _wrong_answers(
                service, {i: refs[1] for i in range(NUM_SHARDS)}
            )
            quarantined_files = sorted(
                f for f in os.listdir(d) if f.endswith(".corrupt")
            )
            ok = (
                typed == len(newest) and fell_back and wrong == 0
                and report["quarantined"] == len(newest)
                and len(quarantined_files) == len(newest)
            )
            all_ok = all_ok and ok
            rows.append({
                "part": "B quarantine", "damage": mode,
                "typed errors": typed,
                "fell back to gen 1": bool(fell_back),
                "quarantined": report["quarantined"],
                "wrong": wrong,
                "ok": bool(ok),
            })
    # Total loss: every generation damaged → typed refusal, no fabrication.
    with tempfile.TemporaryDirectory() as d:
        _run_workload(seed + 8, d)
        store = CheckpointStore(d)
        for i, (_s, _g, path) in enumerate(store.generations()):
            flip_file_bit(path, seed=seed + 13 + i, count=5)
        try:
            restore_dynamic_service(d)
        except CheckpointError:
            refused = True
        else:
            refused = False
        all_ok = all_ok and refused
        rows.append({
            "part": "B quarantine", "damage": "all generations",
            "typed errors": "-", "fell back to gen 1": False,
            "quarantined": "-", "wrong": "-",
            "ok": bool(refused),
        })
    return rows, all_ok


def _part_c_bounded_log(fast: bool, seed: int) -> tuple[list[dict], bool]:
    """Retention bounds the retained log; the old stack grows linearly."""
    updates = 200 if fast else 400
    retention = 32

    def drive(svc):
        rng = np.random.default_rng(seed + 21)
        now = 0.0
        peak = 0
        for _ in range(updates):
            svc.submit_update(
                int(rng.integers(0, UNIVERSE)),
                bool(rng.random() >= 0.3), now,
            )
            now += 1.0
            svc.advance(now)
            peak = max(peak, svc.update_log_entries())
        svc.drain(now)
        return peak

    bounded = build_dynamic_service(
        UNIVERSE, num_shards=1, replicas=REPLICAS,
        log_retention=retention, seed=seed + 20,
    )
    unbounded = build_dynamic_service(
        UNIVERSE, num_shards=1, replicas=REPLICAS, seed=seed + 20,
    )
    peak_bounded = drive(bounded)
    peak_unbounded = drive(unbounded)
    # Compaction must not change the shard's bytes: rebuild a replica
    # from base+suffix and compare against the untouched twin.
    identical = (
        _cells_digest(bounded.shards[0])
        == _cells_digest(unbounded.shards[0])
    )
    lifetime_visible = (
        bounded.shards[0].update_count
        == unbounded.shards[0].update_count == updates
    )
    # One flushed group may land after the trigger fires.
    slack = retention + 8
    ok = (
        peak_bounded <= slack
        and peak_unbounded == updates
        and bounded.stats_compactions > 0
        and identical and lifetime_visible
    )
    rows = [{
        "part": "C bounded log", "updates": updates,
        "retention": retention,
        "peak retained (bounded)": peak_bounded,
        "peak retained (unbounded)": peak_unbounded,
        "compactions": bounded.stats_compactions,
        "cells identical": bool(identical),
        "lifetime totals visible": bool(lifetime_visible),
        "ok": bool(ok),
    }]
    return rows, ok


def _part_d_verify_identity(
    fast: bool, seed: int
) -> tuple[list[dict], bool]:
    """Restore verify on/off: byte-identical query-counter digests."""
    with tempfile.TemporaryDirectory() as d:
        _run_workload(seed + 31, d)
        on, rep_on = restore_dynamic_service(d, verify=True)
        off, rep_off = restore_dynamic_service(d, verify=False)
        digests_on = [
            [s.query_counter_digest(r) for r in sorted(s.live_replicas())]
            for s in on.shards
        ]
        digests_off = [
            [s.query_counter_digest(r) for r in sorted(s.live_replicas())]
            for s in off.shards
        ]
        identical = digests_on == digests_off
        charged = (
            rep_on["recovery_probes"] > 0
            and rep_off["recovery_probes"] == 0
        )
        cells_same = all(
            _cells_digest(a) == _cells_digest(b)
            for a, b in zip(on.shards, off.shards)
        )
        ok = identical and charged and cells_same
        rows = [{
            "part": "D verify identity",
            "query digests identical": bool(identical),
            "recovery probes (on/off)": (
                f"{rep_on['recovery_probes']}/"
                f"{rep_off['recovery_probes']}"
            ),
            "cells identical": bool(cells_same),
            "ok": bool(ok),
        }]
    return rows, ok


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Run E26 and return its result table."""
    rows: list[dict] = []
    all_ok = True
    for part in (_part_a_sigkill, _part_b_quarantine,
                 _part_c_bounded_log, _part_d_verify_identity):
        part_rows, ok = part(fast, seed)
        rows.extend(part_rows)
        all_ok = all_ok and ok
    rows.append({"part": "gate", "all checks passed": all_ok})
    finding = (
        "SIGKILL at adversarial instants mid-checkpoint never "
        "invalidates the previous generation; recovery quarantines "
        "torn/truncated/bit-rotted files with typed reasons and falls "
        "back with zero wrong answers, bounded replay, and replicas "
        "byte-identical to a never-crashed twin; log compaction bounds "
        "update_log_entries where the old stack grows linearly; "
        "restore verification on/off is query-digest byte-identical."
    )
    if not all_ok:
        finding += "  *** GATE FAILED ***"
    return ExperimentResult(
        experiment_id="E26",
        title=(
            "Durable checkpoints and log compaction: crash-restartable "
            "dynamic serving (robustness extension)"
        ),
        claim=CLAIM,
        rows=rows,
        finding=finding,
    )
