"""Parallel experiment runner: fan experiments over worker processes.

Every experiment runner is deterministic given ``seed``, and experiments
are independent of one another, so the E1–E17 grid parallelizes freely:
each experiment is one grid point dispatched to a
:class:`concurrent.futures.ProcessPoolExecutor` worker.  Results are
collected **in request order**, so the rendered output is byte-identical
for any worker count (including ``jobs=1``, which runs inline without a
pool).

Workers inherit the parent's interpreter state via fork/spawn and
reconfigure their own construction cache from ``cache_dir``; they never
share in-memory cache state, which is exactly why determinism holds
regardless of parallelism.

:func:`grid_map` is the same machinery for ad-hoc grids: it derives one
independent seeded RNG stream per grid point (via
:func:`~repro.utils.rng.spawn_generators`-style child seeding) so a
point's randomness never depends on which worker ran it or in what
order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.experiments.cache import configure_cache
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.io.results import ExperimentResult


def normalize_ids(ids: Iterable[str] | str) -> list[str]:
    """Expand ``"all"`` and validate/uppercase experiment ids."""
    if isinstance(ids, str):
        ids = [ids]
    out: list[str] = []
    for eid in ids:
        if eid.lower() == "all":
            out.extend(EXPERIMENTS)
            continue
        key = eid.upper()
        if key not in EXPERIMENTS:
            raise ParameterError(
                f"unknown experiment {eid!r}; options: {sorted(EXPERIMENTS)}"
            )
        out.append(key)
    return out


def _run_one(eid: str, fast: bool, seed: int, cache_dir) -> ExperimentResult:
    """Worker entry point: set up this process's cache, run, return."""
    if cache_dir is not None:
        configure_cache(cache_dir=cache_dir)
    return run_experiment(eid, fast=fast, seed=seed)


def run_experiments(
    ids: Iterable[str] | str,
    fast: bool = True,
    seed: int = 0,
    jobs: int = 1,
    cache_dir=None,
) -> list[ExperimentResult]:
    """Run experiments, optionally across ``jobs`` worker processes.

    Returns results in the order of ``ids`` (after ``"all"`` expansion)
    no matter how many workers ran them.
    """
    ids = normalize_ids(ids)
    jobs = int(jobs)
    if jobs < 1:
        raise ParameterError("jobs must be >= 1")
    if cache_dir is not None:
        configure_cache(cache_dir=cache_dir)
    if jobs == 1 or len(ids) <= 1:
        return [run_experiment(eid, fast=fast, seed=seed) for eid in ids]
    with ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
        futures = [
            pool.submit(_run_one, eid, fast, seed, cache_dir) for eid in ids
        ]
        return [f.result() for f in futures]


def grid_point_seeds(seed: int, count: int) -> list[int]:
    """``count`` independent child seeds derived from ``seed``.

    Uses numpy's SeedSequence spawning, the same discipline as
    :func:`repro.utils.rng.spawn_generators`: child streams are
    statistically independent and a pure function of ``(seed, index)``.
    """
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(c.generate_state(1)[0]) for c in children]


def grid_map(
    fn: Callable,
    points: Sequence,
    seed: int = 0,
    jobs: int = 1,
    cache_dir=None,
) -> list:
    """Map ``fn(point, point_seed)`` over a grid, optionally in parallel.

    Each point gets its own derived seed (see :func:`grid_point_seeds`),
    so results are deterministic in ``(seed, points)`` and independent
    of ``jobs``.  ``fn`` must be picklable (a module-level function).
    """
    points = list(points)
    seeds = grid_point_seeds(seed, len(points))
    jobs = int(jobs)
    if jobs < 1:
        raise ParameterError("jobs must be >= 1")
    if cache_dir is not None:
        configure_cache(cache_dir=cache_dir)
    if jobs == 1 or len(points) <= 1:
        return [fn(p, s) for p, s in zip(points, seeds)]
    with ProcessPoolExecutor(max_workers=min(jobs, len(points))) as pool:
        futures = [
            pool.submit(_grid_worker, fn, p, s, cache_dir)
            for p, s in zip(points, seeds)
        ]
        return [f.result() for f in futures]


def _grid_worker(fn, point, point_seed, cache_dir):
    if cache_dir is not None:
        configure_cache(cache_dir=cache_dir)
    return fn(point, point_seed)


# Not imported eagerly by repro.experiments.__init__ to keep the
# registry import cycle-free; prefer `os.cpu_count()`-bounded jobs.
def default_jobs() -> int:
    """A sensible default worker count (half the cores, at least 1)."""
    return max(1, (os.cpu_count() or 2) // 2)
