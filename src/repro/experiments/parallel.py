"""Parallel experiment runner: fan experiments over worker processes.

Every experiment runner is deterministic given ``seed``, and experiments
are independent of one another, so the E1–E17 grid parallelizes freely:
each experiment is one grid point dispatched to a
:class:`concurrent.futures.ProcessPoolExecutor` worker.  Results are
collected **in request order**, so the rendered output is byte-identical
for any worker count (including ``jobs=1``, which runs inline without a
pool).

Workers inherit the parent's interpreter state via fork/spawn and
reconfigure their own construction cache from ``cache_dir``; they never
share in-memory cache state, which is exactly why determinism holds
regardless of parallelism.

:func:`grid_map` is the same machinery for ad-hoc grids: it derives one
independent seeded RNG stream per grid point (via
:func:`~repro.utils.rng.spawn_generators`-style child seeding) so a
point's randomness never depends on which worker ran it or in what
order.

**Resilience** (all opt-in; the default path is byte-identical to the
plain runner): requesting a ``timeout``, ``retries``, ``keep_going``, or
a ``checkpoint_dir`` routes dispatch through a process-per-experiment
scheduler that

- enforces a per-attempt wall-clock **timeout** by killing the worker
  process;
- **retries** failed/timed-out experiments with exponential backoff
  (``retry_backoff * 2**attempt`` seconds);
- **checkpoints** each completed result as checksummed-by-parse JSON in
  ``checkpoint_dir`` and, on a later invocation with the same directory,
  resumes by loading completed experiments instead of recomputing them
  (kill a run mid-flight and re-invoke to pick up where it left off);
- aborts at the first exhausted experiment (fail-fast, default) or runs
  everything and reports all failures at the end (``keep_going``),
  raising :class:`~repro.errors.ExperimentFailureError` either way with
  the partial results attached.

Experiments are deterministic in ``seed``, so a resumed run's output is
identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import queue as queue_mod
import time
import warnings
from concurrent.futures import ThreadPoolExecutor, as_completed
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import CheckpointError, ExperimentFailureError, ParameterError
from repro.experiments.cache import configure_cache
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.io.results import ExperimentResult

#: Bumped when the checkpoint JSON layout changes; older files are
#: treated as missing (recomputed), never misread.
CHECKPOINT_VERSION = 1


def _ensure_directory(kind: str, value) -> pathlib.Path:
    """Validate a user-supplied directory path up front.

    Raises :class:`~repro.errors.CheckpointError` (a typed
    :class:`~repro.errors.ReproError`) when the path is an existing
    file, has a file where a parent directory should be, or cannot be
    created — so the CLI reports one line and exits 2 instead of
    leaking an ``OSError`` traceback from deep inside a worker.
    """
    path = pathlib.Path(value)
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise CheckpointError(
            f"{kind} {str(path)!r} is not a usable directory "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    if not path.is_dir():
        raise CheckpointError(
            f"{kind} {str(path)!r} is not a usable directory"
        )
    return path


def normalize_ids(ids: Iterable[str] | str) -> list[str]:
    """Expand ``"all"`` and validate/uppercase experiment ids."""
    if isinstance(ids, str):
        ids = [ids]
    out: list[str] = []
    for eid in ids:
        if eid.lower() == "all":
            out.extend(EXPERIMENTS)
            continue
        key = eid.upper()
        if key not in EXPERIMENTS:
            raise ParameterError(
                f"unknown experiment {eid!r}; options: {sorted(EXPERIMENTS)}"
            )
        out.append(key)
    return out


def telemetry_path(telemetry_dir, eid: str, fast: bool, seed: int) -> pathlib.Path:
    """Where experiment ``eid``'s metrics snapshot is written."""
    mode = "fast" if fast else "full"
    return (
        pathlib.Path(telemetry_dir) / f"{eid}_{mode}_s{int(seed)}.metrics.json"
    )


def _run_instrumented(
    eid: str, fast: bool, seed: int, telemetry_dir
) -> ExperimentResult:
    """Run one experiment, bus-collecting metrics when requested.

    With ``telemetry_dir`` set, the run executes under a
    :func:`~repro.telemetry.hub.collect_bus_metrics` subscription — the
    guarded emit sites across the library light up, the collected
    registry is snapshotted to one JSON file per experiment, and the
    experiment's *results* are unchanged (the bus never perturbs RNG
    streams or probe accounting; property-tested in
    ``tests/test_telemetry_integration.py``).
    """
    if telemetry_dir is None:
        return run_experiment(eid, fast=fast, seed=seed)
    from repro.io.results import save_snapshot
    from repro.telemetry import collect_bus_metrics

    path = telemetry_path(telemetry_dir, eid, fast, seed)
    path.parent.mkdir(parents=True, exist_ok=True)
    with collect_bus_metrics() as registry:
        result = run_experiment(eid, fast=fast, seed=seed)
    snapshot = registry.snapshot()
    snapshot["experiment"] = {
        "id": eid, "fast": bool(fast), "seed": int(seed),
    }
    save_snapshot(snapshot, path)
    return result


def _run_one(
    eid: str, fast: bool, seed: int, cache_dir, telemetry_dir=None
) -> ExperimentResult:
    """Worker entry point: set up this process's cache, run, return."""
    if cache_dir is not None:
        configure_cache(cache_dir=cache_dir)
    return _run_instrumented(eid, fast, seed, telemetry_dir)


def run_experiments(
    ids: Iterable[str] | str,
    fast: bool = True,
    seed: int = 0,
    jobs: int = 1,
    cache_dir=None,
    timeout: float | None = None,
    retries: int = 0,
    retry_backoff: float = 0.5,
    checkpoint_dir=None,
    keep_going: bool = False,
    telemetry_dir=None,
) -> list[ExperimentResult]:
    """Run experiments, optionally across ``jobs`` worker processes.

    Returns results in the order of ``ids`` (after ``"all"`` expansion)
    no matter how many workers ran them.  ``timeout``/``retries``/
    ``checkpoint_dir``/``keep_going`` engage the resilient scheduler
    (see the module docstring); leaving them all at their defaults runs
    the plain deterministic path unchanged.  ``telemetry_dir`` writes
    one bus-collected metrics snapshot per experiment (results stay
    byte-identical — collection cannot perturb the runs).
    """
    ids = normalize_ids(ids)
    jobs = int(jobs)
    if jobs < 1:
        raise ParameterError("jobs must be >= 1")
    if retries < 0:
        raise ParameterError("retries must be >= 0")
    if timeout is not None and timeout <= 0:
        raise ParameterError("timeout must be positive")
    if checkpoint_dir is not None:
        _ensure_directory("checkpoint directory", checkpoint_dir)
    if cache_dir is not None:
        _ensure_directory("cache directory", cache_dir)
        configure_cache(cache_dir=cache_dir)
    resilient = (
        timeout is not None
        or retries > 0
        or checkpoint_dir is not None
        or keep_going
    )
    if resilient:
        return _run_resilient(
            ids, fast, seed, jobs, cache_dir, timeout, retries,
            retry_backoff, checkpoint_dir, keep_going, telemetry_dir,
        )
    if jobs == 1 or len(ids) <= 1:
        return [
            _run_instrumented(eid, fast, seed, telemetry_dir) for eid in ids
        ]
    with ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
        futures = [
            pool.submit(_run_one, eid, fast, seed, cache_dir, telemetry_dir)
            for eid in ids
        ]
        return [f.result() for f in futures]


# -- checkpoints ------------------------------------------------------------------


def checkpoint_path(checkpoint_dir, eid: str, fast: bool, seed: int) -> pathlib.Path:
    """Where experiment ``eid``'s completed result is checkpointed."""
    mode = "fast" if fast else "full"
    return pathlib.Path(checkpoint_dir) / f"{eid}_{mode}_s{int(seed)}.json"


def _jsonify(value):
    """Recursively convert numpy scalars/arrays to plain JSON values."""
    if isinstance(value, (np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def save_checkpoint(
    checkpoint_dir, eid: str, fast: bool, seed: int, result: ExperimentResult
) -> None:
    """Atomically persist a completed result for later resume."""
    path = checkpoint_path(checkpoint_dir, eid, fast, seed)
    blob = json.dumps(
        {
            "version": CHECKPOINT_VERSION,
            "experiment_id": eid,
            "fast": bool(fast),
            "seed": int(seed),
            "result": _jsonify(result.as_dict()),
        },
        indent=2,
    )
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(blob)
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(
            f"cannot write checkpoint {path} "
            f"({type(exc).__name__}: {exc})"
        ) from exc


def load_checkpoint(
    checkpoint_dir, eid: str, fast: bool, seed: int
) -> ExperimentResult | None:
    """A previously checkpointed result, or None if absent/unusable.

    Corrupt, truncated, or version-mismatched checkpoints degrade to a
    miss with a warning — the experiment is simply recomputed.
    """
    path = checkpoint_path(checkpoint_dir, eid, fast, seed)
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
        if (
            data.get("version") != CHECKPOINT_VERSION
            or data.get("experiment_id") != eid
            or data.get("fast") != bool(fast)
            or data.get("seed") != int(seed)
        ):
            raise ValueError("checkpoint metadata mismatch")
        result = ExperimentResult(**data["result"])
        if result.experiment_id != eid or not isinstance(result.rows, list):
            raise ValueError("checkpoint body mismatch")
        return result
    except (OSError, ValueError, KeyError, TypeError) as exc:
        warnings.warn(
            f"ignoring unusable checkpoint {path} "
            f"({type(exc).__name__}: {exc}); recomputing {eid}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


# -- resilient scheduler -----------------------------------------------------------


def _subprocess_entry(eid, fast, seed, cache_dir, q, telemetry_dir=None) -> None:
    """Dedicated-process entry: always posts exactly one message."""
    try:
        if cache_dir is not None:
            configure_cache(cache_dir=cache_dir)
        q.put(("ok", _run_instrumented(eid, fast, seed, telemetry_dir)))
    except BaseException as exc:  # noqa: BLE001 — must never die silently
        try:
            q.put(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass


def _run_isolated(
    eid: str, fast: bool, seed: int, cache_dir, timeout: float | None,
    telemetry_dir=None,
) -> tuple[str, object]:
    """One attempt in its own process; the process is killed on timeout."""
    ctx = multiprocessing.get_context()
    q = ctx.Queue()
    proc = ctx.Process(
        target=_subprocess_entry,
        args=(eid, fast, seed, cache_dir, q, telemetry_dir),
        daemon=True,
    )
    proc.start()
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        try:
            status, payload = q.get(timeout=0.05)
            break
        except queue_mod.Empty:
            if deadline is not None and time.monotonic() > deadline:
                proc.terminate()
                proc.join()
                return "timeout", f"{eid} exceeded {timeout:g}s"
            if not proc.is_alive():
                # Drain once more: the child may have posted right
                # before exiting.
                try:
                    status, payload = q.get(timeout=0.5)
                    break
                except queue_mod.Empty:
                    return "error", f"{eid} worker died without a result"
    proc.join()
    return status, payload


def _resilient_task(
    eid, fast, seed, cache_dir, timeout, retries, retry_backoff,
    checkpoint_dir, telemetry_dir=None,
) -> tuple[ExperimentResult | None, str]:
    """Attempt ``eid`` with retries+backoff; checkpoint on success."""
    reason = ""
    for attempt in range(retries + 1):
        if attempt:
            time.sleep(retry_backoff * 2 ** (attempt - 1))
        status, payload = _run_isolated(
            eid, fast, seed, cache_dir, timeout, telemetry_dir
        )
        if status == "ok":
            if checkpoint_dir is not None:
                save_checkpoint(checkpoint_dir, eid, fast, seed, payload)
            return payload, ""
        reason = str(payload)
    return None, f"{reason} (after {retries + 1} attempt(s))"


def _run_resilient(
    ids, fast, seed, jobs, cache_dir, timeout, retries, retry_backoff,
    checkpoint_dir, keep_going, telemetry_dir=None,
) -> list[ExperimentResult]:
    done: dict[str, ExperimentResult] = {}
    unique = list(dict.fromkeys(ids))
    if checkpoint_dir is not None:
        for eid in unique:
            cached = load_checkpoint(checkpoint_dir, eid, fast, seed)
            if cached is not None:
                done[eid] = cached
    pending = [eid for eid in unique if eid not in done]
    failures: dict[str, str] = {}
    if pending:
        with ThreadPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(
                    _resilient_task, eid, fast, seed, cache_dir, timeout,
                    retries, retry_backoff, checkpoint_dir, telemetry_dir,
                ): eid
                for eid in pending
            }
            for fut in as_completed(futures):
                eid = futures[fut]
                result, reason = fut.result()
                if result is None:
                    failures[eid] = reason
                    if not keep_going:
                        for other in futures:
                            other.cancel()
                        break
                else:
                    done[eid] = result
    if failures:
        raise ExperimentFailureError(
            failures, [done[eid] for eid in ids if eid in done]
        )
    return [done[eid] for eid in ids]


def grid_point_seeds(seed: int, count: int) -> list[int]:
    """``count`` independent child seeds derived from ``seed``.

    Uses numpy's SeedSequence spawning, the same discipline as
    :func:`repro.utils.rng.spawn_generators`: child streams are
    statistically independent and a pure function of ``(seed, index)``.
    """
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(c.generate_state(1)[0]) for c in children]


def grid_map(
    fn: Callable,
    points: Sequence,
    seed: int = 0,
    jobs: int = 1,
    cache_dir=None,
) -> list:
    """Map ``fn(point, point_seed)`` over a grid, optionally in parallel.

    Each point gets its own derived seed (see :func:`grid_point_seeds`),
    so results are deterministic in ``(seed, points)`` and independent
    of ``jobs``.  ``fn`` must be picklable (a module-level function).
    """
    points = list(points)
    seeds = grid_point_seeds(seed, len(points))
    jobs = int(jobs)
    if jobs < 1:
        raise ParameterError("jobs must be >= 1")
    if cache_dir is not None:
        _ensure_directory("cache directory", cache_dir)
        configure_cache(cache_dir=cache_dir)
    if jobs == 1 or len(points) <= 1:
        return [fn(p, s) for p, s in zip(points, seeds)]
    with ProcessPoolExecutor(max_workers=min(jobs, len(points))) as pool:
        futures = [
            pool.submit(_grid_worker, fn, p, s, cache_dir)
            for p, s in zip(points, seeds)
        ]
        return [f.result() for f in futures]


def _grid_worker(fn, point, point_seed, cache_dir):
    if cache_dir is not None:
        configure_cache(cache_dir=cache_dir)
    return fn(point, point_seed)


# Not imported eagerly by repro.experiments.__init__ to keep the
# registry import cycle-free; prefer `os.cpu_count()`-bounded jobs.
def default_jobs() -> int:
    """A sensible default worker count (half the cores, at least 1)."""
    return max(1, (os.cpu_count() or 2) // 2)
