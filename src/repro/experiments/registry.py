"""Registry mapping experiment ids to runners."""

from __future__ import annotations

from typing import Callable

from repro.errors import ParameterError
from repro.experiments import (
    e01_contention_optimality,
    e02_probe_complexity,
    e03_space,
    e04_construction,
    e05_baseline_comparison,
    e06_arbitrary_distributions,
    e07_lemma9_loads,
    e08_negative_loads,
    e09_lower_bound_game,
    e10_product_space,
    e11_vc_dimension,
    e12_concurrent,
    e13_ablations,
    e14_dynamic,
    e15_replication_cost,
    e16_worst_case_fks,
    e17_tail_bounds,
    e18_fault_tolerance,
    e19_serving,
    e20_telemetry,
    e21_chaos,
    e22_multicore,
    e23_adversary,
    e24_dynamic_serve,
    e25_autotune,
    e26_persistence,
)
from repro.io.results import ExperimentResult

EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {
    "E1": ("Contention optimality (Theorem 3)", e01_contention_optimality.run),
    "E2": ("Constant probe complexity (Theorem 3)", e02_probe_complexity.run),
    "E3": ("Linear space (Theorem 3)", e03_space.run),
    "E4": ("O(1) trials / O(n) construction (§2.2)", e04_construction.run),
    "E5": ("Baseline contention comparison (§1.3)", e05_baseline_comparison.run),
    "E6": ("Arbitrary distributions break everything (§1.3)", e06_arbitrary_distributions.run),
    "E7": ("Lemma 9 load conditions", e07_lemma9_loads.run),
    "E8": ("Lemma 10 negative loads", e08_negative_loads.run),
    "E9": ("Lower-bound game & t* recursion (Theorem 13)", e09_lower_bound_game.run),
    "E10": ("Product-space probe simulation (Lemma 19)", e10_product_space.run),
    "E11": ("VC-dimension instantiation (Definition 11)", e11_vc_dimension.run),
    "E12": ("Concurrent m-query simulation (§1)", e12_concurrent.run),
    "E13": ("Design-choice ablations (§2.2)", e13_ablations.run),
    "E14": ("Extension: dynamic update contention (conclusion)", e14_dynamic.run),
    "E15": ("Extension: space cost of naive replication (§1.3)", e15_replication_cost.run),
    "E16": ("Worst-case family: FKS at Theta(sqrt n) x optimal (§1.3)", e16_worst_case_fks.run),
    "E17": ("Tail-bound sharpness (Theorems 6-8)", e17_tail_bounds.run),
    "E18": ("Fault tolerance via replication (robustness extension)", e18_fault_tolerance.run),
    "E19": ("Live serving validates Phi_t; contention-aware routing (serving extension)", e19_serving.run),
    "E20": ("Telemetry: zero-perturbation observation & live contention monitoring (observability extension)", e20_telemetry.run),
    "E21": ("Chaos steady-state: self-healing under crashes, corruption, and spikes (robustness extension)", e21_chaos.run),
    "E22": ("Multicore fabric: hardware Binomial loads and byte-identical accounting (real-parallelism extension)", e22_multicore.run),
    "E23": ("Adversarial search: evolution vs the self-healing stack (robustness extension)", e23_adversary.run),
    "E24": ("Dynamic serving: live updates, epochs, chaos (dynamization extension)", e24_dynamic_serve.run),
    "E25": ("Autotune: closed-loop replication, scheme, and admission control (control-plane extension)", e25_autotune.run),
    "E26": ("Durable checkpoints and log compaction: crash-restartable dynamic serving (robustness extension)", e26_persistence.run),
}


def run_experiment(
    experiment_id: str, fast: bool = False, seed: int = 0
) -> ExperimentResult:
    """Run one experiment by id ("E1".."E13")."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise ParameterError(
            f"unknown experiment {experiment_id!r}; options: "
            f"{sorted(EXPERIMENTS)}"
        )
    _, runner = EXPERIMENTS[key]
    return runner(fast=fast, seed=seed)


def run_all(
    fast: bool = True, seed: int = 0, jobs: int = 1, cache_dir=None
) -> list[ExperimentResult]:
    """Run the whole suite (fast mode by default).

    ``jobs > 1`` fans experiments over worker processes; output order
    and content are identical for any worker count.
    """
    # Imported lazily: parallel imports this registry.
    from repro.experiments.parallel import run_experiments

    return run_experiments(
        list(EXPERIMENTS), fast=fast, seed=seed, jobs=jobs, cache_dir=cache_dir
    )
