"""Injectable fault model for the cell-probe substrate.

The paper's model (Definition 1, Theorem 3) assumes perfectly reliable
cells and replicas; a production system must survive neither being true.
This module makes unreliability *injectable, seeded, and accounted*:

- :class:`FaultConfig` — a declarative, hashable description of the
  faults to inject: **stuck-at cells** (a fraction of cells permanently
  return a corrupt word), **transient bit flips** (each read is
  independently corrupted with some probability), and **crashed
  replicas** (whole replicas of a
  :class:`~repro.dictionaries.replicated.ReplicatedDictionary` become
  unavailable).
- :class:`FaultInjector` — the materialization of a config against one
  table geometry: it decides *which* cells are stuck and *which*
  replicas are crashed up front (from the config seed), and owns a
  private RNG stream for transient flips so the query algorithm's
  randomness — and therefore its probe sequence and the exact
  contention bookkeeping — is untouched by fault injection.
- :class:`FaultyTable` — a :class:`~repro.cellprobe.table.Table` facade
  that corrupts values on the way *out* of ``read``/``read_batch``.
  Every probe is still charged to the real counter at the real cell:
  faults change what a query *sees*, never what it *cost*.
- :class:`FaultStats` — mutable counters for the fault-tolerant query
  paths (retries, exponential-backoff cost in probe-equivalents,
  crashes hit, exhaustion events).

With ``FaultConfig()`` (all rates zero) nothing is wrapped anywhere and
every code path is byte-identical to the fault-free library — the
zero-overhead default is property-tested in ``tests/test_faults.py``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cellprobe.table import CELL_BITS
from repro.telemetry.events import BUS, FaultEvent
from repro.utils.validation import check_probability

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "FaultyTable",
    "flip_file_bit",
    "torn_write",
    "truncate_file",
]


# -- checkpoint-file corruption (durability chaos) --------------------------------
#
# The in-memory fault model above damages what queries *see*; these
# helpers damage what recovery *reads*.  They reproduce the three
# physical failure modes a crash can leave behind in a checkpoint file —
# a torn (partially persisted) write, a truncation, and silent bit rot —
# so tests and the adversary can drive the quarantine/fallback chain in
# ``repro.persist`` deterministically.  All three are seeded and operate
# in place on an existing file.


def torn_write(path, fraction: float = 0.5, seed: int = 0) -> int:
    """Simulate a torn write: keep a prefix, garbage the rest.

    A crash mid-``write()`` persists a prefix of the new contents and
    leaves the tail undefined.  This keeps the first
    ``round(fraction * size)`` bytes and overwrites the remainder with
    seeded random bytes, returning the number of bytes damaged.  The
    framed checkpoint format detects this via its CRC32 word.
    """
    check_probability("fraction", fraction)
    with open(path, "rb") as fh:
        blob = fh.read()
    keep = int(round(float(fraction) * len(blob)))
    damaged = len(blob) - keep
    if damaged <= 0:
        return 0
    rng = np.random.default_rng(int(seed))
    tail = rng.integers(0, 256, size=damaged, dtype=np.uint8).tobytes()
    with open(path, "wb") as fh:
        fh.write(blob[:keep] + tail)
    return damaged


def truncate_file(path, keep: int) -> int:
    """Truncate a file to its first ``keep`` bytes; returns bytes lost.

    Models a crash between ``write()`` and ``fsync()`` on a filesystem
    that persisted only part of the data blocks.  ``keep`` may exceed
    the file size (then nothing happens).
    """
    keep = int(keep)
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    with open(path, "rb") as fh:
        blob = fh.read()
    lost = len(blob) - keep
    if lost <= 0:
        return 0
    with open(path, "wb") as fh:
        fh.write(blob[:keep])
    return lost


def flip_file_bit(path, seed: int = 0, count: int = 1) -> int:
    """Flip ``count`` seeded random bits in a file (silent bit rot).

    Models media decay: the file keeps its length and structure but
    ``count`` bits anywhere in it (header, digest, or payload) are
    inverted.  Returns the number of bits flipped (0 for an empty
    file).  The framed format's SHA-256 catches payload rot; rot inside
    the header degrades to a magic/CRC mismatch.
    """
    count = int(count)
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    with open(path, "rb") as fh:
        blob = bytearray(fh.read())
    if not blob or count == 0:
        return 0
    rng = np.random.default_rng(int(seed))
    flipped = 0
    for _ in range(count):
        pos = int(rng.integers(0, len(blob)))
        bit = int(rng.integers(0, 8))
        blob[pos] ^= 1 << bit
        flipped += 1
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    return flipped


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Declarative fault-injection configuration (hashable, seedable).

    Parameters
    ----------
    stuck_rate:
        Fraction of cells that are *stuck-at* a fixed corrupt word: every
        read of such a cell returns the same garbage value, forever.
    flip_rate:
        Per-read probability of a transient single-bit flip in the value
        returned (the cell itself is undamaged).
    crash_rate:
        Per-replica probability of being crashed (sampled once from the
        config seed).  Only meaningful when the injector is built for a
        replicated structure.
    crashed_replicas:
        Explicitly crashed replica indices (in addition to any sampled).
    faulty_replicas:
        If not ``None``, restrict stuck cells, transient flips, *and*
        ``crash_rate`` sampling to these replicas — the "f faulty
        replicas out of R" regime the majority-vote guarantee is stated
        in.  Explicit ``crashed_replicas`` are always honored.
    faulty_rows:
        If not ``None``, restrict stuck cells and transient flips to
        these *inner-structure* row indices (the pattern repeats in
        every replica of a replicated structure).  Composes with
        ``faulty_replicas`` by intersection.  Row-scoped faults are how
        the batch/scalar probe-accounting equivalence is property-tested
        under corruption: flips confined to rows that never steer the
        probe sequence (e.g. the data row) leave the number of probes
        per step a deterministic function of the instance.
    seed:
        Seeds both the up-front fault placement and the transient-flip
        stream; identical configs inject identical faults.
    armed:
        Materialize the fault layer even when every rate is zero and no
        replica is crashed up front.  This is how chaos schedules work:
        the run *starts* healthy but the injector must exist so crashes
        and stuck cells can be injected dynamically mid-run.
    """

    stuck_rate: float = 0.0
    flip_rate: float = 0.0
    crash_rate: float = 0.0
    crashed_replicas: tuple[int, ...] = ()
    faulty_replicas: tuple[int, ...] | None = None
    faulty_rows: tuple[int, ...] | None = None
    seed: int = 0
    armed: bool = False

    def __post_init__(self):
        check_probability("stuck_rate", self.stuck_rate)
        check_probability("flip_rate", self.flip_rate)
        check_probability("crash_rate", self.crash_rate)
        object.__setattr__(
            self, "crashed_replicas",
            tuple(int(r) for r in self.crashed_replicas),
        )
        if self.faulty_replicas is not None:
            object.__setattr__(
                self, "faulty_replicas",
                tuple(int(r) for r in self.faulty_replicas),
            )
        if self.faulty_rows is not None:
            object.__setattr__(
                self, "faulty_rows",
                tuple(int(r) for r in self.faulty_rows),
            )

    @property
    def enabled(self) -> bool:
        """Whether this config materializes a fault layer at all."""
        return bool(
            self.stuck_rate > 0.0
            or self.flip_rate > 0.0
            or self.crash_rate > 0.0
            or self.crashed_replicas
            or self.armed
        )


@dataclasses.dataclass
class FaultStats:
    """Counters maintained by fault-aware query paths."""

    reads: int = 0
    corrupted_reads: int = 0
    crash_hits: int = 0
    retries: int = 0
    backoff_probes: int = 0
    exhausted: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        return dataclasses.asdict(self)


class FaultInjector:
    """A :class:`FaultConfig` materialized against one table geometry.

    The placement of stuck cells and the crashed-replica set are decided
    here, once, from ``config.seed``; transient flips draw from a private
    generator so injection never perturbs query randomness.
    """

    def __init__(
        self, config: FaultConfig, rows: int, s: int, replicas: int = 1
    ):
        self.config = config
        self.rows = int(rows)
        self.s = int(s)
        self.replicas = int(replicas)
        if self.rows % self.replicas:
            raise ValueError(
                f"{self.rows} rows do not split into {self.replicas} replicas"
            )
        self._inner_rows = self.rows // self.replicas
        placement = np.random.default_rng(config.seed)
        #: Private stream for transient flips (query RNG stays untouched).
        self._flip_rng = np.random.default_rng(
            np.random.SeedSequence(config.seed).spawn(1)[0]
        )

        crashed = {
            r for r in config.crashed_replicas if 0 <= r < self.replicas
        }
        crashable = (
            range(self.replicas)
            if config.faulty_replicas is None
            else [r for r in config.faulty_replicas if 0 <= r < self.replicas]
        )
        if config.crash_rate > 0.0:
            draws = placement.random(len(list(crashable)))
            for r, u in zip(crashable, draws):
                if u < config.crash_rate:
                    crashed.add(r)
        self.crashed: frozenset[int] = frozenset(crashed)

        eligible = self._eligible_flat_cells()
        k = int(round(config.stuck_rate * eligible.size))
        if k > 0:
            chosen = placement.choice(eligible, size=k, replace=False)
            self._stuck_cells = np.sort(chosen.astype(np.int64))
            self._stuck_values = placement.integers(
                0, 1 << CELL_BITS, size=k, dtype=np.uint64
            )[np.argsort(chosen, kind="stable")]
        else:
            self._stuck_cells = np.empty(0, dtype=np.int64)
            self._stuck_values = np.empty(0, dtype=np.uint64)
        self._flip_rows = self._eligible_row_mask()

    # -- fault placement ---------------------------------------------------------

    def _eligible_rows(self) -> np.ndarray:
        replicas = (
            range(self.replicas)
            if self.config.faulty_replicas is None
            else [
                r for r in self.config.faulty_replicas
                if 0 <= r < self.replicas
            ]
        )
        inner = (
            range(self._inner_rows)
            if self.config.faulty_rows is None
            else [
                i for i in self.config.faulty_rows
                if 0 <= i < self._inner_rows
            ]
        )
        rows = [
            r * self._inner_rows + i for r in replicas for i in inner
        ]
        return np.asarray(rows, dtype=np.int64)

    def _eligible_flat_cells(self) -> np.ndarray:
        rows = self._eligible_rows()
        return (
            rows[:, None] * self.s + np.arange(self.s, dtype=np.int64)
        ).ravel()

    def _eligible_row_mask(self) -> np.ndarray:
        mask = np.zeros(self.rows, dtype=bool)
        mask[self._eligible_rows()] = True
        return mask

    # -- queries against the fault state ------------------------------------------

    def available(self, replica: int) -> bool:
        """Whether ``replica`` is up (not crashed)."""
        return int(replica) not in self.crashed

    @property
    def num_stuck(self) -> int:
        """Number of stuck-at cells injected."""
        return int(self._stuck_cells.size)

    def is_stuck(self, flat_cell: int) -> bool:
        """Whether ``flat_cell`` is stuck-at a corrupt value."""
        i = int(np.searchsorted(self._stuck_cells, flat_cell))
        return (
            i < self._stuck_cells.size
            and int(self._stuck_cells[i]) == int(flat_cell)
        )

    # -- dynamic fault injection (chaos schedules) --------------------------------

    def crash(self, replica: int) -> None:
        """Crash ``replica`` now (chaos event); idempotent."""
        r = int(replica)
        if not 0 <= r < self.replicas:
            raise ValueError(f"replica {r} out of range [0, {self.replicas})")
        self.crashed = frozenset(self.crashed | {r})

    def revive(self, replica: int) -> None:
        """Bring ``replica`` back (after a rebuild); idempotent."""
        self.crashed = frozenset(self.crashed - {int(replica)})

    def stick(self, flat_cells: np.ndarray, values: np.ndarray) -> None:
        """Make ``flat_cells`` stuck-at ``values`` from now on (chaos event).

        New cells merge into the sorted stuck set; a cell already stuck
        keeps its original value (first damage wins).
        """
        flat_cells = np.asarray(flat_cells, dtype=np.int64)
        values = np.asarray(values, dtype=np.uint64)
        if flat_cells.shape != values.shape:
            raise ValueError("flat_cells and values must have the same shape")
        if flat_cells.size == 0:
            return
        if flat_cells.min() < 0 or flat_cells.max() >= self.rows * self.s:
            raise ValueError("stuck cell index out of range")
        cells = np.concatenate([self._stuck_cells, flat_cells])
        vals = np.concatenate([self._stuck_values, values])
        order = np.argsort(cells, kind="stable")
        cells, vals = cells[order], vals[order]
        keep = np.ones(cells.size, dtype=bool)
        keep[1:] = cells[1:] != cells[:-1]
        self._stuck_cells = cells[keep]
        self._stuck_values = vals[keep]

    # -- corruption --------------------------------------------------------------

    def corrupt(self, row: int, column: int, value: int) -> int:
        """The value a read of ``(row, column)`` observes under faults."""
        flat = row * self.s + column
        i = int(np.searchsorted(self._stuck_cells, flat))
        if i < self._stuck_cells.size and int(self._stuck_cells[i]) == flat:
            return int(self._stuck_values[i])
        if (
            self.config.flip_rate > 0.0
            and self._flip_rows[row]
            and self._flip_rng.random() < self.config.flip_rate
        ):
            bit = int(self._flip_rng.integers(0, CELL_BITS))
            return int(value) ^ (1 << bit)
        return int(value)

    def corrupt_batch(
        self, rows: np.ndarray, columns: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`corrupt` (entries with ``column < 0`` skipped)."""
        values = np.array(values, dtype=np.uint64, copy=True)
        active = columns >= 0
        flat = np.where(active, rows * self.s + columns, -1)
        if self._stuck_cells.size:
            idx = np.searchsorted(self._stuck_cells, flat)
            idx_c = np.minimum(idx, self._stuck_cells.size - 1)
            stuck = active & (self._stuck_cells[idx_c] == flat)
            values[stuck] = self._stuck_values[idx_c[stuck]]
        else:
            stuck = np.zeros(values.shape, dtype=bool)
        if self.config.flip_rate > 0.0:
            flippable = active & ~stuck & self._flip_rows[np.where(active, rows, 0)]
            n = int(flippable.sum())
            if n:
                hit = self._flip_rng.random(n) < self.config.flip_rate
                bits = self._flip_rng.integers(0, CELL_BITS, size=n)
                masks = np.zeros(n, dtype=np.uint64)
                masks[hit] = np.uint64(1) << bits[hit].astype(np.uint64)
                values[flippable] ^= masks
        return values


class FaultyTable:
    """A table facade that injects faults on reads.

    Wraps a :class:`~repro.cellprobe.table.Table` (or anything
    table-shaped, e.g. a replica view): probes are delegated — and
    therefore charged to the real counter at the real cell — and the
    returned values are then passed through the injector.  ``row_offset``
    places a view inside a larger fault domain (replica views share one
    injector spanning all replicas).
    """

    def __init__(self, inner, injector: FaultInjector, row_offset: int = 0):
        self._inner = inner
        self._injector = injector
        self._offset = int(row_offset)
        self.rows = inner.rows
        self.s = inner.s
        self.counter = inner.counter

    # -- charged reads (corrupted) -------------------------------------------------

    def read(self, row: int, column: int, step: int) -> int:
        """Charged read of one cell, corrupted on the way out."""
        value = self._inner.read(row, column, step)
        corrupted = self._injector.corrupt(self._offset + row, column, value)
        if BUS.active and corrupted != value:
            BUS.emit(FaultEvent(kind="read", count=1))
        return corrupted

    def read_batch(self, rows, columns, step: int) -> np.ndarray:
        """Charged vectorized read; entries with ``column < 0`` skipped."""
        columns = np.asarray(columns, dtype=np.int64)
        rows_arr = np.broadcast_to(np.asarray(rows, dtype=np.int64), columns.shape)
        values = self._inner.read_batch(rows_arr, columns, step)
        corrupted = self._injector.corrupt_batch(
            rows_arr + self._offset, columns, values
        )
        if BUS.active:
            changed = int(np.count_nonzero(corrupted != values))
            if changed:
                BUS.emit(FaultEvent(kind="read_batch", count=changed))
        return corrupted

    # -- free accesses (construction/analysis) --------------------------------------

    def write(self, row: int, column: int, value: int) -> None:
        """Uncharged write, delegated to the wrapped table."""
        self._inner.write(row, column, value)

    def write_row(self, row: int, values: np.ndarray) -> None:
        """Uncharged whole-row write, delegated to the wrapped table."""
        self._inner.write_row(row, values)

    def peek(self, row: int, column: int) -> int:
        """Uncharged read showing stuck-at damage but no transient flips.

        Stuck-at damage is physical, so peek shows it; transient flips
        are read noise, so peek does not roll the flip dice.
        """
        value = self._inner.peek(row, column)
        flat = (self._offset + row) * self.s + column
        if self._injector.is_stuck(flat):
            i = int(np.searchsorted(self._injector._stuck_cells, flat))
            return int(self._injector._stuck_values[i])
        return value

    def peek_row(self, row: int) -> np.ndarray:
        """Uncharged whole-row read showing stuck-at damage (no flips).

        This is what the scrubber and rebuilder vote over: persistent
        damage is visible, transient read noise is not re-rolled, and no
        probe lands on the query-path counter.
        """
        values = np.array(self._inner.peek_row(row), dtype=np.uint64, copy=True)
        inj = self._injector
        if inj._stuck_cells.size:
            flats = (self._offset + row) * self.s + np.arange(
                self.s, dtype=np.int64
            )
            idx = np.searchsorted(inj._stuck_cells, flats)
            idx_c = np.minimum(idx, inj._stuck_cells.size - 1)
            stuck = inj._stuck_cells[idx_c] == flats
            values[stuck] = inj._stuck_values[idx_c[stuck]]
        return values

    def flat_index(self, row: int, column: int) -> int:
        """Flat cell index, delegated to the wrapped table."""
        return self._inner.flat_index(row, column)

    @property
    def num_cells(self) -> int:
        """Total cell count of the wrapped table."""
        return self._inner.num_cells

    def occupancy(self) -> float:
        """Occupancy of the wrapped table (faults don't change storage)."""
        return self._inner.occupancy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultyTable({self._inner!r}, stuck={self._injector.num_stuck}, "
            f"crashed={sorted(self._injector.crashed)})"
        )
