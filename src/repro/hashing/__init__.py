"""Hash families built from scratch (paper Section 2.1).

- :mod:`~repro.hashing.polynomial` — Carter–Wegman degree-(d−1)
  polynomials over GF(p): the d-wise independent family ``H^d_m`` [1].
- :mod:`~repro.hashing.dm` — the Dietzfelbinger–Meyer auf der Heide
  family ``R^d_{r,m}`` of Definition 4:
  ``h_{f,g,z}(x) = (f(x) + z_{g(x)}) mod m``.
- :mod:`~repro.hashing.perfect` — FKS-style quadratic-space perfect
  hashing of a single bucket, with single-word packed parameters.
- :mod:`~repro.hashing.multiply_shift` — 2-universal multiply-shift
  (speed/quality comparison baseline).
- :mod:`~repro.hashing.tabulation` — simple tabulation hashing
  (3-independent; extension).

All functions evaluate both scalar (``h(x)``) and vectorized
(``h.eval_batch(xs)``) with exact agreement; the vectorized path is pure
uint64 Horner (primes are capped at ``2**31 - 1`` so products never
overflow — see :mod:`repro.utils.primes`).
"""

from repro.hashing.base import HashFamily, HashFunction
from repro.hashing.dm import DMFamily, DMHashFunction
from repro.hashing.multiply_shift import MultiplyShiftFamily
from repro.hashing.perfect import PerfectHashFunction, find_perfect_hash
from repro.hashing.planted import PlantedBlockFamily, PlantedBlockFunction
from repro.hashing.polynomial import PolynomialFamily, PolynomialHashFunction
from repro.hashing.tabulation import TabulationFamily

__all__ = [
    "HashFamily",
    "HashFunction",
    "PolynomialFamily",
    "PolynomialHashFunction",
    "DMFamily",
    "DMHashFunction",
    "PerfectHashFunction",
    "find_perfect_hash",
    "MultiplyShiftFamily",
    "TabulationFamily",
    "PlantedBlockFamily",
    "PlantedBlockFunction",
]
