"""Hash function / family abstract interfaces.

Two contracts matter to the rest of the library:

1. **Scalar/vector agreement** — ``h(x) == h.eval_batch(np.array([x]))[0]``
   for every key; the contention engine uses the vectorized path, the
   executable query algorithms the scalar one, and property tests pin
   them together.

2. **Word serialization** — a hash function must round-trip through the
   b-bit table cells it is stored in: ``parameter_words()`` yields the
   words the construction writes, and ``Family.from_parameter_words``
   rebuilds the function the query algorithm computes after reading them.
   This is what makes the executable queries *honest*: they use only
   values read from the table.
"""

from __future__ import annotations

import abc

import numpy as np


class HashFunction(abc.ABC):
    """A fixed function ``U -> [m]``."""

    #: Size of the range ``[m]``.
    range_size: int

    @abc.abstractmethod
    def __call__(self, x: int) -> int:
        """Evaluate on a single key."""

    @abc.abstractmethod
    def eval_batch(self, xs: np.ndarray) -> np.ndarray:
        """Evaluate on an int64/uint64 array of keys; returns int64."""

    @abc.abstractmethod
    def parameter_words(self) -> list[int]:
        """The b-bit words encoding this function (for table storage)."""

    def loads(self, keys: np.ndarray) -> np.ndarray:
        """Bucket loads ``l(S, h, i)`` (Definition 5) over the range.

        Returns an int64 array of length ``range_size`` with
        ``loads[i] = |{x in keys : h(x) = i}|``.
        """
        values = self.eval_batch(np.asarray(keys))
        return np.bincount(values, minlength=self.range_size).astype(np.int64)

    def buckets(self, keys: np.ndarray) -> list[np.ndarray]:
        """Bucket contents ``B(S, h, i)`` (Definition 5) over the range."""
        keys = np.asarray(keys)
        values = self.eval_batch(keys)
        order = np.argsort(values, kind="stable")
        sorted_vals = values[order]
        boundaries = np.searchsorted(
            sorted_vals, np.arange(self.range_size + 1, dtype=np.int64)
        )
        return [
            keys[order[boundaries[i] : boundaries[i + 1]]]
            for i in range(self.range_size)
        ]


class HashFamily(abc.ABC):
    """A distribution over hash functions ``U -> [m]``."""

    #: Size of the range ``[m]``.
    range_size: int

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> HashFunction:
        """Draw a uniformly random member of the family."""

    @abc.abstractmethod
    def from_parameter_words(self, words: list[int]) -> HashFunction:
        """Rebuild a member from its stored parameter words."""

    @property
    @abc.abstractmethod
    def words_per_function(self) -> int:
        """How many b-bit words :meth:`HashFunction.parameter_words` uses."""
