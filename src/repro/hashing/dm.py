"""The Dietzfelbinger–Meyer auf der Heide family R^d_{r,m} (Definition 4).

For ``f in H^d_m``, ``g in H^d_r`` and an offset vector ``z in [m]^r``,

    h_{f,g,z}(x) = (f(x) + z_{g(x)}) mod m.

The ``g``-level splits the keys into ``r`` coarse buckets, and each coarse
bucket gets an independent uniform shift ``z_i``; Lemma 9 shows this gives
much better max-load behaviour than a bare d-wise family, which is what
the low-contention construction of Section 2 relies on (the total size of
every group of Θ(log n) buckets is O(log n) with probability 1 − o(1)).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.hashing.base import HashFamily, HashFunction
from repro.hashing.polynomial import PolynomialFamily, PolynomialHashFunction
from repro.utils.validation import check_positive_integer


class DMHashFunction(HashFunction):
    """A fixed member h_{f,g,z} of R^d_{r,m}."""

    __slots__ = ("f", "g", "z", "range_size")

    def __init__(
        self,
        f: PolynomialHashFunction,
        g: PolynomialHashFunction,
        z: np.ndarray,
    ):
        z = np.asarray(z, dtype=np.int64)
        if z.ndim != 1 or z.shape[0] != g.range_size:
            raise ParameterError(
                f"z must have length r = {g.range_size}, got shape {z.shape}"
            )
        if z.size and (int(z.min()) < 0 or int(z.max()) >= f.range_size):
            raise ParameterError("z entries must lie in [0, m)")
        self.f = f
        self.g = g
        self.z = z
        self.range_size = f.range_size

    @property
    def r(self) -> int:
        """Number of coarse g-buckets."""
        return self.g.range_size

    def __call__(self, x: int) -> int:
        return (self.f(x) + int(self.z[self.g(x)])) % self.range_size

    def eval_batch(self, xs: np.ndarray) -> np.ndarray:
        fx = self.f.eval_batch(xs)
        gx = self.g.eval_batch(xs)
        return (fx + self.z[gx]) % self.range_size

    def parameter_words(self) -> list[int]:
        """Words of f then g, then the r entries of z.

        The Section 2 table stores f and g replicated across whole rows and
        z spread over one row at positions congruent mod r; this flat list
        is the canonical order used by :meth:`DMFamily.from_parameter_words`.
        """
        return (
            list(self.f.parameter_words())
            + list(self.g.parameter_words())
            + [int(v) for v in self.z]
        )

    def mod_reduced(self, m: int) -> "DMHashFunction":
        """The function ``h' = h mod m`` as a member of R^d_{r,m}.

        Requires ``m | range_size``; Section 2.2 observes that when
        ``m`` divides ``s``, ``h mod m = (f mod m + z_{g} mod m) mod m``
        is a uniformly random member of R^d_{r,m} when h is uniform over
        R^d_{r,s}.
        """
        if self.range_size % m != 0:
            raise ParameterError(
                f"m={m} must divide range_size={self.range_size}"
            )
        f_mod = PolynomialHashFunction(self.f.prime, m, self.f.parameter_words())
        return DMHashFunction(f_mod, self.g, self.z % m)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DMHashFunction(m={self.range_size}, r={self.r}, "
            f"d={self.f.degree})"
        )


class DMFamily(HashFamily):
    """The family R^d_{r,m} = {h_{f,g,z}}.

    Parameters
    ----------
    prime:
        Field prime shared by the inner polynomial families (must be at
        least the universe size).
    range_size:
        The target range ``[m]``.
    r:
        Number of coarse g-buckets.
    degree:
        Independence degree ``d`` of both f and g.
    """

    def __init__(self, prime: int, range_size: int, r: int, degree: int):
        self.range_size = check_positive_integer("range_size", range_size)
        self.r = check_positive_integer("r", r)
        self.degree = check_positive_integer("degree", degree)
        self.f_family = PolynomialFamily(prime, range_size, degree)
        self.g_family = PolynomialFamily(prime, r, degree)

    @property
    def prime(self) -> int:
        return self.f_family.prime

    def sample(self, rng: np.random.Generator) -> DMHashFunction:
        f = self.f_family.sample(rng)
        g = self.g_family.sample(rng)
        z = rng.integers(0, self.range_size, size=self.r)
        return DMHashFunction(f, g, z)

    def from_parameter_words(self, words: list[int]) -> DMHashFunction:
        expected = 2 * self.degree + self.r
        if len(words) != expected:
            raise ParameterError(
                f"expected {expected} parameter words, got {len(words)}"
            )
        d = self.degree
        f = self.f_family.from_parameter_words(words[:d])
        g = self.g_family.from_parameter_words(words[d : 2 * d])
        z = np.asarray(words[2 * d :], dtype=np.int64)
        return DMHashFunction(f, g, z)

    @property
    def words_per_function(self) -> int:
        return 2 * self.degree + self.r

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DMFamily(m={self.range_size}, r={self.r}, d={self.degree}, "
            f"p={self.prime})"
        )
