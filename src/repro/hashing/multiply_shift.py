"""Multiply-shift hashing (Dietzfelbinger et al.): 2-universal, power-of-two ranges.

``h_a(x) = (a * x mod 2**w) >> (w - log2 m)`` with odd multiplier ``a`` is
2-universal (collision probability <= 2/m) for ``m`` a power of two.  It is
not used by the paper's construction (which needs d-wise independence and
exact uniformity); it serves as a comparison baseline in the experiments
— e.g. measuring how a weaker family distorts bucket loads and hence
contention — and as a fast default for the linear-probing baseline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.hashing.base import HashFamily, HashFunction

_WORD = 64


class MultiplyShiftFunction(HashFunction):
    """A fixed multiply-shift function with odd 64-bit multiplier."""

    __slots__ = ("multiplier", "range_size", "_shift")

    def __init__(self, multiplier: int, range_size: int):
        if multiplier % 2 == 0 or not 0 < multiplier < (1 << _WORD):
            raise ParameterError("multiplier must be odd and fit 64 bits")
        log_m = range_size.bit_length() - 1
        if range_size < 1 or (1 << log_m) != range_size:
            raise ParameterError(
                f"range_size must be a power of two, got {range_size}"
            )
        self.multiplier = multiplier
        self.range_size = range_size
        self._shift = _WORD - log_m

    def __call__(self, x: int) -> int:
        if self.range_size == 1:
            return 0
        return ((self.multiplier * int(x)) % (1 << _WORD)) >> self._shift

    def eval_batch(self, xs: np.ndarray) -> np.ndarray:
        if self.range_size == 1:
            return np.zeros(np.asarray(xs).shape, dtype=np.int64)
        x = np.asarray(xs).astype(np.uint64)
        # uint64 multiplication wraps mod 2**64, which is exactly the
        # multiply-shift definition; silence the expected overflow warning.
        with np.errstate(over="ignore"):
            v = np.uint64(self.multiplier) * x
        return (v >> np.uint64(self._shift)).astype(np.int64)

    def parameter_words(self) -> list[int]:
        return [self.multiplier]


class MultiplyShiftFamily(HashFamily):
    """Uniformly random odd multipliers; ``range_size`` a power of two."""

    def __init__(self, range_size: int):
        log_m = range_size.bit_length() - 1
        if range_size < 1 or (1 << log_m) != range_size:
            raise ParameterError(
                f"range_size must be a power of two, got {range_size}"
            )
        self.range_size = range_size

    def sample(self, rng: np.random.Generator) -> MultiplyShiftFunction:
        a = int(rng.integers(0, 1 << 63)) * 2 + 1
        return MultiplyShiftFunction(a, self.range_size)

    def from_parameter_words(self, words: list[int]) -> MultiplyShiftFunction:
        if len(words) != 1:
            raise ParameterError(f"expected 1 parameter word, got {len(words)}")
        return MultiplyShiftFunction(int(words[0]), self.range_size)

    @property
    def words_per_function(self) -> int:
        return 1
