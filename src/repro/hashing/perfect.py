"""FKS-style per-bucket perfect hashing with single-word parameters.

A bucket of load ``l`` owns ``l**2`` cells (Section 2.2 / FKS [8]); a
random 2-universal function ``h*(x) = ((a*x + c) mod p) mod l**2`` is
injective on the bucket with probability at least 1/2 (birthday bound:
``C(l,2)/l**2 <= 1/2``), so rejection sampling finds a perfect hash in
expected <= 2 trials.  Both parameters are residues mod ``p < 2**31``, so
``(a, c)`` packs into one 64-bit table cell (:func:`repro.utils.bits.pack_pair`)
— the paper stores "the perfect hash function h*_i ... repeatedly in the
space owned by the bucket", one word per cell.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConstructionError, ParameterError
from repro.hashing.base import HashFunction
from repro.utils.bits import pack_pair, unpack_pair
from repro.utils.primes import MAX_VECTOR_PRIME, is_prime


class PerfectHashFunction(HashFunction):
    """``h*(x) = ((a*x + c) mod p) mod range_size`` packed into one word."""

    __slots__ = ("prime", "a", "c", "range_size")

    def __init__(self, prime: int, a: int, c: int, range_size: int):
        if not is_prime(prime) or prime > MAX_VECTOR_PRIME:
            raise ParameterError(f"invalid prime {prime}")
        if not (0 <= a < prime and 0 <= c < prime):
            raise ParameterError("parameters must lie in [0, prime)")
        if range_size < 1:
            raise ParameterError("range_size must be positive")
        self.prime = prime
        self.a = a
        self.c = c
        self.range_size = range_size

    def __call__(self, x: int) -> int:
        return ((self.a * (int(x) % self.prime) + self.c) % self.prime) % self.range_size

    def eval_batch(self, xs: np.ndarray) -> np.ndarray:
        x = np.asarray(xs).astype(np.uint64) % np.uint64(self.prime)
        v = (np.uint64(self.a) * x + np.uint64(self.c)) % np.uint64(self.prime)
        return (v % np.uint64(self.range_size)).astype(np.int64)

    def parameter_words(self) -> list[int]:
        return [self.packed_word()]

    def packed_word(self) -> int:
        """Both parameters packed into a single 64-bit cell value."""
        return pack_pair(self.a, self.c)

    @classmethod
    def from_packed_word(
        cls, word: int, prime: int, range_size: int
    ) -> "PerfectHashFunction":
        """Rebuild from a table cell; the query knows ``prime``/``range_size``
        (the former is a scheme constant, the latter comes from the decoded
        group histogram).  Parameters are reduced mod ``prime``: words
        written by construction are always in range, but a corrupted cell
        (:mod:`repro.faults`) may decode out of range, and a query must
        degrade to a wrong answer — never a crash — matching the batch
        path, which reduces implicitly."""
        a, c = unpack_pair(int(word))
        return cls(prime, a % prime, c % prime, range_size)

    def is_perfect_on(self, keys: np.ndarray) -> bool:
        """Whether this function is injective on ``keys``."""
        keys = np.asarray(keys)
        if keys.size <= 1:
            return True
        values = self.eval_batch(keys)
        return np.unique(values).size == values.size


def find_perfect_hash(
    keys: np.ndarray,
    prime: int,
    range_size: int,
    rng: np.random.Generator,
    max_trials: int = 1000,
) -> tuple[PerfectHashFunction, int]:
    """Rejection-sample a perfect hash of ``keys`` into ``[range_size]``.

    Returns ``(function, trials_used)``.  With ``range_size >= len(keys)**2``
    the expected number of trials is <= 2; ``max_trials`` is a safety net
    whose exhaustion (probability <= 2**-max_trials under correct sizing)
    raises :class:`ConstructionError`.
    """
    keys = np.asarray(keys)
    if range_size < max(1, keys.size):
        raise ParameterError(
            f"range_size={range_size} cannot perfectly hash {keys.size} keys"
        )
    for trial in range(1, max_trials + 1):
        a = int(rng.integers(0, prime))
        c = int(rng.integers(0, prime))
        h = PerfectHashFunction(prime, a, c, range_size)
        if h.is_perfect_on(keys):
            return h, trial
    raise ConstructionError(
        f"no perfect hash found for {keys.size} keys into [{range_size}] "
        f"after {max_trials} trials"
    )
