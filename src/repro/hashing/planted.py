"""A near-2-universal family with planted heavy buckets.

Section 1.3 credits replicated FKS with maximum contention
"Theta(sqrt(n)) times optimal" — a *worst-case over the family* bound.
Random polynomial instances never exhibit it (E5's calibration note):
their buckets behave almost fully randomly.  This module constructs the
bad case explicitly, in the spirit of lower-bound instances:

``PlantedBlockFamily`` wraps a base 2-universal family.  The key set S
is partitioned into ``sqrt(n)``-sized *blocks*; a sampled function
activates with probability ``activation_prob`` (default ``1/sqrt(n)``),
in which case one uniformly chosen block is mapped entirely to bucket
0 while everything else hashes through an independent base function.

Universality accounting (why FKS-style constructions accept it):

- pairs inside one block collide with probability
  ``activation_prob / num_blocks + O(1/m)`` — choosing
  ``activation_prob = 1/sqrt(n)`` and ``num_blocks = sqrt(n)`` makes
  this ``O(1/n) = O(1/m)``: the family is 2-universal up to a constant;
- an *activated* function still satisfies the FKS condition
  (``sum of squared loads <= n + O(n)``), so rejection sampling on
  sum-of-squares accepts it — yet its bucket 0 holds ``sqrt(n)`` keys,
  and the bucket-header cell inherits query mass ``sqrt(n)/n``:
  contention ``Theta(sqrt(n))`` times optimal, exactly the §1.3 figure.

E16 builds FKS over this family with activation forced, sweeps n, and
fits the sqrt(n) law the random-instance experiment cannot see.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.hashing.base import HashFamily, HashFunction
from repro.hashing.perfect import PerfectHashFunction
from repro.utils.primes import MAX_VECTOR_PRIME, is_prime
from repro.utils.rng import as_generator


class PlantedBlockFunction(HashFunction):
    """One member: optionally maps a designated key block to bucket 0."""

    __slots__ = ("base", "block", "_block_sorted", "range_size")

    def __init__(self, base: PerfectHashFunction, block: np.ndarray | None):
        self.base = base
        self.range_size = base.range_size
        if block is None:
            self.block = None
            self._block_sorted = None
        else:
            self.block = np.asarray(block, dtype=np.int64)
            self._block_sorted = np.sort(self.block)

    @property
    def activated(self) -> bool:
        return self.block is not None

    def _in_block(self, xs: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self._block_sorted, xs)
        idx_c = np.minimum(idx, self._block_sorted.size - 1)
        return (idx < self._block_sorted.size) & (
            self._block_sorted[idx_c] == xs
        )

    def __call__(self, x: int) -> int:
        if self.activated and bool(
            self._in_block(np.asarray([int(x)], dtype=np.int64))[0]
        ):
            return 0
        return self.base(x)

    def eval_batch(self, xs: np.ndarray) -> np.ndarray:
        out = self.base.eval_batch(xs)
        if self.activated:
            hot = self._in_block(np.asarray(xs, dtype=np.int64))
            out = np.where(hot, 0, out)
        return out

    def parameter_words(self) -> list[int]:
        # The planted block is instance metadata; honest query
        # algorithms only need the base parameters (membership answers
        # are unchanged by WHICH bucket a key sits in — the table layout
        # encodes it).  We expose base words plus an activation marker.
        return [self.base.packed_word(), 1 if self.activated else 0]


class PlantedBlockFamily(HashFamily):
    """The family; 2-universal up to a constant, with heavy-bucket tail.

    Parameters
    ----------
    prime:
        Field prime for the base (a, c) family (>= universe size).
    range_size:
        Number of buckets m.
    keys:
        The adversarial key set S whose blocks may be planted.
    block_size:
        Heavy-block size (default round(sqrt(|S|))).
    activation_prob:
        Probability a sampled function is activated (default
        1/block_size, the largest value keeping 2-universality).
    """

    def __init__(
        self,
        prime: int,
        range_size: int,
        keys,
        block_size: int | None = None,
        activation_prob: float | None = None,
    ):
        if not is_prime(prime) or prime > MAX_VECTOR_PRIME:
            raise ParameterError(f"invalid prime {prime}")
        self.prime = prime
        self.range_size = int(range_size)
        self.keys = np.asarray(sorted(int(k) for k in keys), dtype=np.int64)
        n = self.keys.size
        if n < 4:
            raise ParameterError("need at least 4 keys to plant blocks")
        self.block_size = (
            max(2, round(float(np.sqrt(n))))
            if block_size is None
            else int(block_size)
        )
        if not 2 <= self.block_size <= n:
            raise ParameterError("block_size must be in [2, n]")
        self.num_blocks = n // self.block_size
        if self.num_blocks < 1:
            raise ParameterError("block_size too large for the key set")
        self.activation_prob = (
            1.0 / self.block_size
            if activation_prob is None
            else float(activation_prob)
        )
        if not 0.0 <= self.activation_prob <= 1.0:
            raise ParameterError("activation_prob must be in [0, 1]")

    def _base(self, rng: np.random.Generator) -> PerfectHashFunction:
        a = int(rng.integers(0, self.prime))
        c = int(rng.integers(0, self.prime))
        return PerfectHashFunction(self.prime, a, c, self.range_size)

    def _block(self, index: int) -> np.ndarray:
        start = index * self.block_size
        return self.keys[start : start + self.block_size]

    def sample(self, rng: np.random.Generator) -> PlantedBlockFunction:
        base = self._base(rng)
        if rng.random() < self.activation_prob:
            block = self._block(int(rng.integers(0, self.num_blocks)))
            return PlantedBlockFunction(base, block)
        return PlantedBlockFunction(base, None)

    def sample_activated(self, rng=None) -> PlantedBlockFunction:
        """Sample conditioned on activation (the worst-case instance)."""
        rng = as_generator(rng)
        base = self._base(rng)
        block = self._block(int(rng.integers(0, self.num_blocks)))
        return PlantedBlockFunction(base, block)

    def from_parameter_words(self, words: list[int]) -> PlantedBlockFunction:
        if len(words) != 2:
            raise ParameterError("expected 2 parameter words")
        base = PerfectHashFunction.from_packed_word(
            int(words[0]), self.prime, self.range_size
        )
        # Reconstruction of the planted block is not possible from the
        # words alone (it is adversary state); queries never need it.
        return PlantedBlockFunction(base, None)

    @property
    def words_per_function(self) -> int:
        return 2

    def pairwise_collision_bound(self) -> float:
        """Upper bound on Pr[h(x) = h(y)] over the family.

        Same-block pairs: activation_prob / num_blocks (both in the
        chosen block) + base collision 1/m; others: 1/m + boundary
        terms.  With defaults this is <= 2/m + O(m/p): 2-universal up
        to a factor 2.
        """
        return (
            self.activation_prob / self.num_blocks
            + 1.0 / self.range_size
            + self.range_size / self.prime
        )
