"""Carter–Wegman polynomial hashing: the d-wise independent family H^d_m.

A uniformly random polynomial of degree ``d-1`` over GF(p),

    h(x) = ((a_{d-1} x^{d-1} + ... + a_1 x + a_0) mod p) mod m,

is exactly d-wise independent as a map ``[p] -> [p]``; the final ``mod m``
reduction introduces the usual O(m/p) deviation from uniformity, which is
negligible for our parameter ranges (p >= N >= n**2 while m <= O(n)) and
is quantified empirically in the test suite.

The vectorized evaluation is uint64 Horner with reduction after every
multiply-add; since ``p <= MAX_VECTOR_PRIME < 2**31``, all intermediates
fit in 63 bits (guide: vectorize the loop over *keys*, not the loop over
the d coefficients, which is O(1)).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.hashing.base import HashFamily, HashFunction
from repro.utils.primes import MAX_VECTOR_PRIME, is_prime
from repro.utils.validation import check_positive_integer


class PolynomialHashFunction(HashFunction):
    """A fixed degree-(d−1) polynomial over GF(p), reduced mod m."""

    __slots__ = ("prime", "range_size", "coefficients")

    def __init__(self, prime: int, range_size: int, coefficients):
        if not is_prime(prime):
            raise ParameterError(f"{prime} is not prime")
        if prime > MAX_VECTOR_PRIME:
            raise ParameterError(
                f"prime {prime} exceeds MAX_VECTOR_PRIME={MAX_VECTOR_PRIME}"
            )
        self.prime = prime
        self.range_size = check_positive_integer("range_size", range_size)
        coeffs = [int(c) for c in coefficients]
        if not coeffs:
            raise ParameterError("at least one coefficient required")
        if any(not 0 <= c < prime for c in coeffs):
            raise ParameterError("coefficients must lie in [0, prime)")
        # Stored lowest-degree first: coefficients[i] multiplies x**i.
        self.coefficients = tuple(coeffs)

    @property
    def degree(self) -> int:
        """Independence degree d (= number of coefficients)."""
        return len(self.coefficients)

    def __call__(self, x: int) -> int:
        x = int(x) % self.prime
        acc = 0
        for c in reversed(self.coefficients):
            acc = (acc * x + c) % self.prime
        return acc % self.range_size

    def eval_batch(self, xs: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs)
        if xs.size and int(xs.min(initial=0)) < 0:
            raise ParameterError("keys must be non-negative")
        x = xs.astype(np.uint64) % np.uint64(self.prime)
        acc = np.zeros(x.shape, dtype=np.uint64)
        p = np.uint64(self.prime)
        for c in reversed(self.coefficients):
            acc = (acc * x + np.uint64(c)) % p
        return (acc % np.uint64(self.range_size)).astype(np.int64)

    def parameter_words(self) -> list[int]:
        return list(self.coefficients)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PolynomialHashFunction(p={self.prime}, m={self.range_size}, "
            f"d={self.degree})"
        )


def horner_eval_batch(
    word_arrays: list[np.ndarray],
    xs: np.ndarray,
    prime: int,
    range_size: int,
) -> np.ndarray:
    """Evaluate per-query polynomials whose coefficients come from probes.

    ``word_arrays[i]`` holds, for every query in the batch, the coefficient
    of ``x**i`` as read back from the table (lowest-degree first, matching
    :meth:`PolynomialHashFunction.parameter_words`).  All words must already
    lie in ``[0, prime)``; with ``prime < 2**31`` the uint64 Horner
    intermediates cannot overflow.  Returns int64 values in
    ``[0, range_size)``.
    """
    xs = np.asarray(xs, dtype=np.uint64)
    p = np.uint64(prime)
    x = xs % p
    acc = np.zeros(x.shape, dtype=np.uint64)
    for words in reversed(word_arrays):
        acc = (acc * x + np.asarray(words, dtype=np.uint64) % p) % p
    return (acc % np.uint64(range_size)).astype(np.int64)


class PolynomialFamily(HashFamily):
    """The family H^d_m: uniformly random degree-(d−1) polynomials.

    Parameters
    ----------
    prime:
        Field size; must satisfy ``prime >= universe size`` for genuine
        d-wise independence on the universe.
    range_size:
        The target range ``[m]``.
    degree:
        Independence degree ``d >= 1`` (number of coefficients).
    """

    def __init__(self, prime: int, range_size: int, degree: int):
        if not is_prime(prime):
            raise ParameterError(f"{prime} is not prime")
        if prime > MAX_VECTOR_PRIME:
            raise ParameterError(
                f"prime {prime} exceeds MAX_VECTOR_PRIME={MAX_VECTOR_PRIME}"
            )
        self.prime = prime
        self.range_size = check_positive_integer("range_size", range_size)
        self.degree = check_positive_integer("degree", degree)

    def sample(self, rng: np.random.Generator) -> PolynomialHashFunction:
        coeffs = rng.integers(0, self.prime, size=self.degree)
        return PolynomialHashFunction(self.prime, self.range_size, coeffs.tolist())

    def from_parameter_words(self, words: list[int]) -> PolynomialHashFunction:
        if len(words) != self.degree:
            raise ParameterError(
                f"expected {self.degree} parameter words, got {len(words)}"
            )
        return PolynomialHashFunction(self.prime, self.range_size, words)

    @property
    def words_per_function(self) -> int:
        return self.degree

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PolynomialFamily(p={self.prime}, m={self.range_size}, "
            f"d={self.degree})"
        )
