"""Simple tabulation hashing (Zobrist / Patrascu–Thorup): 3-independent.

The key is split into ``chars`` c-bit characters; each character position
has a table of ``2**c`` random values, XORed together:

    h(x) = T_0[x_0] XOR T_1[x_1] XOR ... XOR T_{k-1}[x_{k-1}]  (mod m)

Simple tabulation is 3-independent and behaves like a fully random
function for many load-balancing quantities (Patrascu & Thorup 2012); the
experiments use it as a "nearly ideal" comparator for bucket-load tails
(E7) against the polynomial and DM families the paper analyzes.

Storage note: the tables occupy ``chars * 2**c`` words, so tabulation is
*not* a constant-word family — its `parameter_words` are the flattened
tables, and replicating them is exactly the kind of space cost the paper's
design avoids.  It is an extension baseline, not part of the Section 2
construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.hashing.base import HashFamily, HashFunction
from repro.utils.validation import check_positive_integer


class TabulationHashFunction(HashFunction):
    """A fixed simple-tabulation function."""

    __slots__ = ("tables", "char_bits", "range_size")

    def __init__(self, tables: np.ndarray, char_bits: int, range_size: int):
        tables = np.asarray(tables, dtype=np.uint64)
        if tables.ndim != 2 or tables.shape[1] != (1 << char_bits):
            raise ParameterError(
                f"tables must have shape (chars, 2**{char_bits})"
            )
        self.tables = tables
        self.char_bits = check_positive_integer("char_bits", char_bits)
        self.range_size = check_positive_integer("range_size", range_size)

    @property
    def chars(self) -> int:
        return self.tables.shape[0]

    def __call__(self, x: int) -> int:
        x = int(x)
        acc = 0
        mask = (1 << self.char_bits) - 1
        for i in range(self.chars):
            acc ^= int(self.tables[i, (x >> (i * self.char_bits)) & mask])
        return acc % self.range_size

    def eval_batch(self, xs: np.ndarray) -> np.ndarray:
        x = np.asarray(xs).astype(np.uint64)
        acc = np.zeros(x.shape, dtype=np.uint64)
        mask = np.uint64((1 << self.char_bits) - 1)
        for i in range(self.chars):
            chars = (x >> np.uint64(i * self.char_bits)) & mask
            acc ^= self.tables[i, chars.astype(np.int64)]
        return (acc % np.uint64(self.range_size)).astype(np.int64)

    def parameter_words(self) -> list[int]:
        return [int(v) for v in self.tables.ravel()]


class TabulationFamily(HashFamily):
    """Random simple-tabulation functions over ``chars`` c-bit characters."""

    def __init__(self, range_size: int, char_bits: int = 8, chars: int = 4):
        self.range_size = check_positive_integer("range_size", range_size)
        self.char_bits = check_positive_integer("char_bits", char_bits)
        self.chars = check_positive_integer("chars", chars)

    @property
    def universe_bits(self) -> int:
        """Number of key bits this family inspects."""
        return self.char_bits * self.chars

    def sample(self, rng: np.random.Generator) -> TabulationHashFunction:
        tables = rng.integers(
            0, 1 << 63, size=(self.chars, 1 << self.char_bits), dtype=np.int64
        ).astype(np.uint64)
        return TabulationHashFunction(tables, self.char_bits, self.range_size)

    def from_parameter_words(self, words: list[int]) -> TabulationHashFunction:
        expected = self.chars * (1 << self.char_bits)
        if len(words) != expected:
            raise ParameterError(
                f"expected {expected} parameter words, got {len(words)}"
            )
        tables = np.asarray(words, dtype=np.uint64).reshape(
            self.chars, 1 << self.char_bits
        )
        return TabulationHashFunction(tables, self.char_bits, self.range_size)

    @property
    def words_per_function(self) -> int:
        return self.chars * (1 << self.char_bits)
