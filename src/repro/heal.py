"""Cell scrubbing and replica rebuild: the repair half of self-healing.

The paper's model keeps probe accounting *exact*: only query-time reads
are charged, each to the cell it touched (DESIGN.md conventions).  A
self-healing layer must do real read work — scanning cells, voting
across replicas, reconstructing a crashed replica — without polluting
the query-path :class:`~repro.cellprobe.counters.ProbeCounter` that the
Binomial(Q, Φ_t) envelope and the E15 Θ(1/R) price are stated over.

The rules, enforced here:

- All repair-path reads go through ``peek_row`` (uncharged by
  construction) and are then charged **explicitly, cell by cell, to a
  separate repair counter** — the same :class:`ProbeCounter` substrate,
  same cell geometry, mergeable into any other counter for a
  whole-system accounting.  Repair work is measurable, never hidden,
  and never attributed to queries.
- Canary queries run the *real* query algorithm but with the table's
  counter temporarily swapped to the repair counter via
  :func:`charged_to` — charging flows through ``Table.read``'s live
  ``counter`` attribute, so the swap reroutes every probe of the
  execution and nothing else.
- Repair *writes* go through ``Table.write``/``write_row`` and are
  tallied as construction work (``table.writes``), exactly like the
  offline build they re-do.

Corruption detection is cross-replica majority vote: reading one inner
row across ``V >= 3`` trusted replicas and sorting the stack column-wise
puts the majority value at the middle element whenever a strict
majority agrees — deviants are repaired in place.  A cell that diverges
*again* after being repaired is physically stuck-at (the damage is in
the read path, not the stored word), is recorded in
:attr:`CellScrubber.stuck`, and its replica must be quarantined for
good: no amount of rewriting fixes a stuck cell.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager

import numpy as np

from repro.cellprobe.counters import ProbeCounter
from repro.errors import HealError

__all__ = [
    "CellScrubber",
    "HealStats",
    "ReplicaRebuilder",
    "ScrubReport",
    "charged_to",
]


@contextmanager
def charged_to(table, counter: ProbeCounter):
    """Temporarily charge every probe of ``table`` to ``counter``.

    ``Table.read``/``read_batch`` record through the table's live
    ``counter`` attribute, so swapping it reroutes the full probe stream
    of anything executed inside the block (canary queries, verification
    reads) to the repair counter — and restores the query-path counter
    on exit no matter what.
    """
    if counter.num_cells != table.num_cells:
        raise HealError(
            f"repair counter tracks {counter.num_cells} cells, "
            f"table has {table.num_cells}"
        )
    original = table.counter
    table.counter = counter
    try:
        yield counter
    finally:
        table.counter = original


@dataclasses.dataclass
class ScrubReport:
    """What one scrub/rebuild increment did (all lists of ``(replica, inner_flat)``)."""

    rows_scanned: int = 0
    cells_scanned: int = 0
    probes: int = 0
    repaired: list = dataclasses.field(default_factory=list)
    stuck: list = dataclasses.field(default_factory=list)
    #: For targeted scans: whether the full pass over the target completed.
    done: bool = False


@dataclasses.dataclass
class HealStats:
    """Aggregate healing work, reported by the health manager."""

    cells_scanned: int = 0
    cells_repaired: int = 0
    stuck_cells: int = 0
    rows_rebuilt: int = 0
    rebuilds: int = 0
    canary_queries: int = 0
    canary_probes: int = 0
    canary_failures: int = 0
    quarantines: int = 0
    repair_probes: int = 0

    def row(self) -> dict:
        """Flat dict for experiment tables."""
        return dataclasses.asdict(self)


def _peek_and_charge(dictionary, counter: ProbeCounter, replicas, inner_row):
    """Read one inner row across ``replicas``; charge one repair probe per cell.

    Returns the ``(len(replicas), s)`` value stack.  Reads go through the
    dictionary's fault-aware read table, so persistent stuck-at damage is
    visible (transient flip noise is not re-rolled — scrub hunts physical
    damage, not read noise).
    """
    table = dictionary._read_table
    s = dictionary.table.s
    columns = np.arange(s, dtype=np.int64)
    stack = np.empty((len(replicas), s), dtype=np.uint64)
    for i, r in enumerate(replicas):
        outer = dictionary.replica_row(r, inner_row)
        stack[i] = table.peek_row(outer)
        counter.record_batch(0, outer * s + columns)
    return stack


def _majority(stack: np.ndarray) -> np.ndarray:
    """Column-wise majority value of a ``(V, s)`` stack.

    Sorting each column puts the majority value at the middle element
    whenever a strict majority of the V rows agree — the only regime the
    vote is guaranteed in.
    """
    return np.sort(stack, axis=0)[stack.shape[0] // 2]


class CellScrubber:
    """Walks cells in bounded increments, votes across replicas, repairs.

    Two scan modes share one repair ledger:

    - :meth:`scrub_chunk` — the *background* scan: every trusted replica
      is read and voted, deviants on any of them repaired in place.
      Advances a wrapping row cursor by ``rows_per_chunk`` per call, so
      each call does O(rows_per_chunk * V * s) bounded work.
    - :meth:`scrub_replica` — the *targeted* scan of one quarantined
      replica against trusted voters; a full pass (``done=True``) means
      every repairable divergence on it has been repaired.

    A cell repaired once that diverges again is **stuck** (physical
    read-path damage): it joins :attr:`stuck`, is never rewritten again,
    and its replica should be quarantined for good.
    """

    def __init__(
        self,
        dictionary,
        counter: ProbeCounter,
        rows_per_chunk: int = 4,
        max_repairs: int = 1,
    ):
        if counter.num_cells != dictionary.table.num_cells:
            raise HealError(
                f"repair counter tracks {counter.num_cells} cells, "
                f"dictionary table has {dictionary.table.num_cells}"
            )
        if rows_per_chunk < 1:
            raise HealError("rows_per_chunk must be >= 1")
        self.dictionary = dictionary
        self.counter = counter
        self.rows_per_chunk = int(rows_per_chunk)
        self.max_repairs = int(max_repairs)
        self._cursor = 0
        self._target_cursors: dict[int, int] = {}
        self.full_passes = 0
        self._repair_counts: dict[tuple[int, int], int] = {}
        #: ``(replica, inner_flat)`` cells diagnosed stuck-at (incorrigible).
        self.stuck: set[tuple[int, int]] = set()

    @property
    def inner_rows(self) -> int:
        return self.dictionary.inner_rows

    @property
    def s(self) -> int:
        return self.dictionary.table.s

    def replica_has_stuck(self, replica: int) -> bool:
        """Whether any cell of ``replica`` has been diagnosed stuck."""
        return any(r == int(replica) for r, _ in self.stuck)

    def _scrub_row(self, inner_row, voters, targets, report: ScrubReport):
        replicas = list(dict.fromkeys(list(voters) + list(targets)))
        stack = _peek_and_charge(
            self.dictionary, self.counter, replicas, inner_row
        )
        report.rows_scanned += 1
        report.cells_scanned += int(stack.size)
        report.probes += int(stack.size)
        vidx = [replicas.index(r) for r in voters]
        maj = _majority(stack[vidx])
        for i, r in enumerate(replicas):
            deviant = np.nonzero(stack[i] != maj)[0]
            for col in deviant:
                key = (int(r), inner_row * self.s + int(col))
                if key in self.stuck:
                    continue
                repaired_before = self._repair_counts.get(key, 0)
                if repaired_before >= self.max_repairs:
                    # Rewritten already and diverged again: the damage is
                    # in the read path, not the stored word — stuck-at.
                    self.stuck.add(key)
                    report.stuck.append(key)
                    continue
                self.dictionary.table.write(
                    self.dictionary.replica_row(r, inner_row),
                    int(col),
                    int(maj[int(col)]),
                )
                self._repair_counts[key] = repaired_before + 1
                report.repaired.append(key)

    def scrub_chunk(self, voters) -> ScrubReport:
        """Advance the background scan by one bounded increment.

        ``voters`` are the currently-trusted replicas; with fewer than 3
        the vote cannot attribute a deviant and the call is a no-op
        (healing resumes once enough replicas are trusted again).
        """
        report = ScrubReport()
        voters = sorted({int(r) for r in voters})
        if len(voters) < 3:
            return report
        for _ in range(min(self.rows_per_chunk, self.inner_rows)):
            self._scrub_row(self._cursor, voters, [], report)
            self._cursor += 1
            if self._cursor >= self.inner_rows:
                self._cursor = 0
                self.full_passes += 1
        return report

    def scrub_replica(self, replica, voters) -> ScrubReport:
        """Advance the targeted scan of one quarantined ``replica``.

        Reads the target alongside ``voters`` (target excluded from the
        vote), repairing its deviants; ``done=True`` once the pass covers
        every row, after which the caller should canary the replica.
        """
        replica = int(replica)
        voters = sorted({int(r) for r in voters} - {replica})
        if len(voters) < 3:
            raise HealError(
                f"targeted scrub of replica {replica} needs >= 3 trusted "
                f"voters, have {len(voters)}"
            )
        report = ScrubReport()
        cursor = self._target_cursors.get(replica, 0)
        end = min(cursor + self.rows_per_chunk, self.inner_rows)
        while cursor < end:
            self._scrub_row(cursor, voters, [replica], report)
            cursor += 1
        if cursor >= self.inner_rows:
            report.done = True
            self._target_cursors[replica] = 0
        else:
            self._target_cursors[replica] = cursor
        return report


class ReplicaRebuilder:
    """Reconstructs a crashed replica's rows from surviving majorities.

    One rebuild at a time: :meth:`start` pins the target, each
    :meth:`step` rewrites ``rows_per_chunk`` rows from the column-wise
    majority of the source replicas (every source read charged to the
    repair counter) and returns True once the last row is written.  The
    vote is guaranteed correct when a strict majority of the sources is
    healthy; the caller's canary gate protects re-admission either way.
    """

    def __init__(self, dictionary, counter: ProbeCounter, rows_per_chunk: int = 16):
        if counter.num_cells != dictionary.table.num_cells:
            raise HealError(
                f"repair counter tracks {counter.num_cells} cells, "
                f"dictionary table has {dictionary.table.num_cells}"
            )
        if rows_per_chunk < 1:
            raise HealError("rows_per_chunk must be >= 1")
        self.dictionary = dictionary
        self.counter = counter
        self.rows_per_chunk = int(rows_per_chunk)
        self.target: int | None = None
        self._cursor = 0
        self.rows_rebuilt = 0
        self.rebuilds_started = 0
        self.rebuilds_completed = 0

    @property
    def active(self) -> bool:
        """Whether a rebuild is in progress."""
        return self.target is not None

    def start(self, replica: int) -> None:
        """Begin rebuilding ``replica`` from row 0."""
        replica = int(replica)
        if self.target is not None and self.target != replica:
            raise HealError(
                f"rebuild of replica {self.target} already in progress"
            )
        if self.target != replica:
            self.rebuilds_started += 1
        self.target = replica
        self._cursor = 0

    def step(self, sources) -> bool:
        """Rebuild up to ``rows_per_chunk`` rows; True when complete."""
        if self.target is None:
            raise HealError("no rebuild in progress")
        sources = sorted({int(r) for r in sources} - {self.target})
        if not sources:
            raise HealError(
                f"rebuild of replica {self.target} has no surviving sources"
            )
        d = self.dictionary
        end = min(self._cursor + self.rows_per_chunk, d.inner_rows)
        while self._cursor < end:
            stack = _peek_and_charge(d, self.counter, sources, self._cursor)
            d.table.write_row(
                d.replica_row(self.target, self._cursor), _majority(stack)
            )
            self.rows_rebuilt += 1
            self._cursor += 1
        if self._cursor >= d.inner_rows:
            self.rebuilds_completed += 1
            return True
        return False

    def finish(self) -> None:
        """Release the target (after completion or abandonment)."""
        self.target = None
        self._cursor = 0
