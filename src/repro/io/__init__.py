"""Result rendering, ASCII charts, and serialization for experiments."""

from repro.io.integrity import (
    atomic_write_bytes,
    check_frame,
    crc32_bytes,
    frame,
    sha256_bytes,
)
from repro.io.plots import (
    contention_profile,
    horizontal_bars,
    loglog_series,
    sparkline,
)
from repro.io.persistence import load_dictionary, save_dictionary
from repro.io.results import ExperimentResult, save_results
from repro.io.tables import render_table

__all__ = [
    "render_table",
    "ExperimentResult",
    "save_results",
    "save_dictionary",
    "load_dictionary",
    "sparkline",
    "contention_profile",
    "horizontal_bars",
    "loglog_series",
    "atomic_write_bytes",
    "check_frame",
    "crc32_bytes",
    "frame",
    "sha256_bytes",
]
