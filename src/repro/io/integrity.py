"""Shared integrity primitives: checksums, framed blobs, atomic writes.

Three subsystems persist or share bytes that must never be trusted
blindly: the shared-memory fabric (:mod:`repro.parallel.shm`) checksums
segment headers and packed table payloads with CRC32, the construction
cache (:mod:`repro.experiments.cache`) frames pickle payloads behind a
magic string and a SHA-256 digest, and the durable checkpoint store
(:mod:`repro.persist`) does both.  This module is the single
implementation they share:

- :func:`crc32_bytes` — the canonical unsigned CRC32 used by every
  fabric header and payload checksum;
- :func:`frame` / :func:`check_frame` — a self-describing container
  ``magic + crc32 + sha256 + payload``: cheap CRC catches torn writes
  and bit rot first, the SHA-256 then rules out collisions and
  truncation inside the payload, and a magic mismatch doubles as the
  format-version check (the version lives in the magic string);
- :func:`atomic_write_bytes` — crash-safe publication: write to a
  ``.tmp.<pid>`` sibling, ``fsync`` the data, ``os.replace`` into
  place, and ``fsync`` the directory so the rename itself survives a
  power cut.  A reader can observe the old file or the new file, never
  a torn one.

:func:`check_frame` deliberately returns ``(payload, reason)`` instead
of raising: callers map a bad frame to their own severity — the cache
degrades to a miss with a warning, the checkpoint store quarantines the
file with a typed :class:`~repro.errors.CheckpointCorruptError`.
"""

from __future__ import annotations

import hashlib
import os
import zlib

__all__ = [
    "CRC_BYTES",
    "SHA256_BYTES",
    "atomic_write_bytes",
    "check_frame",
    "crc32_bytes",
    "frame",
    "sha256_bytes",
]

#: Width of the CRC32 word in a frame (little-endian).
CRC_BYTES = 4

#: Width of the SHA-256 digest in a frame.
SHA256_BYTES = hashlib.sha256().digest_size


def crc32_bytes(data) -> int:
    """Unsigned CRC32 of ``data`` (bytes or anything with ``tobytes()``)."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        data = data.tobytes()
    return zlib.crc32(data) & 0xFFFFFFFF


def sha256_bytes(data: bytes) -> bytes:
    """Raw SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def frame(payload: bytes, magic: bytes) -> bytes:
    """Wrap ``payload`` in a verifiable ``magic + crc + sha + payload`` blob."""
    return (
        bytes(magic)
        + crc32_bytes(payload).to_bytes(CRC_BYTES, "little")
        + sha256_bytes(payload)
        + payload
    )


def check_frame(blob: bytes, magic: bytes) -> tuple[bytes | None, str | None]:
    """Verify a :func:`frame` blob; return ``(payload, None)`` or
    ``(None, reason)``.

    Checks, in order: magic/format-version match, header completeness,
    CRC32 (torn write / bit rot), SHA-256 (payload integrity).  The
    reason string is one short human-readable phrase for warnings,
    quarantine records, and typed errors.
    """
    magic = bytes(magic)
    header = len(magic) + CRC_BYTES + SHA256_BYTES
    if not blob.startswith(magic):
        return None, "bad magic / unknown format version"
    if len(blob) < header:
        return None, "truncated header"
    crc = int.from_bytes(blob[len(magic):len(magic) + CRC_BYTES], "little")
    digest = blob[len(magic) + CRC_BYTES:header]
    payload = blob[header:]
    if crc32_bytes(payload) != crc:
        return None, "CRC32 mismatch (torn write or bit rot)"
    if sha256_bytes(payload) != digest:
        return None, "SHA-256 mismatch (corrupt payload)"
    return payload, None


def atomic_write_bytes(path, data: bytes, fsync: bool = True) -> None:
    """Durably publish ``data`` at ``path``: tmp + fsync + rename + dirsync.

    Raises ``OSError`` on failure after best-effort removal of the tmp
    file; the destination is never left torn — either the old content
    or the new content is visible, atomically.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as f:
            f.write(data)
            if fsync:
                f.flush()
                os.fsync(f.fileno())
        os.replace(tmp, path)
        if fsync:
            # The rename is metadata: sync the directory so it is
            # durable too, not just the file contents.
            dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
    except OSError:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass
        raise
