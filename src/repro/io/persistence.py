"""Save/load built low-contention dictionaries (.npz).

A static dictionary is built once and queried many times — possibly by
a different process.  This module serializes everything a
:class:`~repro.core.dictionary.LowContentionDictionary` needs — the
table cells, the scheme constants, and the construction's private
analysis state (hash parameters, loads, span starts, per-bucket perfect
hash parameters) — into one compressed ``.npz`` archive, and rebuilds a
fully functional dictionary (honest queries *and* exact probe plans)
from it.

Round-trip fidelity is tested cell-for-cell and plan-for-plan.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.cellprobe.table import Table
from repro.core.construction import ConstructionResult
from repro.core.dictionary import LowContentionDictionary
from repro.core.params import SchemeParameters
from repro.errors import ParameterError
from repro.hashing.dm import DMHashFunction
from repro.hashing.perfect import PerfectHashFunction
from repro.hashing.polynomial import PolynomialHashFunction

#: Format version written into every archive.
FORMAT_VERSION = 1


def save_dictionary(dictionary: LowContentionDictionary, path) -> None:
    """Serialize a built low-contention dictionary to ``path`` (.npz)."""
    if not isinstance(dictionary, LowContentionDictionary):
        raise ParameterError(
            "save_dictionary supports LowContentionDictionary "
            f"(got {type(dictionary).__name__})"
        )
    con = dictionary.construction
    p = con.params
    meta = {
        "format_version": FORMAT_VERSION,
        "universe_size": dictionary.universe_size,
        "prime": con.prime,
        "trials": con.trials,
        "params": {
            "n": p.n,
            "degree": p.degree,
            "c": p.c,
            "delta": p.delta,
            "alpha": p.alpha,
            "beta": p.beta,
            "word_bits": p.word_bits,
        },
    }
    inner_a = np.array(
        [h.a if h else 0 for h in con.inner], dtype=np.int64
    )
    inner_c = np.array(
        [h.c if h else 0 for h in con.inner], dtype=np.int64
    )
    np.savez_compressed(
        pathlib.Path(path),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        cells=con.table._cells,
        keys=dictionary.keys,
        f_words=np.asarray(con.h.f.parameter_words(), dtype=np.int64),
        g_words=np.asarray(con.h.g.parameter_words(), dtype=np.int64),
        z=con.h.z,
        loads=con.loads,
        group_loads=con.group_loads,
        gbas=con.gbas,
        span_starts=con.span_starts,
        inner_a=inner_a,
        inner_c=inner_c,
        hist_words=con.hist_words,
    )


def load_dictionary(path) -> LowContentionDictionary:
    """Rebuild a saved low-contention dictionary from ``path``."""
    path = pathlib.Path(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["meta"].tobytes()).decode())
        if meta.get("format_version") != FORMAT_VERSION:
            raise ParameterError(
                f"unsupported archive version {meta.get('format_version')}"
            )
        params = SchemeParameters(**meta["params"])
        prime = int(meta["prime"])
        f = PolynomialHashFunction(
            prime, params.s, [int(v) for v in archive["f_words"]]
        )
        g = PolynomialHashFunction(
            prime, params.r, [int(v) for v in archive["g_words"]]
        )
        h = DMHashFunction(f, g, archive["z"])
        table = Table(rows=params.num_rows, s=params.s)
        cells = archive["cells"]
        if cells.shape != (params.num_rows, params.s):
            raise ParameterError(
                f"archive table shape {cells.shape} does not match params"
            )
        for row in range(params.num_rows):
            table.write_row(row, cells[row])
        loads = archive["loads"]
        inner = [
            PerfectHashFunction(
                prime, int(a), int(c), max(int(l) * int(l), 1)
            )
            if l > 0
            else None
            for a, c, l in zip(archive["inner_a"], archive["inner_c"], loads)
        ]
        con = ConstructionResult(
            params=params,
            prime=prime,
            table=table,
            h=h,
            loads=loads,
            group_loads=archive["group_loads"],
            gbas=archive["gbas"],
            span_starts=archive["span_starts"],
            inner=inner,
            trials=int(meta["trials"]),
            hist_words=archive["hist_words"],
        )
        d = LowContentionDictionary.__new__(LowContentionDictionary)
        d.universe_size = int(meta["universe_size"])
        d.keys = archive["keys"].astype(np.int64)
        d.construction = con
        d.params = params
        d.table = table
        d.prime = prime
        d._inner_a = np.array(
            [h_.a if h_ else 0 for h_ in inner], dtype=np.uint64
        )
        d._inner_c = np.array(
            [h_.c if h_ else 0 for h_ in inner], dtype=np.uint64
        )
        return d
