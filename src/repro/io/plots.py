"""Terminal-friendly ASCII charts for contention profiles.

Not a plotting library — just enough to make contention *shapes*
visible in example output and experiment logs: sparklines for per-cell
profiles, horizontal bars for cross-scheme comparisons, and a log-log
series table for growth-law eyeballing.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ParameterError

_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 64, log_scale: bool = False) -> str:
    """Downsample ``values`` to ``width`` buckets of block characters.

    Buckets take the *max* of their values (contention profiles care
    about peaks, not means); ``log_scale`` compresses the dynamic range
    so an n-fold hot spot doesn't flatten everything else to zero.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1 or v.size == 0:
        raise ParameterError("values must be a non-empty 1-D array")
    if width < 1:
        raise ParameterError("width must be positive")
    edges = np.linspace(0, v.size, min(width, v.size) + 1).astype(int)
    peaks = np.array(
        [v[a:b].max() if b > a else 0.0 for a, b in zip(edges, edges[1:])]
    )
    if log_scale:
        floor = peaks[peaks > 0].min(initial=1.0)
        peaks = np.where(peaks > 0, np.log10(peaks / floor) + 1.0, 0.0)
    top = peaks.max()
    if top <= 0:
        return _SPARK_LEVELS[0] * peaks.size
    idx = np.ceil(peaks / top * (len(_SPARK_LEVELS) - 1)).astype(int)
    return "".join(_SPARK_LEVELS[i] for i in idx)


def contention_profile(matrix, row: int | None = None, width: int = 64) -> str:
    """Sparkline of a :class:`ContentionMatrix`'s total per-cell profile.

    With ``row`` given, shows only that table row; otherwise the whole
    flat profile, one table row per line, labelled with its peak.
    """
    total = matrix.total().reshape(matrix.rows, matrix.s)
    if row is not None:
        return sparkline(total[row], width)
    lines = []
    for r in range(matrix.rows):
        peak = float(total[r].max())
        lines.append(f"row {r:>2d} [{peak:9.3e}] {sparkline(total[r], width)}")
    return "\n".join(lines)


def horizontal_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    log_scale: bool = True,
    unit: str = "",
) -> str:
    """Labelled horizontal bar chart (log scale by default).

    Log scale suits contention ratios spanning 1x .. n x.
    """
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ParameterError("labels and values must align")
    if any(v < 0 for v in values):
        raise ParameterError("values must be non-negative")
    if log_scale:
        positive = [v for v in values if v > 0]
        floor = min(positive) if positive else 1.0
        scaled = [
            math.log10(v / floor) + 1.0 if v > 0 else 0.0 for v in values
        ]
    else:
        scaled = values
    top = max(scaled) if scaled else 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = []
    for label, value, sc in zip(labels, values, scaled):
        bar = "#" * (int(round(sc / top * width)) if top > 0 else 0)
        lines.append(f"{str(label):>{label_w}s} | {bar:<{width}s} {value:g}{unit}")
    return "\n".join(lines)


def loglog_series(
    n_values: Sequence[float], y_values: Sequence[float], label: str = "y"
) -> str:
    """A compact log-log slope table: successive slopes reveal the law.

    Slope ~0: constant; ~0.5: sqrt; ~1: linear; slowly decaying
    positive: polylog.
    """
    n = np.asarray(n_values, dtype=np.float64)
    y = np.asarray(y_values, dtype=np.float64)
    if n.shape != y.shape or n.size < 2:
        raise ParameterError("need matching series of length >= 2")
    rows = [f"{'n':>10s} {label:>12s} {'loglog slope':>13s}"]
    for i in range(n.size):
        if i == 0:
            slope = ""
        else:
            with np.errstate(divide="ignore"):
                num = math.log(y[i] / y[i - 1]) if y[i] > 0 and y[i - 1] > 0 else float("nan")
            slope = f"{num / math.log(n[i] / n[i - 1]):13.3f}"
        rows.append(f"{n[i]:>10.0f} {y[i]:>12.4g} {slope:>13s}")
    return "\n".join(rows)
