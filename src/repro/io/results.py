"""Experiment result records and JSON serialization."""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.io.tables import render_table


@dataclasses.dataclass
class ExperimentResult:
    """One experiment's regenerated table plus provenance.

    ``rows`` is the table body; ``claim`` quotes what the paper asserts;
    ``finding`` summarizes what the measurement showed (filled by the
    runner).  EXPERIMENTS.md is assembled from these.
    """

    experiment_id: str
    title: str
    claim: str
    rows: list[dict]
    finding: str = ""
    notes: str = ""

    def render(self) -> str:
        """Human-readable block: header, claim, table, finding, notes."""
        header = f"[{self.experiment_id}] {self.title}\nClaim: {self.claim}"
        table = render_table(self.rows)
        tail = f"Finding: {self.finding}" if self.finding else ""
        notes = f"Notes: {self.notes}" if self.notes else ""
        return "\n".join(p for p in (header, table, tail, notes) if p)

    def as_dict(self) -> dict:
        """Plain-dict form for JSON serialization."""
        return dataclasses.asdict(self)


def save_results(results: list[ExperimentResult], path) -> None:
    """Write a list of results as pretty JSON."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps([r.as_dict() for r in results], indent=2, default=str)
    )
