"""Experiment result records and JSON serialization.

Also home of the telemetry-snapshot round-trip helpers: a snapshot is a
versioned plain-JSON payload (``repro.telemetry.metrics.SNAPSHOT_VERSION``)
written by :func:`save_snapshot` and read back by :func:`load_snapshot`.
Readers are **forward compatible**: unknown top-level keys from a newer
writer are preserved verbatim, and only a version *newer than the reader
understands* is rejected (by ``MetricsRegistry.from_snapshot``, not
here — loading a raw payload never fails on content).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.io.tables import render_table


@dataclasses.dataclass
class ExperimentResult:
    """One experiment's regenerated table plus provenance.

    ``rows`` is the table body; ``claim`` quotes what the paper asserts;
    ``finding`` summarizes what the measurement showed (filled by the
    runner).  EXPERIMENTS.md is assembled from these.
    """

    experiment_id: str
    title: str
    claim: str
    rows: list[dict]
    finding: str = ""
    notes: str = ""

    def render(self) -> str:
        """Human-readable block: header, claim, table, finding, notes."""
        header = f"[{self.experiment_id}] {self.title}\nClaim: {self.claim}"
        table = render_table(self.rows)
        tail = f"Finding: {self.finding}" if self.finding else ""
        notes = f"Notes: {self.notes}" if self.notes else ""
        return "\n".join(p for p in (header, table, tail, notes) if p)

    def as_dict(self) -> dict:
        """Plain-dict form for JSON serialization."""
        return dataclasses.asdict(self)


def save_results(results: list[ExperimentResult], path) -> None:
    """Write a list of results as pretty JSON."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps([r.as_dict() for r in results], indent=2, default=str)
    )


def save_snapshot(snapshot: dict, path) -> pathlib.Path:
    """Write one telemetry snapshot (a versioned JSON payload) to ``path``."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(snapshot, indent=2, default=str) + "\n")
    return path


def load_snapshot(path) -> dict:
    """Read a telemetry snapshot back as a plain dict.

    No schema enforcement happens here: unknown keys survive untouched
    so a snapshot written by a newer library version round-trips through
    an older reader.  Feed the result to
    ``MetricsRegistry.from_snapshot`` to materialize the metrics (which
    ignores keys it does not know and rejects only a payload whose
    declared version is newer than it supports).
    """
    return json.loads(pathlib.Path(path).read_text())
