"""ASCII table rendering for experiment results.

Rows are dicts; columns are inferred from the first row (or given
explicitly).  Numbers are right-aligned with compact formatting; this
is what the benchmark harness prints so that every experiment
regenerates a readable paper-style table.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _format_value(v) -> str:
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e4 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def render_table(
    rows: Sequence[dict],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of row-dicts as a fixed-width ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        # Union of keys across rows, ordered by first appearance, so
        # heterogeneous row groups (e.g. E9's two series) still render.
        columns = []
        for r in rows:
            for key in r:
                if key not in columns:
                    columns.append(key)
    cells = [[_format_value(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), max((len(row[i]) for row in cells), default=0))
        for i, c in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    body = "\n".join(
        " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        for row in cells
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, sep, body])
    return "\n".join(parts)
