"""The Section 3 lower bound, made executable.

Theorem 13: any balanced cell-probing scheme (Definition 12) for a
problem of VC-dimension n, with cell size b <= polylog(n) and contention
phi* <= polylog(n)/s, needs t* = Omega(log log n) probes.  The proof is
a chain of constructive lemmas, each implemented and tested here:

- :mod:`~repro.lowerbound.productspace` — Lemma 19: simulating one
  adaptive probe by independent per-cell Bernoulli probes (success
  probability >= 1/4 per step, conditional law proportional to the
  original);
- :mod:`~repro.lowerbound.coupling` — Lemma 21: the joint distribution
  of n probe sets minimizing the expected union size
  (E[|union L_i|] <= sum_j max_i Pr[j in J_i]);
- :mod:`~repro.lowerbound.matrixbounds` — Lemma 16: the combinatorial
  bound |R| >= sum_j max_i P(i, j);
- :mod:`~repro.lowerbound.adversary` — Lemma 15: the probabilistic-
  method construction of a query distribution violating every "good"
  probe specification;
- :mod:`~repro.lowerbound.game` — the Lemma 14 communication game:
  probe-specification players against a bit-charging black box, with a
  replication strategy driven by real dictionary probe plans;
- :mod:`~repro.lowerbound.recursion` — the E[C_t] <= sqrt(a E[C_{t-1}])
  recursion and the numeric t*(n) = Theta(log log n) curve (E9's
  figure).
"""

from repro.lowerbound.adversarial_game import (
    AdversarialRound,
    play_adversarial_game,
)
from repro.lowerbound.adversary import lemma15_distribution
from repro.lowerbound.coupling import couple_probe_sets, expected_union_bound
from repro.lowerbound.game import CommunicationGame, GameTranscript, ProbeSpecification
from repro.lowerbound.matrixbounds import lemma16_lhs, lemma16_rhs
from repro.lowerbound.productspace import (
    ProductSpaceProbe,
    simulate_probe_sequence,
)
from repro.lowerbound.recursion import (
    information_deficit_tstar,
    recursion_trace,
    tstar_curve,
)

__all__ = [
    "ProductSpaceProbe",
    "simulate_probe_sequence",
    "couple_probe_sets",
    "expected_union_bound",
    "lemma16_lhs",
    "lemma16_rhs",
    "lemma15_distribution",
    "play_adversarial_game",
    "AdversarialRound",
    "CommunicationGame",
    "GameTranscript",
    "ProbeSpecification",
    "recursion_trace",
    "information_deficit_tstar",
    "tstar_curve",
]
