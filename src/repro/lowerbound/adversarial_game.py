"""The full Theorem 13 adversary loop, executable end to end.

Theorem 13's proof is an interaction: at each round the algorithm A''
has a decision tree of possible next probe specifications; the
adversary inspects them, classifies each as *good* (>= r of its queries
could concentrate probes cheaply) or *bad*, and uses Lemma 15 to raise
query masses so that every good specification violates the contention
constraint (2).  A'' is left with bad rows, whose information value is
bounded via Lemma 16 — feeding the recursion that yields
Omega(log log n).

:func:`play_adversarial_game` runs the loop with a structured candidate
set: "concentrate a k-subset of queries on private cells" for k = 1, 2,
4, ..., n, plus the uniform spread.  A k-subset specification is good
exactly when k >= r (its M-row has k entries of phi* and the rest
phi*·s, so its r smallest entries sum to r·phi* <= phi*·s); the
adversary prices all of those out each round, and the best legal
specification left to A'' concentrates fewer than r queries — its
information is at most ``b · (r + (s - r)/s · n/s …) ~ b·r`` versus
``b·n`` had concentration been free.

At realistic simulation sizes the theorem's own
``r_t = sqrt(5 t* phi* s n ln N_t)`` exceeds n (the asymptotic regime),
in which case *every* candidate is bad and the adversary never moves —
correct but inertly so; pass ``r_override`` (e.g. sqrt(n)) to watch the
mechanism operate.  All proof-side inequalities are asserted either
way.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import GameError
from repro.lowerbound.adversary import lemma15_distribution, violates_all_rows
from repro.lowerbound.game import CommunicationGame, ProbeSpecification
from repro.lowerbound.matrixbounds import lemma16_rhs, row_is_good
from repro.utils.rng import as_generator


@dataclasses.dataclass(frozen=True)
class AdversarialRound:
    """One round's bookkeeping."""

    round_index: int
    candidates: int
    good_rows: int
    all_good_violated: bool
    chosen_bits: float
    uncapped_bits: float  # what the best candidate would yield with q = 0
    q_mass: float


def theorem_r(n: int, s: int, phi_star: float, t_star: int, num_candidates: int) -> int:
    """The theorem's r_t = sqrt(5 t* phi* s n ln N_t)."""
    return max(
        2,
        int(
            math.ceil(
                math.sqrt(
                    5.0 * t_star * phi_star * s * n
                    * math.log(max(num_candidates, 2))
                )
            )
        ),
    )


def _subset_candidates(
    n: int, s: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Concentrate-k-queries candidates for k = 1, 2, 4, ..., plus uniform."""
    candidates = []
    k = 1
    while k <= n:
        subset = rng.choice(n, size=k, replace=False)
        P = np.full((n, s), 1.0 / s)
        for rank, i in enumerate(subset):
            P[i, :] = 0.0
            P[i, rank % s] = 1.0
        candidates.append(P)
        k *= 2
    candidates.append(np.full((n, s), 1.0 / s))
    return candidates


def play_adversarial_game(
    n: int,
    s: int,
    b: int,
    phi_star: float,
    t_star: int,
    rng=None,
    r_override: int | None = None,
) -> tuple[list[AdversarialRound], CommunicationGame]:
    """Run t_star rounds of the Theorem 13 interaction.

    Returns per-round records and the finished game.  Raises
    :class:`GameError` if any proof-side inequality fails — tests treat
    this function as an executable checker of the argument.
    """
    rng = as_generator(rng)
    game = CommunicationGame(n=n, s=s, b=b, phi_star=phi_star)
    q = np.zeros(n)
    rounds: list[AdversarialRound] = []
    epsilon = 1.0 / t_star
    threshold = phi_star * s
    for t in range(1, t_star + 1):
        candidates = _subset_candidates(n, s, rng)
        N_t = len(candidates)
        M = np.stack([phi_star / P.max(axis=1) for P in candidates])
        r = (
            min(theorem_r(n, s, phi_star, t_star, N_t), n)
            if r_override is None
            else min(int(r_override), n)
        )
        good_mask = np.array(
            [row_is_good(M[u], r, threshold) for u in range(N_t)]
        )
        all_violated = True
        if good_mask.any():
            good_M = M[good_mask]
            delta_q, _ = lemma15_distribution(
                good_M, epsilon=epsilon, delta=threshold, rng=rng, r=r
            )
            q = np.maximum(q, delta_q)
            if q.sum() > 1.0 + 1e-9:
                raise GameError("adversary exceeded stochastic mass")
            all_violated = violates_all_rows(good_M, q)
            if not all_violated:
                raise GameError(
                    f"round {t}: adversary failed to violate a good row"
                )
        game.set_q(q)
        # A'' plays the best candidate still legal under the new q.
        best_bits = -1.0
        best_spec = None
        uncapped = max(
            ProbeSpecification(P).information_budget(b) for P in candidates
        )
        for P in candidates:
            spec = ProbeSpecification(P)
            try:
                spec.check_contention(q, phi_star)
            except GameError:
                continue
            bits = spec.information_budget(b)
            if bits > best_bits:
                best_bits = bits
                best_spec = spec
        if best_spec is None:
            raise GameError(f"round {t}: no legal specification remains")
        game.play_round(best_spec)
        rounds.append(
            AdversarialRound(
                round_index=t,
                candidates=N_t,
                good_rows=int(good_mask.sum()),
                all_good_violated=all_violated,
                chosen_bits=best_bits,
                uncapped_bits=float(uncapped),
                q_mass=float(q.sum()),
            )
        )
    return rounds, game
