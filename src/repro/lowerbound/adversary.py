"""Lemma 15: the adversary's query-distribution construction.

Setting: M is an N x n non-negative matrix (in Theorem 13,
``M(u, i) = phi* / max_j P_u(i, j)`` over the N possible next probe
specifications).  If every row u has a set R_u of r entries summing to
<= delta, then there is a stochastic vector q with total mass epsilon
that *violates* every row: for each u some i has M(u, i) < q_i — i.e.
the contention constraint (2) forbids every one of those probe
specifications.

Construction (probabilistic method, derandomized by retry):

1. for each row, R'_u = the indices of the r/2 smallest entries of R_u
   (each such entry is <= 2 delta / r);
2. sample a uniform transversal T of size ceil(2 n ln N / r) until it
   intersects every R'_u (success probability > 0, so expected O(1)
   draws);
3. q_i = epsilon / |T| for i in T, else 0.

Then for i in R'_u ∩ T: M(u, i) <= 2 delta / r < r epsilon / (2 n ln N)
= q_i, provided r > sqrt(4 epsilon^{-1} delta n ln N) — the lemma uses
r = sqrt(5 epsilon^{-1} delta n ln N) for slack.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GameError, ParameterError
from repro.utils.rng import as_generator


def lemma15_r(epsilon: float, delta: float, n: int, N: int) -> int:
    """The lemma's r = sqrt(5 epsilon^-1 delta n ln N)."""
    if epsilon <= 0 or delta <= 0 or n < 1 or N < 2:
        raise ParameterError("need epsilon, delta > 0, n >= 1, N >= 2")
    return max(2, int(math.ceil(math.sqrt(5.0 * delta * n * math.log(N) / epsilon))))


def lemma15_distribution(
    M: np.ndarray,
    epsilon: float,
    delta: float,
    rng=None,
    r: int | None = None,
    max_attempts: int = 10_000,
) -> tuple[np.ndarray, np.ndarray]:
    """Construct q (mass epsilon) violating every row of M.

    Returns ``(q, T)`` where T is the support.  Rows are assumed to
    satisfy the lemma's hypothesis with the given r (default: the
    lemma's formula); a row whose r smallest entries sum to more than
    delta violates the hypothesis and raises :class:`GameError`.
    """
    M = np.asarray(M, dtype=np.float64)
    if M.ndim != 2:
        raise ParameterError("M must be an N x n matrix")
    rng = as_generator(rng)
    N, n = M.shape
    if r is None:
        r = lemma15_r(epsilon, delta, n, max(N, 2))
    r = min(r, n)
    half = max(1, r // 2)

    # R'_u: indices of the r/2 smallest entries of the r smallest entries
    # (equivalently, the r/2 smallest overall once R_u is chosen greedily).
    order = np.argsort(M, axis=1)
    smallest_r = np.take_along_axis(M, order[:, :r], axis=1)
    if np.any(smallest_r.sum(axis=1) > delta + 1e-12):
        bad = int(np.argmax(smallest_r.sum(axis=1)))
        raise GameError(
            f"row {bad} violates the Lemma 15 hypothesis: its {r} smallest "
            f"entries sum to {smallest_r.sum(axis=1)[bad]:.4g} > delta={delta}"
        )
    R_prime = order[:, :half]  # (N, half)

    t_size = max(1, min(n, int(math.ceil(2.0 * n * math.log(max(N, 2)) / r))))
    for _ in range(max_attempts):
        T = rng.choice(n, size=t_size, replace=False)
        hit = np.isin(R_prime, T).any(axis=1)
        if bool(hit.all()):
            q = np.zeros(n, dtype=np.float64)
            q[T] = epsilon / t_size
            return q, np.sort(T)
    raise GameError(
        f"no transversal of size {t_size} found in {max_attempts} draws"
    )


def violates_all_rows(M: np.ndarray, q: np.ndarray) -> bool:
    """Check the lemma's conclusion: every row has some M(u, i) < q_i."""
    M = np.asarray(M, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    return bool(np.all((M < q[None, :]).any(axis=1)))
