"""Lemma 21: coupling n product-space probes to a small union.

Given n product-space probe distributions with marginals
``P[i, j] = Pr[j in J_i]``, the coupled joint draw is:

1. choose each cell j into a base set B independently with probability
   ``ptilde_j = max_i P[i, j]``;
2. each j in B joins L_i independently with probability
   ``P[i, j] / ptilde_j``.

Each L_i then has exactly the marginal law of J_i, while
``E[|union_i L_i|] <= E[|B|] = sum_j ptilde_j = sum_j max_i P[i, j]`` —
this is how Lemma 14 charges the black box only ``b * sum_j max_i P``
bits for n parallel queries instead of n times as much.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import as_generator


def _validate_marginals(P: np.ndarray) -> np.ndarray:
    P = np.asarray(P, dtype=np.float64)
    if P.ndim != 2:
        raise ParameterError("P must be an n x s matrix of marginals")
    if np.any(P < 0) or np.any(P > 1):
        raise ParameterError("marginals must lie in [0, 1]")
    return P


def expected_union_bound(P: np.ndarray) -> float:
    """The Lemma 21 bound: sum_j max_i P[i, j]."""
    P = _validate_marginals(P)
    return float(np.sum(P.max(axis=0)))


def couple_probe_sets(
    P: np.ndarray, rng=None
) -> tuple[list[np.ndarray], np.ndarray]:
    """One coupled draw of (L_1, ..., L_n); returns (sets, base_set B).

    Each ``L_i`` is an int64 array of probed cells; marginally,
    ``Pr[j in L_i] = P[i, j]`` exactly, and every ``L_i`` is a subset
    of ``B``.
    """
    P = _validate_marginals(P)
    rng = as_generator(rng)
    n, s = P.shape
    ptilde = P.max(axis=0)
    in_B = rng.random(s) < ptilde
    B = np.nonzero(in_B)[0]
    sets: list[np.ndarray] = []
    if B.size == 0:
        return [np.zeros(0, dtype=np.int64) for _ in range(n)], B
    cond = P[:, B] / np.where(ptilde[B] > 0, ptilde[B], 1.0)
    draws = rng.random((n, B.size)) < cond
    for i in range(n):
        sets.append(B[draws[i]])
    return sets, B


def empirical_marginals(
    P: np.ndarray, trials: int, rng=None
) -> tuple[np.ndarray, float]:
    """Monte-Carlo check of the coupling: (marginal estimates, E|union|).

    Returns the empirical ``Pr[j in L_i]`` matrix and the mean union
    size across trials — tests compare them against P and the bound.
    """
    P = _validate_marginals(P)
    rng = as_generator(rng)
    n, s = P.shape
    counts = np.zeros((n, s), dtype=np.int64)
    union_total = 0
    for _ in range(trials):
        sets, _ = couple_probe_sets(P, rng)
        union: set[int] = set()
        for i, L in enumerate(sets):
            counts[i, L] += 1
            union.update(int(v) for v in L)
        union_total += len(union)
    return counts / trials, union_total / trials
