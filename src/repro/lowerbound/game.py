"""The Lemma 14 communication game, executable.

Players:

- **A''** sends, each round, a *probe specification*: an n x s matrix
  P_t with row sums <= 1 (inequality (1)) and entries bounded by
  phi* / q_i (inequality (2) — the contention constraint, which A''
  must satisfy without knowing q);
- the **black box B** holds the secret stochastic vector q and answers
  with C_t bits, E[C_t] <= b * sum_j max_i P_t(i, j) (inequality (3) —
  the Lemma 21 coupling bound).

A'' needs n * 2**(-2 t*) bits after t* rounds (the information needed by
the n product-space query instances that survive the Lemma 19
simulation).  The *replication strategy* implemented here derives P_t
from a real dictionary's batch probe plans — exactly the class of
schemes Definition 12 admits ("the randomness is used only for
balancing the cell-probes").

The game is the bridge between the concrete schemes of Section 2 and
the abstract recursion of :mod:`~repro.lowerbound.recursion`; E9 runs
it on small instances and checks every inequality on the realized
matrices.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import GameError, ParameterError
from repro.lowerbound.matrixbounds import lemma16_rhs
from repro.utils.rng import as_generator


@dataclasses.dataclass
class ProbeSpecification:
    """One round's n x s probe-marginal matrix, with validation."""

    P: np.ndarray

    def __post_init__(self):
        self.P = np.asarray(self.P, dtype=np.float64)
        if self.P.ndim != 2:
            raise ParameterError("P must be an n x s matrix")
        if np.any(self.P < 0) or np.any(self.P > 1.0 + 1e-12):
            raise ParameterError("entries must lie in [0, 1]")
        if np.any(self.P.sum(axis=1) > 1.0 + 1e-9):
            raise GameError("row sums must be <= 1 (Lemma 14, ineq. (1))")

    @property
    def n(self) -> int:
        return self.P.shape[0]

    @property
    def s(self) -> int:
        return self.P.shape[1]

    def check_contention(self, q: np.ndarray, phi_star: float) -> None:
        """Enforce inequality (2): max_j P(i, j) <= phi*/q_i."""
        q = np.asarray(q, dtype=np.float64)
        row_max = self.P.max(axis=1)
        limit = np.where(q > 0, phi_star / np.where(q > 0, q, 1.0), np.inf)
        if np.any(row_max > limit + 1e-12):
            i = int(np.argmax(row_max - limit))
            raise GameError(
                f"contention constraint violated at row {i}: "
                f"max_j P = {row_max[i]:.4g} > phi*/q_i = {limit[i]:.4g}"
            )

    def information_budget(self, b: int) -> float:
        """Inequality (3)'s bound: b * sum_j max_i P(i, j)."""
        return float(b) * lemma16_rhs(self.P)


@dataclasses.dataclass
class GameTranscript:
    """Per-round record of a played communication game."""

    rounds: int
    bits_per_round: list[float]
    budgets_per_round: list[float]
    q_history: list[np.ndarray]

    @property
    def total_bits(self) -> float:
        return float(sum(self.bits_per_round))

    def information_target(self, n: int, t_star: int) -> float:
        """The n * 2**(-2 t*) bits A'' must collect (Lemma 14, item 3)."""
        return n * 2.0 ** (-2 * t_star)


class CommunicationGame:
    """Drives A''-vs-black-box rounds with full inequality checking.

    Parameters
    ----------
    n, s:
        Query count and table size.
    b:
        Cell size in bits.
    phi_star:
        Contention cap (Definition 12's phi*).
    q:
        The black box's secret stochastic vector (sum <= 1).  May be
        replaced between rounds by an adversary via :meth:`set_q` —
        Theorem 13's adversary raises coordinates only, which never
        legalizes a previously violated specification.
    """

    def __init__(self, n: int, s: int, b: int, phi_star: float, q=None):
        if n < 1 or s < 1 or b < 1:
            raise ParameterError("n, s, b must be positive")
        if phi_star <= 0:
            raise ParameterError("phi_star must be positive")
        self.n, self.s, self.b = int(n), int(s), int(b)
        self.phi_star = float(phi_star)
        self.q = np.zeros(self.n) if q is None else np.asarray(q, dtype=np.float64)
        if self.q.shape != (self.n,) or np.any(self.q < 0) or self.q.sum() > 1 + 1e-9:
            raise ParameterError("q must be a stochastic vector over [n]")
        self.transcript = GameTranscript(
            rounds=0, bits_per_round=[], budgets_per_round=[], q_history=[]
        )

    def set_q(self, q: np.ndarray) -> None:
        """Adversary move: raise coordinates of q (mass stays <= 1)."""
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (self.n,):
            raise ParameterError("q must have length n")
        if np.any(q < self.q - 1e-12):
            raise GameError("the adversary may only increase coordinates")
        if q.sum() > 1.0 + 1e-9:
            raise GameError("q must remain stochastic (sum <= 1)")
        self.q = q

    def play_round(self, spec: ProbeSpecification) -> float:
        """A'' sends ``spec``; B answers.  Returns the bits received.

        B is modelled as charging exactly its upper envelope
        ``b * sum_j max_i P`` (the most generous legal black box — a
        lower bound argument must beat even this one).
        """
        if spec.n != self.n or spec.s != self.s:
            raise ParameterError("specification shape mismatch")
        spec.check_contention(self.q, self.phi_star)
        budget = spec.information_budget(self.b)
        self.transcript.rounds += 1
        self.transcript.bits_per_round.append(budget)
        self.transcript.budgets_per_round.append(budget)
        self.transcript.q_history.append(self.q.copy())
        return budget

    # -- strategies ------------------------------------------------------------------

    def uniform_specification(self) -> ProbeSpecification:
        """The maximally spread P: every entry 1/s (always legal when
        q_i <= phi* s for all i)."""
        return ProbeSpecification(np.full((self.n, self.s), 1.0 / self.s))

    def clipped_specification(self, desired: np.ndarray) -> ProbeSpecification:
        """Clip a desired marginal matrix to satisfy the contention cap.

        This is what a legal balanced scheme must effectively do: rows
        whose queries are hot (large q_i) must spread out to
        phi*/q_i per cell, re-normalizing row mass downward.
        """
        desired = np.asarray(desired, dtype=np.float64)
        limit = np.where(
            self.q > 0, self.phi_star / np.where(self.q > 0, self.q, 1.0), np.inf
        )
        clipped = np.minimum(desired, limit[:, None])
        return ProbeSpecification(clipped)


def specification_from_dictionary(
    dictionary, queries: np.ndarray, step: int
) -> ProbeSpecification:
    """The step-``step`` probe marginals of real dictionary queries.

    Row i is the probe distribution of query ``queries[i]`` at the given
    step (zero row if that query has already terminated) — precisely the
    P_t matrices of Definition 12 schemes.
    """
    queries = np.asarray(queries, dtype=np.int64)
    steps = dictionary.probe_plan_batch(queries)
    if step >= len(steps):
        return ProbeSpecification(
            np.zeros((queries.size, dictionary.table.s))
        )
    st = steps[step]
    P = np.zeros((queries.size, dictionary.table.s))
    for i in range(queries.size):
        single = st.step_for(i)
        if single is not None:
            P[i, single.support()] = single.probability()
    return ProbeSpecification(P)
