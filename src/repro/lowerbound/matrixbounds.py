"""Lemma 16: the combinatorial envelope bound.

For a non-negative n x s matrix P with row sums <= 1, let R be the
largest subset of rows with ``sum_{i in R} 1 / max_j P(i, j) <= s``.
Then ``|R| >= sum_j max_i P(i, j)``.

Interpretation: the right side is the per-round information budget of
the coupled parallel probes (Lemma 21); the left side says that budget
is only large if many rows concentrate their probes on few cells — and
such concentrated rows are exactly the queries the adversary can make
"hot" (Lemma 15), forbidding the concentration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError


def _validate(P: np.ndarray) -> np.ndarray:
    P = np.asarray(P, dtype=np.float64)
    if P.ndim != 2:
        raise ParameterError("P must be an n x s matrix")
    if np.any(P < 0):
        raise ParameterError("P must be non-negative")
    if np.any(P.sum(axis=1) > 1.0 + 1e-9):
        raise ParameterError("row sums must be <= 1")
    return P


def lemma16_rhs(P: np.ndarray) -> float:
    """sum_j max_i P(i, j) — the information-budget side."""
    P = _validate(P)
    return float(np.sum(P.max(axis=0)))


def lemma16_lhs(P: np.ndarray) -> int:
    """|R|: the largest row set with sum of 1/max_j P(i,j) <= s.

    Greedy by ascending 1/max is optimal (the knapsack has unit
    values).  Rows with max_j P(i, j) = 0 contribute infinite reciprocal
    cost and are never selected.
    """
    P = _validate(P)
    s = P.shape[1]
    row_max = P.max(axis=1)
    positive = row_max > 0
    costs = np.sort(1.0 / row_max[positive])
    cumulative = np.cumsum(costs)
    return int(np.searchsorted(cumulative, float(s), side="right"))


def lemma16_lhs_fractional(P: np.ndarray) -> float:
    """The LP relaxation: max sum_i x_i s.t. sum_i x_i/max_j P(i,j) <= s,
    0 <= x_i <= 1 — the quantity the paper's proof actually bounds.

    Note (reproduction finding): the paper states the bound with the
    *integer* |R|, but its final maximization argument is the fractional
    knapsack, whose optimum can exceed |R| by a fraction below 1.  The
    correct chain is ``sum_j max_i P <= lhs_fractional <= |R| + 1``;
    the slack is irrelevant to Theorem 13's asymptotics.  Tests verify
    this corrected chain.
    """
    P = _validate(P)
    s = float(P.shape[1])
    row_max = P.max(axis=1)
    costs = np.sort(1.0 / row_max[row_max > 0])
    value = 0.0
    for c in costs:
        if c <= s:
            value += 1.0
            s -= c
        else:
            value += s / c
            break
    return value


def lemma16_holds(P: np.ndarray) -> bool:
    """Check sum_j max_i P(i, j) <= fractional lhs (corrected Lemma 16)."""
    return lemma16_lhs_fractional(P) >= lemma16_rhs(P) - 1e-9


def row_is_good(M_row: np.ndarray, r: int, threshold: float) -> bool:
    """Theorem 13's goodness test for one row of M.

    A row u of M (where ``M(u, i) = phi* / max_j P_u(i, j)``) is *good*
    if some r of its entries sum to <= threshold (= phi* s).  Greedy:
    check the r smallest entries.
    """
    if r <= 0:
        return True
    if r > M_row.size:
        return False
    smallest = np.partition(np.asarray(M_row, dtype=np.float64), r - 1)[:r]
    return float(np.sum(smallest)) <= threshold


def bad_row_budget(P: np.ndarray, r_t: float) -> bool:
    """Claim (4): a *bad* row's specification has rhs <= r_t.

    Used by tests: if ``row_is_good`` is False for the M-row derived
    from P, then ``lemma16_rhs(P) <= r_t`` must hold.
    """
    return lemma16_rhs(P) <= r_t + 1e-9
