"""Lemma 19: product-space simulation of an adaptive cell-probe.

A randomized probe I with distribution p over [s] is simulated by
probing every cell *independently* (a "product-space cell-probe"):

- probe cell i with probability p'_i = min(p_i, 1/2);
- if the resulting set J has size != 1, fail;
- if J = {i}, fail with probability eps_i = min(p_i, 1 - p_i);
- otherwise output i.

The paper's two cases (all p_i <= 1/2, or one p_0 > 1/2) both give
success probability >= 1/4, with the conditional output law exactly p.
Independence across steps then yields overall success >= 2**(-2 t*) for
a t*-step query — the constant the information bound of Lemma 14 pays.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_vector

#: Sentinel returned by a failed simulation step.
FAIL = -1


@dataclasses.dataclass
class ProductSpaceProbe:
    """The Lemma 19 simulator for one probe distribution p over [s]."""

    p: np.ndarray

    def __post_init__(self):
        self.p = check_probability_vector("p", self.p)
        # p' and eps exactly as in the proof's two cases.
        self.p_prime = np.minimum(self.p, 0.5)
        self.eps = np.minimum(self.p, 1.0 - self.p)

    @property
    def s(self) -> int:
        return self.p.size

    def sample_set(self, rng=None) -> np.ndarray:
        """Draw the product-space probe set J (independent per-cell)."""
        rng = as_generator(rng)
        return np.nonzero(rng.random(self.s) < self.p_prime)[0]

    def simulate(self, rng=None) -> int:
        """One simulation: the probed cell index, or :data:`FAIL`."""
        rng = as_generator(rng)
        J = self.sample_set(rng)
        if J.size != 1:
            return FAIL
        i = int(J[0])
        if rng.random() < self.eps[i]:
            return FAIL
        return i

    # -- exact quantities (used by tests and E10) ---------------------------------

    def success_probability(self) -> float:
        """Exact Pr[simulation succeeds] (>= 1/4 by Lemma 19)."""
        return float(np.sum(self.output_distribution()))

    def output_distribution(self) -> np.ndarray:
        """Exact sub-probability vector Pr[output = i] (proportional to p)."""
        # Pr[J = {i}] = p'_i * prod_{j != i} (1 - p'_j); times (1 - eps_i).
        one_minus = 1.0 - self.p_prime
        # Stable product-over-all-but-one via full product / term, with a
        # guard for exact zeros (p'_j = 1/2 never gives zero, p'_j can be
        # 0 though, and 1 - 0 = 1 is harmless).
        total = np.prod(one_minus)
        out = np.where(
            one_minus > 0,
            self.p_prime * (total / np.where(one_minus > 0, one_minus, 1.0)),
            0.0,
        )
        return out * (1.0 - self.eps)

    def expected_probes(self) -> float:
        """E[|J|] = sum_i p'_i <= 1 — inequality (5) of Lemma 19."""
        return float(np.sum(self.p_prime))

    def marginal_probabilities(self) -> np.ndarray:
        """Pr[i in J] = p'_i <= p_i — the contention never increases (6)."""
        return self.p_prime.copy()


def simulate_probe_sequence(
    distributions: list[np.ndarray], rng=None
) -> tuple[list[int], bool]:
    """Simulate t* independent probes; returns (outputs, success).

    ``success`` is True iff no step failed — an event of probability
    >= 4**(-t) — in which case the outputs are jointly distributed as
    the original probes (Lemma 19, property 1).
    """
    rng = as_generator(rng)
    outputs: list[int] = []
    success = True
    for p in distributions:
        result = ProductSpaceProbe(np.asarray(p, dtype=np.float64)).simulate(rng)
        outputs.append(result)
        if result == FAIL:
            success = False
    return outputs, success
