"""The information recursion of Theorem 13 and the t*(n) curve.

Against the Lemma 15 adversary, every legal probe specification at round
t corresponds to a *bad* row of M^(t), so by Claim (4) its information
budget is at most ``b * r_t`` with ``r_t = sqrt(5 t* phi* s n ln N_t)``
and ``N_t = 2**C_{t-1}``.  Taking expectations (Jensen for the concave
square root):

    E[C_1] <= a_1 := b phi* s,
    E[C_t] <= sqrt(a * E[C_{t-1}]),   a := (5 ln 2) b**2 t* phi* s n,

whose closed form is ``E[C_t] <= a_1**(2**(1-t)) * a**(1 - 2**(1-t))``.
A'' needs ``n * 2**(-2 t*)`` bits in t* rounds, so

    n * 2**(-2 t*) <= sum_{t<=t*} E[C_t] <= a_1 * a**(1 - 2**(-t*)),

and with b <= polylog(n), phi* <= polylog(n)/s the smallest feasible t*
is log log n - o(log log n) — :func:`information_deficit_tstar` solves
the inequality numerically and :func:`tstar_curve` produces E9's
t*-versus-n series.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import ParameterError


@dataclasses.dataclass(frozen=True)
class RecursionTrace:
    """The per-round information bounds for given parameters."""

    t_star: int
    a1: float
    a: float
    per_round: tuple[float, ...]  # E[C_t] upper bounds, t = 1..t_star
    total: float  # sum of per-round bounds
    target: float  # n * 2**(-2 t*)

    @property
    def feasible(self) -> bool:
        """Whether A'' can possibly collect enough information."""
        return self.total >= self.target


def recursion_bounds(a1: float, a: float, t_star: int) -> tuple[float, ...]:
    """Closed-form E[C_t] <= a1**(2**(1-t)) * a**(1-2**(1-t)), t=1..t*."""
    if a1 <= 0 or a <= 0 or t_star < 1:
        raise ParameterError("a1, a must be positive and t_star >= 1")
    out = []
    for t in range(1, t_star + 1):
        e = 2.0 ** (1 - t)
        out.append((a1**e) * (a ** (1.0 - e)))
    return tuple(out)


def recursion_trace(
    n: int, s: int, b: float, phi_star: float, t_star: int
) -> RecursionTrace:
    """Evaluate the Theorem 13 recursion for concrete parameters."""
    if n < 1 or s < 1 or b <= 0 or phi_star <= 0 or t_star < 1:
        raise ParameterError("invalid recursion parameters")
    a1 = b * phi_star * s
    a = (5.0 * math.log(2.0)) * (b**2) * t_star * phi_star * s * n
    per_round = recursion_bounds(a1, a, t_star)
    return RecursionTrace(
        t_star=t_star,
        a1=a1,
        a=a,
        per_round=per_round,
        total=float(sum(per_round)),
        target=n * (2.0 ** (-2 * t_star)),
    )


def information_deficit_tstar(
    n: int,
    s: int | None = None,
    b: float | None = None,
    phi_star: float | None = None,
    polylog_exponent: float = 1.0,
    t_max: int = 64,
) -> int:
    """Smallest t* for which the recursion total reaches the target.

    Defaults realize Theorem 13's hypothesis: s = 2n cells of
    b = (log2 n)**polylog_exponent bits and contention
    phi* = (log2 n)**polylog_exponent / s.  Any t below the returned
    value is information-theoretically impossible for a Definition 12
    scheme, so the return value is a *lower bound* on cell-probe
    complexity — the quantity Theorem 13 proves is Omega(log log n).
    """
    if n < 4:
        return 1
    if s is None:
        s = 2 * n
    lg = math.log2(n)
    if b is None:
        b = max(1.0, lg**polylog_exponent)
    if phi_star is None:
        phi_star = max(lg, 1.0) ** polylog_exponent / s
    for t in range(1, t_max + 1):
        if recursion_trace(n, s, b, phi_star, t).feasible:
            return t
    return t_max


def tstar_curve(
    exponents: range | list[int],
    polylog_exponent: float = 1.0,
) -> list[tuple[int, int, float]]:
    """E9's series: (log2 n, t*(n), log2 log2 n) over n = 2**k.

    Uses exact integer arithmetic-free floats; n can reach 2**1024 via
    math.log-based parameterization — here we cap at IEEE range by
    working with log2(n) = k directly.
    """
    rows = []
    for k in exponents:
        n = 2.0**k
        # recursion in log-space would be cleaner; floats cover k <= 900.
        if n > 1e300:
            raise ParameterError("k too large for float evaluation")
        t = information_deficit_tstar(int(n), polylog_exponent=polylog_exponent)
        rows.append((k, t, math.log2(max(k, 1))))
    return rows
