"""True multi-process serving over shared memory — the multicore fabric.

Everything :mod:`repro.serve` does is *simulated* parallelism inside
one Python process.  This package serves the same replicated
dictionaries from real worker processes on real cores:

- :mod:`repro.parallel.shm` — named shared-memory segments with
  checksummed headers: zero-copy table views, per-worker probe-counter
  matrices, and the segment ownership protocol that keeps ``/dev/shm``
  leak-free;
- :mod:`repro.parallel.ring` — cache-line-padded SPSC ring buffers
  (sequence-number handshake, batched dequeue, typed backpressure) —
  nothing is pickled on the hot path;
- :mod:`repro.parallel.worker` — the worker process: attach, verify,
  serve routed groups against the shared table;
- :mod:`repro.parallel.fabric` — the dispatcher: a
  :class:`~repro.parallel.fabric.ParallelDictionaryService` that keeps
  the in-process service's batching/routing/admission brain and ships
  execution to the pool.

Probe accounting stays the paper's: each worker charges a shared
:class:`~repro.parallel.shm.ShmProbeCounter`, and the element-wise
merge of all workers is byte-identical (same ``digest()``) to running
the same dispatch plan in-process — so per-cell loads remain exactly
Binomial(Q, Φ_t) and E22 can test that claim on hardware.
"""

from repro.parallel.fabric import (
    DEFAULT_MAX_STEPS,
    DEFAULT_RING_WORDS,
    FabricStats,
    ParallelDictionaryService,
    WorkerHandle,
    WorkerPool,
    build_parallel_service,
)
from repro.parallel.ring import (
    FRAME_OVERHEAD,
    FRAME_QUERY,
    FRAME_RESPONSE,
    FRAME_STOP,
    RingBuffer,
    ring_segment_size,
)
from repro.parallel.shm import (
    KIND_COUNTER,
    KIND_RING,
    KIND_TABLE,
    LAYOUT_VERSION,
    MAGIC,
    ShmProbeCounter,
    attach_segment,
    attach_table,
    counter_segment_size,
    create_counter_segment,
    create_segment,
    destroy_segment,
    pack_table,
    read_counter,
    segment_name,
    verify_header,
    write_header,
)
from repro.parallel.worker import (
    attach_replicated,
    pack_answers,
    unpack_answers,
)

__all__ = [
    "DEFAULT_MAX_STEPS",
    "DEFAULT_RING_WORDS",
    "FRAME_OVERHEAD",
    "FRAME_QUERY",
    "FRAME_RESPONSE",
    "FRAME_STOP",
    "FabricStats",
    "KIND_COUNTER",
    "KIND_RING",
    "KIND_TABLE",
    "LAYOUT_VERSION",
    "MAGIC",
    "ParallelDictionaryService",
    "RingBuffer",
    "ShmProbeCounter",
    "WorkerHandle",
    "WorkerPool",
    "attach_replicated",
    "attach_segment",
    "attach_table",
    "build_parallel_service",
    "counter_segment_size",
    "create_counter_segment",
    "create_segment",
    "destroy_segment",
    "pack_answers",
    "pack_table",
    "read_counter",
    "ring_segment_size",
    "segment_name",
    "unpack_answers",
    "verify_header",
    "write_header",
]
